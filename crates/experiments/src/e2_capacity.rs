//! **E2 — Example 2: capacity augmentation bounds are unbounded.**
//!
//! The paper's Example 2 constructs, for every `n`, a system with
//! `U_sum = 1` and `len_i ≤ D_i` that nevertheless needs a speed-`n`
//! processor. This experiment quantifies it: for growing `n` we report the
//! exact demand load and the measured speed at which FEDCONS (or any
//! algorithm — the load is a lower bound for all of them) first accepts the
//! system on a single processor. The required speed grows linearly in `n`;
//! no finite capacity augmentation bound can exist.

use fedsched_core::feasibility::demand_load;
use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_core::speedup::required_speed;
use fedsched_dag::examples::paper_example2;
use fedsched_dag::system::TaskSystem;

use crate::common::fmt3;
use crate::table::Table;

/// One row of the E2 table.
#[derive(Debug, Clone, PartialEq)]
pub struct E2Row {
    /// Number of tasks `n` in the Example-2 system.
    pub n: u32,
    /// Total utilization (always exactly 1).
    pub utilization: f64,
    /// Exact demand load — the necessary speed for *any* scheduler on one
    /// processor.
    pub load: f64,
    /// Measured speed at which FEDCONS first accepts on one processor.
    pub fedcons_speed: f64,
}

/// Runs E2 for `n = 1, 2, 4, …, 2^max_pow`.
///
/// # Panics
///
/// Panics if the internal speed search fails (cannot happen: speed `n`
/// always suffices and is within the search range).
#[must_use]
pub fn run(max_pow: u32) -> Vec<E2Row> {
    // Rows are independent (each builds its own Example-2 system), so they
    // fan out through the parallel façade; `par_map` returns them in row
    // order, identical to the sequential map.
    let pows: Vec<u32> = (0..=max_pow).collect();
    fedsched_parallel::par_map(&pows, |&p| {
        let n = 1u32 << p;
        let system = paper_example2(n);
        let load = demand_load(&system, 1_000_000).to_f64();
        let accepts = |s: &TaskSystem| fedcons(s, 1, FedConsConfig::default()).is_ok();
        let speed = required_speed(&system, accepts, 1, n.max(1))
            .expect("speed n always suffices")
            .to_f64();
        E2Row {
            n,
            utilization: system.total_utilization().to_f64(),
            load,
            fedcons_speed: speed,
        }
    })
}

/// Renders E2 rows as a table.
#[must_use]
pub fn to_table(rows: &[E2Row]) -> Table {
    let mut t = Table::new(
        "E2: Example 2 — required speed grows without bound (capacity augmentation is meaningless)",
        [
            "n",
            "U_sum",
            "load (necessary speed)",
            "FEDCONS speed on 1 proc",
        ],
    );
    for r in rows {
        t.push_row([
            r.n.to_string(),
            fmt3(r.utilization),
            fmt3(r.load),
            fmt3(r.fedcons_speed),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_speed_is_exactly_n() {
        let rows = run(4);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.utilization, 1.0);
            assert_eq!(r.load, f64::from(r.n));
            assert_eq!(r.fedcons_speed, f64::from(r.n));
        }
    }

    #[test]
    fn growth_is_unbounded_in_n() {
        let rows = run(6);
        for w in rows.windows(2) {
            assert!(w[1].fedcons_speed > w[0].fedcons_speed);
        }
        assert_eq!(rows.last().unwrap().fedcons_speed, 64.0);
    }

    #[test]
    fn table_renders() {
        let t = to_table(&run(2));
        assert_eq!(t.len(), 3);
        let s = t.to_string();
        assert!(s.contains("E2"));
        assert!(s.contains("4.000"));
    }
}
