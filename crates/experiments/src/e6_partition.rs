//! **E6 — Lemma 2 / Theorem 1 empirically:** the speedup the partitioning
//! phase needs over a clairvoyant partitioner never exceeds `3 − 1/m`, and
//! in practice sits far below it — the paper's "the worst-case bound of
//! Theorem 1 is conservative".
//!
//! For random low-density task sets we compute a processor lower bound
//! `m_lb = max(⌈U_sum⌉, ⌈LOAD⌉)` that any scheduler needs, then measure the
//! smallest speed at which the first-fit `PARTITION` succeeds on exactly
//! `m_lb` processors.

use fedsched_core::feasibility::demand_load;
use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_core::speedup::required_speed;
use fedsched_dag::system::TaskSystem;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::DeadlineTightness;

use crate::common::{fmt3, mix_seed, par_trials};
use crate::table::Table;

/// Configuration for the partition speedup study.
#[derive(Debug, Clone, PartialEq)]
pub struct E6Config {
    /// Number of random task sets.
    pub trials: usize,
    /// Tasks per set (before dropping any accidental high-density task).
    pub n_tasks: usize,
    /// Total utilization target per set.
    pub total_utilization: f64,
    /// Speed-search grid denominator.
    pub grid: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E6Config {
    fn default() -> Self {
        E6Config {
            trials: 300,
            n_tasks: 12,
            total_utilization: 3.0,
            grid: 64,
            seed: 66,
        }
    }
}

/// Aggregated measurements for one lower-bound bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E6Row {
    /// Processor lower bound of this bucket.
    pub m_lb: u32,
    /// Trials in the bucket.
    pub trials: usize,
    /// Mean measured speedup.
    pub mean_speed: f64,
    /// Maximum measured speedup.
    pub max_speed: f64,
    /// Lemma 2 bound `3 − 1/m_lb`.
    pub bound: f64,
}

/// Runs the study.
///
/// # Panics
///
/// Panics if any measured speedup exceeds `3 − 1/m_lb` — i.e. if Lemma 2
/// were violated by the implementation.
#[must_use]
pub fn run(cfg: &E6Config) -> Vec<E6Row> {
    let gen_cfg = SystemConfig::new(cfg.n_tasks, cfg.total_utilization)
        .with_max_task_utilization(0.9)
        .with_tightness(DeadlineTightness::new(0.4, 1.0));
    // Trials seed from their own index, so they fan out through the
    // parallel façade; folding the measurements in trial order keeps the
    // buckets byte-identical to the sequential loop.
    let measurements = par_trials(cfg.trials, |i| {
        let seed = mix_seed(&[cfg.seed, i as u64]);
        let raw = gen_cfg.generate_seeded(seed)?;
        // Keep the low-density subset (tight deadline draws can still
        // produce δ ≥ 1 stragglers).
        let system: TaskSystem = raw.into_iter().filter(|t| t.is_low_density()).collect();
        if system.len() < 2 {
            return None;
        }
        let u_ceil = system.total_utilization().ceil().max(1);
        let load_ceil = demand_load(&system, 200_000).ceil().max(1);
        let m_lb = u32::try_from(u_ceil.max(load_ceil)).expect("fits u32");
        let accepts = |s: &TaskSystem| fedcons(s, m_lb, FedConsConfig::default()).is_ok();
        let speed = required_speed(&system, accepts, cfg.grid, 4)
            .expect("speed 3 − 1/m always suffices by Lemma 2")
            .to_f64();
        let bound = 3.0 - 1.0 / f64::from(m_lb);
        assert!(
            speed <= bound + 1e-9,
            "Lemma 2 violated: speed {speed} > bound {bound} (m_lb = {m_lb})"
        );
        Some((m_lb, speed))
    });
    let mut buckets: std::collections::BTreeMap<u32, Vec<f64>> = std::collections::BTreeMap::new();
    for (m_lb, speed) in measurements.into_iter().flatten() {
        buckets.entry(m_lb).or_default().push(speed);
    }
    buckets
        .into_iter()
        .map(|(m_lb, speeds)| {
            let n = speeds.len();
            E6Row {
                m_lb,
                trials: n,
                mean_speed: speeds.iter().sum::<f64>() / n as f64,
                max_speed: speeds.iter().copied().fold(0.0, f64::max),
                bound: 3.0 - 1.0 / f64::from(m_lb),
            }
        })
        .collect()
}

/// Renders E6 rows as a table.
#[must_use]
pub fn to_table(rows: &[E6Row]) -> Table {
    let mut t = Table::new(
        "E6: measured PARTITION speedup vs the Lemma 2 / Theorem 1 bound (3 − 1/m)",
        ["m_lb", "trials", "mean speed", "max speed", "bound 3−1/m"],
    );
    for r in rows {
        t.push_row([
            r.m_lb.to_string(),
            r.trials.to_string(),
            fmt3(r.mean_speed),
            fmt3(r.max_speed),
            fmt3(r.bound),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E6Config {
        E6Config {
            trials: 40,
            n_tasks: 8,
            total_utilization: 2.0,
            ..E6Config::default()
        }
    }

    #[test]
    fn all_measurements_respect_lemma_two() {
        let rows = run(&small());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.max_speed <= r.bound + 1e-9);
        }
    }

    #[test]
    fn bound_is_conservative_in_practice() {
        // The paper's headline for Theorem 1: measured speeds sit far below
        // 3 − 1/m.
        let rows = run(&small());
        for r in &rows {
            assert!(
                r.mean_speed < r.bound * 0.75,
                "m_lb {}: mean {} vs bound {}",
                r.m_lb,
                r.mean_speed,
                r.bound
            );
        }
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        assert_eq!(to_table(&a).len(), a.len());
    }
}
