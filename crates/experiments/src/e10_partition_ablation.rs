//! **E10 (ablation) — how much acceptance does `DBF*` leave on the table?**
//!
//! The paper's partitioning phase (Fig. 4) tests placements with the
//! polynomial-time `DBF*` approximation. The exact EDF processor-demand
//! criterion (pseudo-polynomial, via QPA) can gate the very same first-fit
//! instead. This ablation runs the *same* registry policy (`fedcons`) under
//! both partition configurations through the [`SchedulingPolicy`] trait and
//! sweeps normalized utilization, reporting both acceptance curves plus the
//! measured analysis cost (first-fit probes and demand-bound evaluations,
//! from [`AnalysisProbe`]) — quantifying the approximation's price, the
//! design trade-off DESIGN.md calls out.

use fedsched_analysis::partition::PartitionConfig;
use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::fedcons::FedConsConfig;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::DeadlineTightness;
use fedsched_policy::{policy_by_name_with, SchedulingPolicy};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration of the partition-test ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct E10Config {
    /// Shared-pool size.
    pub m: usize,
    /// Normalized-utilization steps in `(0, 1]`.
    pub steps: usize,
    /// Systems per point.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// QPA budget for the exact test.
    pub exact_budget: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E10Config {
    fn default() -> Self {
        E10Config {
            m: 4,
            steps: 20,
            systems_per_point: 200,
            n_tasks: 10,
            exact_budget: 200_000,
            seed: 1010,
        }
    }
}

/// One point of the ablation: acceptance and analysis cost per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E10Row {
    /// Normalized utilization `U / m` (in thousandths, to keep rows `Eq`).
    pub normalized_utilization_millis: u64,
    /// Low-density systems generated.
    pub generated: usize,
    /// Accepted by the paper's `DBF*` first-fit.
    pub approx_accepted: usize,
    /// Accepted by the exact-EDF first-fit.
    pub exact_accepted: usize,
    /// First-fit admission tests run by the `DBF*` variant.
    pub approx_fits_calls: u64,
    /// `DBF*` evaluations performed by the `DBF*` variant.
    pub approx_dbf_star_evals: u64,
    /// First-fit admission tests run by the exact-EDF variant.
    pub exact_fits_calls: u64,
    /// Exact `dbf` evaluations performed by the exact-EDF variant.
    pub exact_dbf_evals: u64,
}

impl E10Row {
    /// The point's normalized utilization as a float.
    #[must_use]
    pub fn normalized_utilization(&self) -> f64 {
        self.normalized_utilization_millis as f64 / 1000.0
    }
}

/// The two `fedcons` registry instances the ablation compares: identical
/// sizing phase, `DBF*` vs exact-EDF partition admission.
fn variants(cfg: &E10Config) -> [Box<dyn SchedulingPolicy>; 2] {
    let approx = FedConsConfig {
        partition: PartitionConfig::approx(),
        ..FedConsConfig::default()
    };
    let exact = FedConsConfig {
        partition: PartitionConfig::exact(cfg.exact_budget),
        ..FedConsConfig::default()
    };
    [
        policy_by_name_with("fedcons", approx).expect("fedcons is registered"),
        policy_by_name_with("fedcons", exact).expect("fedcons is registered"),
    ]
}

/// Runs the ablation over low-density task sets.
#[must_use]
pub fn run(cfg: &E10Config) -> Vec<E10Row> {
    let policies = variants(cfg);
    let mut rows = Vec::new();
    for step in 1..=cfg.steps {
        let norm_u = step as f64 / cfg.steps as f64;
        let gen_cfg = SystemConfig::new(cfg.n_tasks, norm_u * cfg.m as f64)
            .with_max_task_utilization(0.95)
            .with_tightness(DeadlineTightness::new(0.3, 1.0));
        let mut row = E10Row {
            normalized_utilization_millis: (norm_u * 1000.0).round() as u64,
            generated: 0,
            approx_accepted: 0,
            exact_accepted: 0,
            approx_fits_calls: 0,
            approx_dbf_star_evals: 0,
            exact_fits_calls: 0,
            exact_dbf_evals: 0,
        };
        for i in 0..cfg.systems_per_point {
            let seed = mix_seed(&[cfg.seed, step as u64, i as u64]);
            let Some(raw) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            // Keep the low-density subset: this ablation isolates the
            // partitioning phase (phase 1 sizes nothing on these systems).
            let system: TaskSystem = raw.into_iter().filter(DagTask::is_low_density).collect();
            if system.is_empty() {
                continue;
            }
            row.generated += 1;
            let mut accepted = [false; 2];
            let mut probes = [AnalysisProbe::default(), AnalysisProbe::default()];
            for (k, policy) in policies.iter().enumerate() {
                accepted[k] = policy
                    .analyze(&system, cfg.m as u32, &mut probes[k])
                    .is_ok();
            }
            row.approx_accepted += usize::from(accepted[0]);
            row.exact_accepted += usize::from(accepted[1]);
            row.approx_fits_calls += probes[0].fits_calls;
            row.approx_dbf_star_evals += probes[0].dbf_approx_evals;
            row.exact_fits_calls += probes[1].fits_calls;
            row.exact_dbf_evals += probes[1].dbf_exact_evals;
        }
        rows.push(row);
    }
    rows
}

/// Renders E10 rows as a table.
#[must_use]
pub fn to_table(rows: &[E10Row], cfg: &E10Config) -> Table {
    let mut t = Table::new(
        format!(
            "E10 (ablation): DBF* vs exact-EDF first-fit acceptance, m = {}",
            cfg.m
        ),
        [
            "U/m",
            "generated",
            "DBF* ratio",
            "exact-EDF ratio",
            "gap",
            "DBF* fits",
            "DBF* evals",
            "exact fits",
            "exact dbf evals",
        ],
    );
    for r in rows {
        let g = r.generated.max(1) as f64;
        let a = r.approx_accepted as f64 / g;
        let e = r.exact_accepted as f64 / g;
        t.push_row([
            fmt3(r.normalized_utilization()),
            r.generated.to_string(),
            fmt3(a),
            fmt3(e),
            fmt3(e - a),
            r.approx_fits_calls.to_string(),
            r.approx_dbf_star_evals.to_string(),
            r.exact_fits_calls.to_string(),
            r.exact_dbf_evals.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E10Config {
        E10Config {
            m: 3,
            steps: 5,
            systems_per_point: 25,
            n_tasks: 8,
            ..E10Config::default()
        }
    }

    #[test]
    fn exact_never_accepts_fewer_at_low_load_and_curves_decrease() {
        let rows = run(&small());
        assert_eq!(rows.len(), 5);
        // At the lowest point both accept everything.
        assert_eq!(rows[0].approx_accepted, rows[0].generated);
        assert_eq!(rows[0].exact_accepted, rows[0].generated);
        // Aggregate: exact acceptance ≥ approx acceptance (first-fit
        // divergence could flip single systems, but not the aggregate).
        let approx: usize = rows.iter().map(|r| r.approx_accepted).sum();
        let exact: usize = rows.iter().map(|r| r.exact_accepted).sum();
        assert!(exact >= approx, "exact {exact} < approx {approx}");
    }

    #[test]
    fn gap_appears_under_load() {
        // Somewhere in the sweep the exact test must accept systems the
        // approximation rejects — that is the point of the ablation.
        let cfg = E10Config {
            steps: 8,
            systems_per_point: 40,
            ..small()
        };
        let rows = run(&cfg);
        let gap: i64 = rows
            .iter()
            .map(|r| r.exact_accepted as i64 - r.approx_accepted as i64)
            .sum();
        assert!(gap > 0, "no acceptance gap observed");
    }

    #[test]
    fn probe_counters_expose_the_cost_asymmetry() {
        let rows = run(&small());
        let approx_evals: u64 = rows.iter().map(|r| r.approx_dbf_star_evals).sum();
        let exact_evals: u64 = rows.iter().map(|r| r.exact_dbf_evals).sum();
        let fits: u64 = rows.iter().map(|r| r.approx_fits_calls).sum();
        assert!(fits > 0, "the first-fit must have been exercised");
        assert!(approx_evals > 0, "DBF* evaluations must be counted");
        assert!(
            exact_evals > approx_evals,
            "the exact test is pseudo-polynomial: it must evaluate dbf far \
             more often ({exact_evals} vs {approx_evals})"
        );
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        let t = to_table(&a, &small());
        assert_eq!(t.len(), a.len());
        assert!(t.to_string().contains("exact-EDF"));
        assert!(t.to_csv().contains("DBF* fits"));
    }
}
