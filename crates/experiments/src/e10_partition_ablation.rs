//! **E10 (ablation) — how much acceptance does `DBF*` leave on the table?**
//!
//! The paper's partitioning phase (Fig. 4) tests placements with the
//! polynomial-time `DBF*` approximation. The exact EDF processor-demand
//! criterion (pseudo-polynomial, via QPA) can gate the very same first-fit
//! instead. This ablation sweeps normalized utilization and reports both
//! acceptance curves plus the analysis cost proxy (probes per system),
//! quantifying the approximation's price — the design trade-off DESIGN.md
//! calls out.

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::partition::{partition_first_fit, PartitionConfig};
use fedsched_dag::system::{TaskId, TaskSystem};
use fedsched_dag::task::DagTask;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::DeadlineTightness;

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration of the partition-test ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct E10Config {
    /// Shared-pool size.
    pub m: usize,
    /// Normalized-utilization steps in `(0, 1]`.
    pub steps: usize,
    /// Systems per point.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// QPA budget for the exact test.
    pub exact_budget: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E10Config {
    fn default() -> Self {
        E10Config {
            m: 4,
            steps: 20,
            systems_per_point: 200,
            n_tasks: 10,
            exact_budget: 200_000,
            seed: 1010,
        }
    }
}

/// One point of the ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E10Row {
    /// Normalized utilization `U / m`.
    pub normalized_utilization: f64,
    /// Low-density systems generated.
    pub generated: usize,
    /// Accepted by the paper's `DBF*` first-fit.
    pub approx_accepted: usize,
    /// Accepted by the exact-EDF first-fit.
    pub exact_accepted: usize,
}

/// Runs the ablation over low-density task sets.
#[must_use]
pub fn run(cfg: &E10Config) -> Vec<E10Row> {
    let mut rows = Vec::new();
    for step in 1..=cfg.steps {
        let norm_u = step as f64 / cfg.steps as f64;
        let gen_cfg = SystemConfig::new(cfg.n_tasks, norm_u * cfg.m as f64)
            .with_max_task_utilization(0.95)
            .with_tightness(DeadlineTightness::new(0.3, 1.0));
        let mut row = E10Row {
            normalized_utilization: norm_u,
            generated: 0,
            approx_accepted: 0,
            exact_accepted: 0,
        };
        for i in 0..cfg.systems_per_point {
            let seed = mix_seed(&[cfg.seed, step as u64, i as u64]);
            let Some(raw) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            // Keep the low-density subset: this ablation isolates the
            // partitioning phase.
            let system: TaskSystem = raw.into_iter().filter(DagTask::is_low_density).collect();
            if system.is_empty() {
                continue;
            }
            row.generated += 1;
            let views: Vec<(TaskId, SequentialView)> = system
                .iter()
                .map(|(id, t)| (id, SequentialView::of(t)))
                .collect();
            if partition_first_fit(&views, cfg.m, PartitionConfig::approx()).is_ok() {
                row.approx_accepted += 1;
            }
            if partition_first_fit(&views, cfg.m, PartitionConfig::exact(cfg.exact_budget)).is_ok()
            {
                row.exact_accepted += 1;
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders E10 rows as a table.
#[must_use]
pub fn to_table(rows: &[E10Row], cfg: &E10Config) -> Table {
    let mut t = Table::new(
        format!(
            "E10 (ablation): DBF* vs exact-EDF first-fit acceptance, m = {}",
            cfg.m
        ),
        ["U/m", "generated", "DBF* ratio", "exact-EDF ratio", "gap"],
    );
    for r in rows {
        let g = r.generated.max(1) as f64;
        let a = r.approx_accepted as f64 / g;
        let e = r.exact_accepted as f64 / g;
        t.push_row([
            fmt3(r.normalized_utilization),
            r.generated.to_string(),
            fmt3(a),
            fmt3(e),
            fmt3(e - a),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E10Config {
        E10Config {
            m: 3,
            steps: 5,
            systems_per_point: 25,
            n_tasks: 8,
            ..E10Config::default()
        }
    }

    #[test]
    fn exact_never_accepts_fewer_at_low_load_and_curves_decrease() {
        let rows = run(&small());
        assert_eq!(rows.len(), 5);
        // At the lowest point both accept everything.
        assert_eq!(rows[0].approx_accepted, rows[0].generated);
        assert_eq!(rows[0].exact_accepted, rows[0].generated);
        // Aggregate: exact acceptance ≥ approx acceptance (first-fit
        // divergence could flip single systems, but not the aggregate).
        let approx: usize = rows.iter().map(|r| r.approx_accepted).sum();
        let exact: usize = rows.iter().map(|r| r.exact_accepted).sum();
        assert!(exact >= approx, "exact {exact} < approx {approx}");
    }

    #[test]
    fn gap_appears_under_load() {
        // Somewhere in the sweep the exact test must accept systems the
        // approximation rejects — that is the point of the ablation.
        let cfg = E10Config {
            steps: 8,
            systems_per_point: 40,
            ..small()
        };
        let rows = run(&cfg);
        let gap: i64 = rows
            .iter()
            .map(|r| r.exact_accepted as i64 - r.approx_accepted as i64)
            .sum();
        assert!(gap > 0, "no acceptance gap observed");
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        let t = to_table(&a, &small());
        assert_eq!(t.len(), a.len());
        assert!(t.to_string().contains("exact-EDF"));
    }
}
