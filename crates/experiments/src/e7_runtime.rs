//! **E7 — runtime validation:** every FEDCONS-admitted system executes with
//! zero deadline misses in the discrete-event runtime, under worst-case
//! (periodic, WCET) and relaxed (sporadic, early-completion) conditions.
//!
//! This closes the loop between the offline analysis (Figs. 2–4) and the
//! run-time system the paper describes in Section IV — including the
//! footnote-2 requirement that clusters replay templates rather than
//! re-running the scheduler.

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::DeadlineTightness;
use fedsched_graham::list::PriorityPolicy;
use fedsched_sim::federated::{simulate_federated, ClusterDispatch};
use fedsched_sim::model::{ArrivalModel, ExecutionModel, SimConfig};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration for the runtime validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct E7Config {
    /// Platform size.
    pub m: u32,
    /// Normalized-utilization steps in `(0, 1]`.
    pub steps: usize,
    /// Systems per step.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// Simulation horizon per run (ticks).
    pub horizon: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E7Config {
    fn default() -> Self {
        E7Config {
            m: 8,
            steps: 10,
            systems_per_point: 30,
            n_tasks: 8,
            horizon: 100_000,
            seed: 77,
        }
    }
}

/// One row: simulation volume at a utilization level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E7Row {
    /// Normalized utilization.
    pub normalized_utilization: f64,
    /// Systems generated at this point.
    pub generated: usize,
    /// Systems FEDCONS admitted (and hence simulated).
    pub admitted: usize,
    /// Dag-jobs scored across both simulation modes.
    pub jobs_scored: u64,
    /// Deadline misses observed (must be zero).
    pub misses: u64,
}

/// Runs the validation sweep.
#[must_use]
pub fn run(cfg: &E7Config) -> Vec<E7Row> {
    let mut rows = Vec::new();
    for step in 1..=cfg.steps {
        let norm_u = step as f64 / cfg.steps as f64;
        let gen_cfg = SystemConfig::new(cfg.n_tasks, norm_u * f64::from(cfg.m))
            .with_max_task_utilization(1.5)
            .with_tightness(DeadlineTightness::new(0.2, 1.0));
        let mut row = E7Row {
            normalized_utilization: norm_u,
            generated: 0,
            admitted: 0,
            jobs_scored: 0,
            misses: 0,
        };
        for i in 0..cfg.systems_per_point {
            let seed = mix_seed(&[cfg.seed, step as u64, i as u64]);
            let Some(system) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            row.generated += 1;
            let Ok(schedule) = fedcons(&system, cfg.m, FedConsConfig::default()) else {
                continue;
            };
            row.admitted += 1;
            let worst = SimConfig::worst_case(Duration::new(cfg.horizon));
            let relaxed = SimConfig {
                horizon: Duration::new(cfg.horizon),
                arrivals: ArrivalModel::SporadicUniformSlack {
                    max_extra_fraction: 0.5,
                },
                execution: ExecutionModel::UniformFraction { min_fraction: 0.3 },
                seed,
            };
            for config in [worst, relaxed] {
                let report = simulate_federated(
                    &system,
                    &schedule,
                    config,
                    ClusterDispatch::Template,
                    PriorityPolicy::ListOrder,
                );
                row.jobs_scored += report.jobs_scored;
                row.misses += report.miss_count() as u64;
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders E7 rows as a table.
#[must_use]
pub fn to_table(rows: &[E7Row]) -> Table {
    let mut t = Table::new(
        "E7: runtime validation — admitted systems execute without deadline misses",
        ["U/m", "generated", "admitted", "jobs scored", "misses"],
    );
    for r in rows {
        t.push_row([
            fmt3(r.normalized_utilization),
            r.generated.to_string(),
            r.admitted.to_string(),
            r.jobs_scored.to_string(),
            r.misses.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E7Config {
        E7Config {
            m: 4,
            steps: 4,
            systems_per_point: 6,
            n_tasks: 5,
            horizon: 20_000,
            ..E7Config::default()
        }
    }

    #[test]
    fn no_admitted_system_ever_misses() {
        let rows = run(&small());
        let jobs: u64 = rows.iter().map(|r| r.jobs_scored).sum();
        let misses: u64 = rows.iter().map(|r| r.misses).sum();
        assert!(jobs > 500, "scored {jobs} jobs");
        assert_eq!(misses, 0);
    }

    #[test]
    fn admission_rate_decreases_with_load() {
        let rows = run(&small());
        assert!(rows[0].admitted >= rows.last().unwrap().admitted);
        assert!(rows[0].admitted > 0);
    }

    #[test]
    fn renders() {
        let rows = run(&small());
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len());
        assert!(t.to_string().contains("misses"));
    }
}
