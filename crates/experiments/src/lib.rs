//! Experiment harness regenerating the evaluation of Baruah, DATE 2015.
//!
//! Each `eN_*` module reproduces one artifact of the paper (see DESIGN.md
//! §3 for the full index):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`e2_capacity`] | Example 2 — capacity augmentation is unbounded |
//! | [`e3_acceptance`] | Section IV "A note" — acceptance ratio vs `U/m` |
//! | [`e4_baselines`] | Section III — comparison with Li-federated & global EDF |
//! | [`e5_minprocs`] | Lemma 1 — measured LS speedup vs `2 − 1/m` |
//! | [`e6_partition`] | Lemma 2 / Theorem 1 — measured partition speedup vs `3 − 1/m` |
//! | [`e7_runtime`] | Section IV runtime — admitted systems never miss |
//! | [`e8_anomaly`] | Footnote 2 — Graham's anomaly, offline and at runtime |
//! | [`e10_partition_ablation`] | ablation: `DBF*` vs exact-EDF partitioning |
//! | [`e11_policy_ablation`] | ablation: LS priority lists vs cluster sizes |
//! | [`e12_exact_optimum`] | oracle: LS vs exact optimal makespan on small DAGs |
//! | [`e13_global_sim`] | provable FEDCONS vs empirical global-EDF window |
//! | [`e14_tightness`] | deadline-tightness sweep: the cost of `D < T` |
//! | [`e15_critical_speed`] | critical-speed distributions by topology |
//!
//! Every experiment is deterministic given its config (seeds are mixed from
//! the experiment seed and point coordinates), returns typed rows, and
//! renders to both aligned text and CSV via [`table::Table`]. The
//! `run_experiments` binary drives them all:
//!
//! ```text
//! cargo run --release -p fedsched-experiments --bin run_experiments -- all
//! cargo run --release -p fedsched-experiments --bin run_experiments -- e3 --quick
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod common;
pub mod e10_partition_ablation;
pub mod e11_policy_ablation;
pub mod e12_exact_optimum;
pub mod e13_global_sim;
pub mod e14_tightness;
pub mod e15_critical_speed;
pub mod e2_capacity;
pub mod e3_acceptance;
pub mod e4_baselines;
pub mod e5_minprocs;
pub mod e6_partition;
pub mod e7_runtime;
pub mod e8_anomaly;
pub mod table;

pub use table::Table;
