//! **E3 — the paper's schedulability experiment:** acceptance ratio of
//! FEDCONS on randomly generated constrained-deadline DAG task systems, as a
//! function of normalized utilization `U_sum / m`.
//!
//! The paper reports (Section IV, "A note") that typical-case performance is
//! "overwhelmingly better" than the conservative `3 − 1/m` speedup bound of
//! Theorem 1. Concretely: Theorem 1 only *guarantees* acceptance of systems
//! an optimal scheduler could run at normalized utilization
//! `≥ 1/(3 − 1/m) ≈ 0.35`; the measured acceptance curve should stay near 1
//! far beyond that and fall off only as `U/m → 1`.

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_gen::system::SystemConfig;
use fedsched_gen::{DeadlineTightness, Span, Topology};

use crate::common::{fmt3, mix_seed, par_trials};
use crate::table::Table;

/// Configuration of the acceptance-ratio sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct E3Config {
    /// Platform sizes to sweep.
    pub m_values: Vec<u32>,
    /// Number of normalized-utilization steps in `(0, 1]`.
    pub steps: usize,
    /// Random systems per (m, step) point.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// Per-task utilization cap (values above 1 admit high-utilization, and
    /// with tight deadlines high-density, tasks).
    pub max_task_utilization: f64,
    /// Deadline tightness range (fractions of the `[len, T]` window).
    pub tightness: (f64, f64),
    /// DAG topology family.
    pub topology: Topology,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E3Config {
    fn default() -> Self {
        E3Config {
            m_values: vec![4, 8, 16],
            steps: 20,
            systems_per_point: 200,
            n_tasks: 10,
            max_task_utilization: 2.0,
            tightness: (0.2, 1.0),
            topology: Topology::Layered {
                layers: Span::new(2, 5),
                width: Span::new(1, 5),
                edge_probability: 0.3,
            },
            seed: 2015,
        }
    }
}

/// One point of the acceptance curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E3Row {
    /// Platform size.
    pub m: u32,
    /// Normalized utilization `U_sum / m` targeted at this point.
    pub normalized_utilization: f64,
    /// Systems successfully generated at this point.
    pub generated: usize,
    /// Systems accepted by FEDCONS.
    pub accepted: usize,
    /// The normalized utilization below which Theorem 1 *guarantees*
    /// acceptance of optimally-feasible systems: `1 / (3 − 1/m)`.
    pub guarantee_threshold: f64,
}

impl E3Row {
    /// Acceptance ratio at this point (0 if nothing was generated).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.accepted as f64 / self.generated as f64
        }
    }
}

/// Runs the sweep.
#[must_use]
pub fn run(cfg: &E3Config) -> Vec<E3Row> {
    let mut rows = Vec::new();
    for &m in &cfg.m_values {
        let guarantee = 1.0 / (3.0 - 1.0 / f64::from(m));
        for step in 1..=cfg.steps {
            let norm_u = step as f64 / cfg.steps as f64;
            let total_u = norm_u * f64::from(m);
            let gen_cfg = SystemConfig::new(cfg.n_tasks, total_u)
                .with_max_task_utilization(cfg.max_task_utilization)
                .with_topology(cfg.topology)
                .with_tightness(DeadlineTightness::new(cfg.tightness.0, cfg.tightness.1));
            // Each system is seeded from its own index, so the verdicts fan
            // out through the parallel façade; counting them afterwards is
            // byte-identical to the sequential loop at any pool width.
            let verdicts = par_trials(cfg.systems_per_point, |i| {
                let seed = mix_seed(&[cfg.seed, u64::from(m), step as u64, i as u64]);
                let system = gen_cfg.generate_seeded(seed)?;
                Some(fedcons(&system, m, FedConsConfig::default()).is_ok())
            });
            let generated = verdicts.iter().flatten().count();
            let accepted = verdicts.iter().flatten().filter(|&&ok| ok).count();
            rows.push(E3Row {
                m,
                normalized_utilization: norm_u,
                generated,
                accepted,
                guarantee_threshold: guarantee,
            });
        }
    }
    rows
}

/// Renders E3 rows as a table.
#[must_use]
pub fn to_table(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3: FEDCONS acceptance ratio vs normalized utilization (the paper's schedulability experiment)",
        ["m", "U/m", "generated", "accepted", "ratio", "Thm-1 guarantee U/m"],
    );
    for r in rows {
        t.push_row([
            r.m.to_string(),
            fmt3(r.normalized_utilization),
            r.generated.to_string(),
            r.accepted.to_string(),
            fmt3(r.ratio()),
            fmt3(r.guarantee_threshold),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E3Config {
        E3Config {
            m_values: vec![4],
            steps: 5,
            systems_per_point: 20,
            n_tasks: 6,
            ..E3Config::default()
        }
    }

    #[test]
    fn curve_is_roughly_monotone_decreasing() {
        let rows = run(&small());
        assert_eq!(rows.len(), 5);
        // Low utilization accepts (ratio near 1); the highest step accepts
        // strictly less than the lowest.
        assert!(rows[0].ratio() > 0.9, "low-U ratio {}", rows[0].ratio());
        assert!(rows[4].ratio() < rows[0].ratio());
    }

    #[test]
    fn acceptance_far_exceeds_theorem_guarantee() {
        // The paper's headline: at the guarantee threshold (≈0.36 for m=4)
        // the measured acceptance is still essentially 1.
        let rows = run(&small());
        let at_guarantee = rows
            .iter()
            .filter(|r| r.normalized_utilization <= r.guarantee_threshold + 1e-9)
            .map(E3Row::ratio)
            .fold(1.0f64, f64::min);
        assert!(at_guarantee > 0.9, "ratio at guarantee {at_guarantee}");
    }

    #[test]
    fn deterministic() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(a, b);
    }

    #[test]
    fn table_has_all_rows() {
        let rows = run(&small());
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len());
        assert!(t.to_csv().starts_with("m,U/m"));
    }
}
