//! **E12 (oracle study) — List Scheduling vs. the true optimum.**
//!
//! E5 measures Lemma 1 against computable *lower bounds* on the clairvoyant
//! optimum; on small DAGs we can do better: compute the exact minimum
//! makespan by branch-and-bound and report the genuine `LS / OPT` ratio
//! distribution per processor count and priority policy. Graham's bound
//! says the ratio never exceeds `2 − 1/m`; this experiment shows where the
//! real ratios sit and how often LS is *exactly* optimal.

use fedsched_gen::{Span, Topology, WcetRange};
use fedsched_graham::list::{list_schedule_with, PriorityPolicy};
use fedsched_graham::optimal::optimal_makespan;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration for the exact-optimum study.
#[derive(Debug, Clone, PartialEq)]
pub struct E12Config {
    /// Random DAGs per (m, policy) cell.
    pub trials: usize,
    /// Processor counts.
    pub m_values: Vec<u32>,
    /// Vertices per DAG (kept small: the solver is exponential).
    pub vertices: Span,
    /// Branch-and-bound node budget per instance.
    pub node_budget: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E12Config {
    fn default() -> Self {
        E12Config {
            trials: 300,
            m_values: vec![2, 3, 4],
            vertices: Span::new(6, 11),
            node_budget: 5_000_000,
            seed: 1212,
        }
    }
}

/// Aggregate ratios for one (m, policy) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E12Row {
    /// Processor count.
    pub m: u32,
    /// The LS priority policy.
    pub policy: PriorityPolicy,
    /// Instances where the optimum was proved (budget not exhausted).
    pub solved: usize,
    /// Fraction of solved instances where LS was exactly optimal.
    pub optimal_fraction: f64,
    /// Mean `LS / OPT` ratio.
    pub mean_ratio: f64,
    /// Worst observed `LS / OPT` ratio.
    pub max_ratio: f64,
    /// Graham's bound `2 − 1/m`.
    pub bound: f64,
}

/// Runs the study.
///
/// # Panics
///
/// Panics if any observed ratio exceeds Graham's bound (a bug, not a
/// finding).
#[must_use]
pub fn run(cfg: &E12Config) -> Vec<E12Row> {
    let topo = Topology::ErdosRenyi {
        vertices: cfg.vertices,
        edge_probability: 0.25,
    };
    let policies = [PriorityPolicy::ListOrder, PriorityPolicy::CriticalPathFirst];
    let mut rows = Vec::new();
    for &m in &cfg.m_values {
        // Share instances (and their optima) across policies.
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for i in 0..cfg.trials {
            let mut rng = StdRng::seed_from_u64(mix_seed(&[cfg.seed, u64::from(m), i as u64]));
            let dag = topo.generate(&mut rng, WcetRange::new(1, 9));
            let opt = optimal_makespan(&dag, m, cfg.node_budget);
            if !opt.is_exact() {
                continue;
            }
            let opt = opt.value().ticks() as f64;
            for (k, &policy) in policies.iter().enumerate() {
                let ls = list_schedule_with(&dag, m, policy).makespan().ticks() as f64;
                let ratio = ls / opt;
                let bound = 2.0 - 1.0 / f64::from(m);
                assert!(
                    ratio <= bound + 1e-9,
                    "Graham ratio violated: {ratio} > {bound}"
                );
                ratios[k].push(ratio);
            }
        }
        for (k, &policy) in policies.iter().enumerate() {
            let rs = &ratios[k];
            let solved = rs.len();
            let optimal = rs.iter().filter(|&&r| r <= 1.0 + 1e-12).count();
            rows.push(E12Row {
                m,
                policy,
                solved,
                optimal_fraction: optimal as f64 / solved.max(1) as f64,
                mean_ratio: rs.iter().sum::<f64>() / solved.max(1) as f64,
                max_ratio: rs.iter().copied().fold(0.0, f64::max),
                bound: 2.0 - 1.0 / f64::from(m),
            });
        }
    }
    rows
}

/// Renders E12 rows as a table.
#[must_use]
pub fn to_table(rows: &[E12Row]) -> Table {
    let mut t = Table::new(
        "E12 (oracle): LS makespan vs exact optimum on small DAGs",
        [
            "m",
            "policy",
            "solved",
            "LS optimal",
            "mean LS/OPT",
            "max LS/OPT",
            "bound 2−1/m",
        ],
    );
    for r in rows {
        t.push_row([
            r.m.to_string(),
            format!("{:?}", r.policy),
            r.solved.to_string(),
            fmt3(r.optimal_fraction),
            fmt3(r.mean_ratio),
            fmt3(r.max_ratio),
            fmt3(r.bound),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E12Config {
        E12Config {
            trials: 40,
            m_values: vec![2, 3],
            vertices: Span::new(5, 8),
            node_budget: 2_000_000,
            ..E12Config::default()
        }
    }

    #[test]
    fn ratios_respect_graham_bound_and_ls_is_often_optimal() {
        let rows = run(&small());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.solved > 20, "solver should handle small instances");
            assert!(r.max_ratio <= r.bound + 1e-9);
            assert!(r.mean_ratio >= 1.0 - 1e-12);
            // LS hits the optimum on a solid majority of small DAGs.
            assert!(r.optimal_fraction > 0.5, "{:?}", r);
        }
    }

    #[test]
    fn critical_path_first_at_least_matches_list_order() {
        let rows = run(&small());
        for m in [2u32, 3] {
            let lo = rows
                .iter()
                .find(|r| r.m == m && r.policy == PriorityPolicy::ListOrder)
                .unwrap();
            let cpf = rows
                .iter()
                .find(|r| r.m == m && r.policy == PriorityPolicy::CriticalPathFirst)
                .unwrap();
            assert!(cpf.mean_ratio <= lo.mean_ratio + 0.02, "m={m}");
        }
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        assert_eq!(to_table(&a).len(), a.len());
    }
}
