//! **E11 (ablation) — does the List-Scheduling priority list matter?**
//!
//! Graham's `(2 − 1/m)` bound holds for *any* list, so the paper leaves the
//! priority order unspecified. Typical-case cluster sizes do depend on it:
//! this ablation runs one `fedcons` registry instance per
//! [`PriorityPolicy`] through the [`SchedulingPolicy`] trait on random
//! single-task high-density systems and compares the dedicated processor
//! counts — i.e. how much platform capacity a smarter list saves in
//! practice — along with the LS simulations each variant spent
//! ([`AnalysisProbe::ls_runs`](fedsched_analysis::probe::AnalysisProbe)).

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::fedcons::FedConsConfig;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::{Span, Topology, WcetRange};
use fedsched_graham::list::PriorityPolicy;
use fedsched_policy::{policy_by_name_with, SchedulingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration of the priority-policy ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct E11Config {
    /// Random high-density tasks to size.
    pub trials: usize,
    /// Cluster-size cap offered to `MINPROCS` (the platform handed to the
    /// policy).
    pub max_processors: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E11Config {
    fn default() -> Self {
        E11Config {
            trials: 500,
            max_processors: 64,
            seed: 1111,
        }
    }
}

/// Aggregate sizing results for one priority policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E11Row {
    /// The list-construction policy.
    pub policy: PriorityPolicy,
    /// Tasks successfully sized (same set for every policy).
    pub sized: usize,
    /// Mean cluster size.
    pub mean_processors: f64,
    /// Total processors across all tasks.
    pub total_processors: u64,
    /// Tasks where this policy needed strictly fewer processors than
    /// [`PriorityPolicy::ListOrder`].
    pub beats_list_order: usize,
    /// Tasks where it needed strictly more.
    pub loses_to_list_order: usize,
    /// List-Scheduling simulations this variant ran across the sweep
    /// (counted by the analysis probe; the dominant cost of `MINPROCS`).
    pub ls_runs: u64,
}

/// The LS priority policies under ablation, in row order.
const PRIORITIES: [PriorityPolicy; 3] = [
    PriorityPolicy::ListOrder,
    PriorityPolicy::CriticalPathFirst,
    PriorityPolicy::LongestWcetFirst,
];

/// One `fedcons` registry instance per priority policy.
fn registry_per_priority() -> Vec<Box<dyn SchedulingPolicy>> {
    PRIORITIES
        .iter()
        .map(|&policy| {
            policy_by_name_with(
                "fedcons",
                FedConsConfig {
                    policy,
                    ..FedConsConfig::default()
                },
            )
            .expect("fedcons is registered")
        })
        .collect()
}

/// Runs the ablation.
#[must_use]
pub fn run(cfg: &E11Config) -> Vec<E11Row> {
    let policies = registry_per_priority();
    let topo = Topology::ErdosRenyi {
        vertices: Span::new(10, 40),
        edge_probability: 0.12,
    };
    // Per-policy cluster sizes, aligned by trial, plus probe totals.
    let mut sizes: Vec<Vec<u32>> = vec![Vec::new(); policies.len()];
    let mut ls_runs = vec![0u64; policies.len()];
    for i in 0..cfg.trials {
        let mut rng = StdRng::seed_from_u64(mix_seed(&[cfg.seed, i as u64]));
        let dag = topo.generate(&mut rng, WcetRange::new(1, 20));
        let len = dag.longest_chain().length.ticks();
        let vol = dag.volume().ticks();
        if vol == len {
            continue;
        }
        let d = rng.gen_range(len..=vol);
        let task = DagTask::new(dag, Duration::new(d), Duration::new(2 * d))
            .expect("generated parameters are valid");
        // A single high-density task (δ = vol/D ≥ 1): FEDCONS phase 1 is
        // exactly `MINPROCS`, and the dedicated processor count of the
        // outcome is the cluster size under that policy's list.
        let system: TaskSystem = [task].into_iter().collect();
        let per_policy: Vec<Option<u32>> = policies
            .iter()
            .enumerate()
            .map(|(k, policy)| {
                let mut probe = AnalysisProbe::default();
                let sized = policy
                    .analyze(&system, cfg.max_processors, &mut probe)
                    .ok()
                    .map(|outcome| outcome.dedicated_processors());
                ls_runs[k] += probe.ls_runs;
                sized
            })
            .collect();
        // Keep the trial only if every policy sized it (they almost always
        // do; dropping keeps the comparison apples-to-apples).
        if per_policy.iter().all(Option::is_some) {
            for (k, s) in per_policy.into_iter().enumerate() {
                sizes[k].push(s.expect("checked"));
            }
        }
    }
    PRIORITIES
        .iter()
        .enumerate()
        .map(|(k, &policy)| {
            let n = sizes[k].len();
            let total: u64 = sizes[k].iter().map(|&s| u64::from(s)).sum();
            let beats = sizes[k]
                .iter()
                .zip(&sizes[0])
                .filter(|(a, b)| a < b)
                .count();
            let loses = sizes[k]
                .iter()
                .zip(&sizes[0])
                .filter(|(a, b)| a > b)
                .count();
            E11Row {
                policy,
                sized: n,
                mean_processors: total as f64 / n.max(1) as f64,
                total_processors: total,
                beats_list_order: beats,
                loses_to_list_order: loses,
                ls_runs: ls_runs[k],
            }
        })
        .collect()
}

/// Renders E11 rows as a table.
#[must_use]
pub fn to_table(rows: &[E11Row]) -> Table {
    let mut t = Table::new(
        "E11 (ablation): MINPROCS cluster sizes per LS priority policy",
        [
            "policy",
            "tasks",
            "mean procs",
            "total procs",
            "beats list-order",
            "loses",
            "LS runs",
        ],
    );
    for r in rows {
        t.push_row([
            format!("{:?}", r.policy),
            r.sized.to_string(),
            fmt3(r.mean_processors),
            r.total_processors.to_string(),
            r.beats_list_order.to_string(),
            r.loses_to_list_order.to_string(),
            r.ls_runs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E11Config {
        E11Config {
            trials: 80,
            ..E11Config::default()
        }
    }

    #[test]
    fn all_policies_size_the_same_tasks() {
        let rows = run(&small());
        assert_eq!(rows.len(), 3);
        assert!(rows[0].sized > 0);
        assert!(rows.iter().all(|r| r.sized == rows[0].sized));
    }

    #[test]
    fn list_order_never_beats_itself() {
        let rows = run(&small());
        assert_eq!(rows[0].policy, PriorityPolicy::ListOrder);
        assert_eq!(rows[0].beats_list_order, 0);
        assert_eq!(rows[0].loses_to_list_order, 0);
    }

    #[test]
    fn critical_path_first_is_no_worse_on_average() {
        let rows = run(&small());
        let cpf = rows
            .iter()
            .find(|r| r.policy == PriorityPolicy::CriticalPathFirst)
            .unwrap();
        assert!(
            cpf.mean_processors <= rows[0].mean_processors + 0.05,
            "CPF mean {} vs list-order {}",
            cpf.mean_processors,
            rows[0].mean_processors
        );
    }

    #[test]
    fn every_variant_accounts_its_ls_simulations() {
        let rows = run(&small());
        for r in &rows {
            assert!(
                r.ls_runs >= r.sized as u64,
                "{:?}: sizing {} tasks takes at least one LS run each, \
                 probe saw {}",
                r.policy,
                r.sized,
                r.ls_runs
            );
        }
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        let t = to_table(&a);
        assert_eq!(t.len(), 3);
        assert!(t.to_csv().contains("LS runs"));
    }
}
