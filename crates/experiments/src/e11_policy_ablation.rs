//! **E11 (ablation) — does the List-Scheduling priority list matter?**
//!
//! Graham's `(2 − 1/m)` bound holds for *any* list, so the paper leaves the
//! priority order unspecified. Typical-case cluster sizes do depend on it:
//! this ablation sizes random high-density tasks with `MINPROCS` under each
//! [`PriorityPolicy`] and compares the processor counts — i.e. how much
//! platform capacity a smarter list saves in practice.

use fedsched_core::minprocs::min_procs;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::{Span, Topology, WcetRange};
use fedsched_graham::list::PriorityPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration of the priority-policy ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct E11Config {
    /// Random high-density tasks to size.
    pub trials: usize,
    /// Cluster-size cap offered to `MINPROCS`.
    pub max_processors: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E11Config {
    fn default() -> Self {
        E11Config {
            trials: 500,
            max_processors: 64,
            seed: 1111,
        }
    }
}

/// Aggregate sizing results for one priority policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E11Row {
    /// The list-construction policy.
    pub policy: PriorityPolicy,
    /// Tasks successfully sized (same set for every policy).
    pub sized: usize,
    /// Mean cluster size.
    pub mean_processors: f64,
    /// Total processors across all tasks.
    pub total_processors: u64,
    /// Tasks where this policy needed strictly fewer processors than
    /// [`PriorityPolicy::ListOrder`].
    pub beats_list_order: usize,
    /// Tasks where it needed strictly more.
    pub loses_to_list_order: usize,
}

/// Runs the ablation.
#[must_use]
pub fn run(cfg: &E11Config) -> Vec<E11Row> {
    let policies = [
        PriorityPolicy::ListOrder,
        PriorityPolicy::CriticalPathFirst,
        PriorityPolicy::LongestWcetFirst,
    ];
    let topo = Topology::ErdosRenyi {
        vertices: Span::new(10, 40),
        edge_probability: 0.12,
    };
    // Per-policy cluster sizes, aligned by trial.
    let mut sizes: Vec<Vec<u32>> = vec![Vec::new(); policies.len()];
    for i in 0..cfg.trials {
        let mut rng = StdRng::seed_from_u64(mix_seed(&[cfg.seed, i as u64]));
        let dag = topo.generate(&mut rng, WcetRange::new(1, 20));
        let len = dag.longest_chain().length.ticks();
        let vol = dag.volume().ticks();
        if vol == len {
            continue;
        }
        let d = rng.gen_range(len..=vol);
        let task = DagTask::new(dag, Duration::new(d), Duration::new(2 * d))
            .expect("generated parameters are valid");
        let per_policy: Vec<Option<u32>> = policies
            .iter()
            .map(|&p| min_procs(&task, cfg.max_processors, p).map(|r| r.processors))
            .collect();
        // Keep the trial only if every policy sized it (they almost always
        // do; dropping keeps the comparison apples-to-apples).
        if per_policy.iter().all(Option::is_some) {
            for (k, s) in per_policy.into_iter().enumerate() {
                sizes[k].push(s.expect("checked"));
            }
        }
    }
    policies
        .iter()
        .enumerate()
        .map(|(k, &policy)| {
            let n = sizes[k].len();
            let total: u64 = sizes[k].iter().map(|&s| u64::from(s)).sum();
            let beats = sizes[k]
                .iter()
                .zip(&sizes[0])
                .filter(|(a, b)| a < b)
                .count();
            let loses = sizes[k]
                .iter()
                .zip(&sizes[0])
                .filter(|(a, b)| a > b)
                .count();
            E11Row {
                policy,
                sized: n,
                mean_processors: total as f64 / n.max(1) as f64,
                total_processors: total,
                beats_list_order: beats,
                loses_to_list_order: loses,
            }
        })
        .collect()
}

/// Renders E11 rows as a table.
#[must_use]
pub fn to_table(rows: &[E11Row]) -> Table {
    let mut t = Table::new(
        "E11 (ablation): MINPROCS cluster sizes per LS priority policy",
        [
            "policy",
            "tasks",
            "mean procs",
            "total procs",
            "beats list-order",
            "loses",
        ],
    );
    for r in rows {
        t.push_row([
            format!("{:?}", r.policy),
            r.sized.to_string(),
            fmt3(r.mean_processors),
            r.total_processors.to_string(),
            r.beats_list_order.to_string(),
            r.loses_to_list_order.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E11Config {
        E11Config {
            trials: 80,
            ..E11Config::default()
        }
    }

    #[test]
    fn all_policies_size_the_same_tasks() {
        let rows = run(&small());
        assert_eq!(rows.len(), 3);
        assert!(rows[0].sized > 0);
        assert!(rows.iter().all(|r| r.sized == rows[0].sized));
    }

    #[test]
    fn list_order_never_beats_itself() {
        let rows = run(&small());
        assert_eq!(rows[0].policy, PriorityPolicy::ListOrder);
        assert_eq!(rows[0].beats_list_order, 0);
        assert_eq!(rows[0].loses_to_list_order, 0);
    }

    #[test]
    fn critical_path_first_is_no_worse_on_average() {
        let rows = run(&small());
        let cpf = rows
            .iter()
            .find(|r| r.policy == PriorityPolicy::CriticalPathFirst)
            .unwrap();
        assert!(
            cpf.mean_processors <= rows[0].mean_processors + 0.05,
            "CPF mean {} vs list-order {}",
            cpf.mean_processors,
            rows[0].mean_processors
        );
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        assert_eq!(to_table(&a).len(), 3);
    }
}
