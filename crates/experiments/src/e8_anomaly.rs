//! **E8 — Graham's timing anomaly** (paper footnote 2): why the runtime
//! replays frozen templates instead of re-running List Scheduling.
//!
//! Part A reproduces the classic 9-job instance end to end: the makespans
//! 12 → 13, and a head-to-head runtime comparison where the template
//! dispatcher never misses while the re-run dispatcher misses every job.
//!
//! Part B searches random DAGs for anomalies: how often does uniformly
//! shrinking execution times *lengthen* the re-run LS schedule?

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::{Span, Topology, WcetRange};
use fedsched_graham::anomaly::{
    classic_anomaly_dag, demonstrate_classic_anomaly, rerun_with_times,
};
use fedsched_graham::list::PriorityPolicy;
use fedsched_sim::federated::{simulate_federated, ClusterDispatch};
use fedsched_sim::model::{ArrivalModel, ExecutionModel, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Outcome of the classic-instance demonstration (part A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassicAnomalyReport {
    /// LS makespan with nominal times (paper value: 12).
    pub nominal_makespan: u64,
    /// LS makespan with every time reduced by one (paper value: 13).
    pub reduced_makespan: u64,
    /// Scored jobs in each runtime run.
    pub jobs_scored: u64,
    /// Misses of the safe template dispatcher (must be 0).
    pub template_misses: u64,
    /// Misses of the unsafe re-run dispatcher (all of them).
    pub rerun_misses: u64,
}

/// Runs part A over the given horizon.
///
/// # Panics
///
/// Panics if the classic instance cannot be admitted (it always can: 3
/// processors, D = 12).
#[must_use]
pub fn run_classic(horizon: u64) -> ClassicAnomalyReport {
    let demo = demonstrate_classic_anomaly();
    let task = DagTask::new(classic_anomaly_dag(), Duration::new(12), Duration::new(20))
        .expect("valid task");
    let system: TaskSystem = [task].into_iter().collect();
    let schedule = fedcons(&system, 3, FedConsConfig::default()).expect("admits on 3 processors");
    let config = SimConfig {
        horizon: Duration::new(horizon),
        arrivals: ArrivalModel::Periodic,
        execution: ExecutionModel::OneTickShorter,
        seed: 0,
    };
    let template = simulate_federated(
        &system,
        &schedule,
        config,
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    let rerun = simulate_federated(
        &system,
        &schedule,
        config,
        ClusterDispatch::RerunListScheduling,
        PriorityPolicy::ListOrder,
    );
    ClassicAnomalyReport {
        nominal_makespan: demo.nominal_makespan.ticks(),
        reduced_makespan: demo.reduced_makespan.ticks(),
        jobs_scored: template.jobs_scored,
        template_misses: template.miss_count() as u64,
        rerun_misses: rerun.miss_count() as u64,
    }
}

/// The DAG family the random search draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyFamily {
    /// Unstructured forward-edge Erdős–Rényi DAGs. Anomalies exist but are
    /// *rare* here (fractions of a percent) — rare enough that a system
    /// integrator could easily never see one in testing, which is exactly
    /// what makes on-line rescheduling dangerous.
    ErdosRenyi,
    /// Graham-gate family: per-processor starter jobs, a short "gate" job
    /// releasing several medium jobs, and one long job chained behind a
    /// starter — a randomized version of the classic instance's structure.
    /// Anomalies occur at percent-level rates here.
    GrahamGate,
}

impl core::fmt::Display for AnomalyFamily {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AnomalyFamily::ErdosRenyi => f.write_str("erdos-renyi"),
            AnomalyFamily::GrahamGate => f.write_str("graham-gate"),
        }
    }
}

/// Configuration for the random anomaly search (part B).
#[derive(Debug, Clone, PartialEq)]
pub struct E8Config {
    /// Random DAGs per (family, processor count) cell.
    pub trials: usize,
    /// Processor counts to try.
    pub m_values: Vec<u32>,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E8Config {
    fn default() -> Self {
        E8Config {
            trials: 3_000,
            m_values: vec![2, 3, 4],
            seed: 88,
        }
    }
}

/// Aggregate anomaly statistics for one (family, processor count) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E8Row {
    /// DAG family searched.
    pub family: AnomalyFamily,
    /// Processor count.
    pub m: u32,
    /// DAGs tried.
    pub trials: usize,
    /// DAGs where shrinking times lengthened the re-run LS schedule.
    pub anomalous: usize,
    /// Largest relative makespan increase observed.
    pub max_increase: f64,
}

/// Draws one DAG of the Graham-gate family for an `m`-processor cluster.
fn graham_gate_dag(rng: &mut StdRng, m: u32) -> fedsched_dag::graph::Dag {
    use fedsched_dag::graph::DagBuilder;
    let mut b = DagBuilder::new();
    let starters: Vec<_> = (0..m)
        .map(|_| b.add_vertex(Duration::new(rng.gen_range(2..=4))))
        .collect();
    let gate = b.add_vertex(Duration::new(rng.gen_range(1..=3)));
    let medium_count = rng.gen_range(m..=m + 2);
    for _ in 0..medium_count {
        let med = b.add_vertex(Duration::new(rng.gen_range(3..=5)));
        b.add_edge(gate, med).expect("fresh edge");
    }
    let long = b.add_vertex(Duration::new(rng.gen_range(7..=11)));
    b.add_edge(starters[0], long).expect("fresh edge");
    b.build().expect("gate family is acyclic")
}

/// Runs part B over both families: execution times independently shrunk to
/// a uniform fraction of the WCET, re-run LS makespans compared.
#[must_use]
pub fn run_search(cfg: &E8Config) -> Vec<E8Row> {
    let mut rows = Vec::new();
    for family in [AnomalyFamily::ErdosRenyi, AnomalyFamily::GrahamGate] {
        for &m in &cfg.m_values {
            let mut anomalous = 0usize;
            let mut max_increase = 0.0f64;
            for i in 0..cfg.trials {
                let mut rng = StdRng::seed_from_u64(mix_seed(&[
                    cfg.seed,
                    family as u64,
                    u64::from(m),
                    i as u64,
                ]));
                let dag = match family {
                    AnomalyFamily::ErdosRenyi => Topology::ErdosRenyi {
                        vertices: Span::new(5, 12),
                        edge_probability: 0.4,
                    }
                    .generate(&mut rng, WcetRange::new(1, 8)),
                    AnomalyFamily::GrahamGate => graham_gate_dag(&mut rng, m),
                };
                let reduced: Vec<Duration> = dag
                    .wcets()
                    .iter()
                    .map(|w| {
                        let f = rng.gen_range(0.5..1.0);
                        Duration::new(((w.ticks() as f64 * f).round() as u64).clamp(1, w.ticks()))
                    })
                    .collect();
                let demo = rerun_with_times(&dag, m, &reduced);
                if demo.is_anomalous() {
                    anomalous += 1;
                    let inc =
                        demo.reduced_makespan.ticks() as f64 / demo.nominal_makespan.ticks() as f64;
                    max_increase = max_increase.max(inc);
                }
            }
            rows.push(E8Row {
                family,
                m,
                trials: cfg.trials,
                anomalous,
                max_increase,
            });
        }
    }
    rows
}

/// Renders both parts as one table pair.
#[must_use]
pub fn to_tables(classic: &ClassicAnomalyReport, rows: &[E8Row]) -> (Table, Table) {
    let mut a = Table::new(
        "E8a: classic Graham anomaly instance — template vs re-run LS at runtime",
        ["quantity", "value"],
    );
    a.push_row(["nominal LS makespan", &classic.nominal_makespan.to_string()]);
    a.push_row([
        "makespan, all times −1",
        &classic.reduced_makespan.to_string(),
    ]);
    a.push_row(["dag-jobs scored", &classic.jobs_scored.to_string()]);
    a.push_row([
        "template dispatcher misses",
        &classic.template_misses.to_string(),
    ]);
    a.push_row([
        "re-run dispatcher misses",
        &classic.rerun_misses.to_string(),
    ]);

    let mut b = Table::new(
        "E8b: random anomaly search — how often shorter times lengthen re-run LS",
        [
            "family",
            "m",
            "trials",
            "anomalous",
            "fraction",
            "max increase",
        ],
    );
    for r in rows {
        b.push_row([
            r.family.to_string(),
            r.m.to_string(),
            r.trials.to_string(),
            r.anomalous.to_string(),
            fmt3(r.anomalous as f64 / r.trials as f64),
            fmt3(r.max_increase),
        ]);
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_report_matches_paper_numbers() {
        let r = run_classic(2_000);
        assert_eq!(r.nominal_makespan, 12);
        assert_eq!(r.reduced_makespan, 13);
        assert_eq!(r.template_misses, 0);
        assert_eq!(r.rerun_misses, r.jobs_scored);
        assert!(r.jobs_scored >= 99);
    }

    #[test]
    fn random_search_finds_anomalies_in_gate_family() {
        let cfg = E8Config {
            trials: 400,
            m_values: vec![2, 3],
            seed: 88,
        };
        let rows = run_search(&cfg);
        let gate_anomalous: usize = rows
            .iter()
            .filter(|r| r.family == AnomalyFamily::GrahamGate)
            .map(|r| r.anomalous)
            .sum();
        assert!(gate_anomalous > 0, "gate family must exhibit anomalies");
        for r in &rows {
            if r.anomalous > 0 {
                assert!(r.max_increase > 1.0);
            }
        }
    }

    #[test]
    fn unstructured_anomalies_are_rare_but_structured_are_not() {
        let cfg = E8Config {
            trials: 600,
            m_values: vec![3],
            seed: 88,
        };
        let rows = run_search(&cfg);
        let rate = |fam: AnomalyFamily| {
            let r = rows.iter().find(|r| r.family == fam).unwrap();
            r.anomalous as f64 / r.trials as f64
        };
        assert!(rate(AnomalyFamily::GrahamGate) > rate(AnomalyFamily::ErdosRenyi));
        assert!(rate(AnomalyFamily::GrahamGate) > 0.01);
    }

    #[test]
    fn tables_render() {
        let classic = run_classic(500);
        let rows = run_search(&E8Config {
            trials: 50,
            m_values: vec![3],
            seed: 1,
        });
        let (a, b) = to_tables(&classic, &rows);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 2);
        assert!(a.to_string().contains("re-run dispatcher misses"));
        assert!(b.to_string().contains("graham-gate"));
    }
}
