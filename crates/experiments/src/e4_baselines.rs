//! **E4 — baseline comparison** (the Section III "A note" discussion made
//! quantitative): on implicit-deadline systems, FEDCONS coincides with the
//! Li et al. federated algorithm in spirit; on constrained-deadline systems
//! only FEDCONS and the sequentialising global-EDF density test apply, and
//! FEDCONS should dominate whenever parallelism matters.

use fedsched_core::baselines::{global_edf_density_test, global_edf_li_test, li_federated};
use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_gen::system::SystemConfig;
use fedsched_gen::{DeadlineTightness, Span, Topology};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration for the baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Config {
    /// Platform size.
    pub m: u32,
    /// Normalized-utilization steps in `(0, 1]`.
    pub steps: usize,
    /// Systems per point.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// Per-task utilization cap.
    pub max_task_utilization: f64,
    /// Use implicit deadlines (`true`: all four tests apply) or constrained
    /// (`false`: the implicit-only baselines are reported as 0).
    pub implicit: bool,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E4Config {
    fn default() -> Self {
        E4Config {
            m: 8,
            steps: 20,
            systems_per_point: 200,
            n_tasks: 8,
            max_task_utilization: 2.0,
            implicit: true,
            seed: 44,
        }
    }
}

/// One point of the comparison: acceptance counts for each algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E4Row {
    /// Normalized utilization `U_sum / m`.
    pub normalized_utilization: f64,
    /// Systems generated.
    pub generated: usize,
    /// Accepted by FEDCONS.
    pub fedcons: usize,
    /// Accepted by Li et al. federated (implicit-deadline systems only).
    pub li_federated: usize,
    /// Accepted by the Li et al. global-EDF capacity test.
    pub global_edf_li: usize,
    /// Accepted by the sequentialising global-EDF density test.
    pub global_edf_density: usize,
}

/// Runs the comparison sweep.
#[must_use]
pub fn run(cfg: &E4Config) -> Vec<E4Row> {
    let tightness = if cfg.implicit {
        DeadlineTightness::implicit()
    } else {
        DeadlineTightness::new(0.3, 0.9)
    };
    let topology = Topology::Layered {
        layers: Span::new(2, 5),
        width: Span::new(1, 5),
        edge_probability: 0.3,
    };
    let mut rows = Vec::new();
    for step in 1..=cfg.steps {
        let norm_u = step as f64 / cfg.steps as f64;
        let gen_cfg = SystemConfig::new(cfg.n_tasks, norm_u * f64::from(cfg.m))
            .with_max_task_utilization(cfg.max_task_utilization)
            .with_topology(topology)
            .with_tightness(tightness);
        let mut row = E4Row {
            normalized_utilization: norm_u,
            generated: 0,
            fedcons: 0,
            li_federated: 0,
            global_edf_li: 0,
            global_edf_density: 0,
        };
        for i in 0..cfg.systems_per_point {
            let seed = mix_seed(&[cfg.seed, step as u64, i as u64]);
            let Some(system) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            row.generated += 1;
            if fedcons(&system, cfg.m, FedConsConfig::default()).is_ok() {
                row.fedcons += 1;
            }
            if li_federated(&system, cfg.m).is_ok() {
                row.li_federated += 1;
            }
            if global_edf_li_test(&system, cfg.m) {
                row.global_edf_li += 1;
            }
            if global_edf_density_test(&system, cfg.m) {
                row.global_edf_density += 1;
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders E4 rows as a table of acceptance ratios.
#[must_use]
pub fn to_table(rows: &[E4Row], cfg: &E4Config) -> Table {
    let kind = if cfg.implicit {
        "implicit"
    } else {
        "constrained"
    };
    let mut t = Table::new(
        format!(
            "E4: acceptance ratios, FEDCONS vs baselines ({kind}-deadline, m = {})",
            cfg.m
        ),
        [
            "U/m",
            "generated",
            "FEDCONS",
            "Li-federated",
            "GEDF-Li",
            "GEDF-density",
        ],
    );
    for r in rows {
        let ratio = |a: usize| {
            if r.generated == 0 {
                "0.000".to_owned()
            } else {
                fmt3(a as f64 / r.generated as f64)
            }
        };
        t.push_row([
            fmt3(r.normalized_utilization),
            r.generated.to_string(),
            ratio(r.fedcons),
            ratio(r.li_federated),
            ratio(r.global_edf_li),
            ratio(r.global_edf_density),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(implicit: bool) -> E4Config {
        E4Config {
            m: 4,
            steps: 4,
            systems_per_point: 25,
            n_tasks: 6,
            implicit,
            ..E4Config::default()
        }
    }

    #[test]
    fn implicit_comparison_shapes() {
        let cfg = small(true);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4);
        let total = |f: fn(&E4Row) -> usize| rows.iter().map(f).sum::<usize>() as f64;
        let gen: f64 = total(|r| r.generated);
        assert!(gen > 0.0);
        // Federated algorithms accept more than the conservative global-EDF
        // capacity test overall.
        assert!(total(|r| r.fedcons) >= total(|r| r.global_edf_li));
        // At the lowest utilization point everything reasonable accepts.
        assert!(rows[0].fedcons as f64 / rows[0].generated as f64 > 0.9);
    }

    #[test]
    fn constrained_mode_disables_li_baselines() {
        let cfg = small(false);
        let rows = run(&cfg);
        for r in &rows {
            assert_eq!(r.li_federated, 0, "Li federated is implicit-only");
            assert_eq!(r.global_edf_li, 0, "GEDF-Li is implicit-only");
        }
        // FEDCONS still accepts plenty at low utilization.
        assert!(rows[0].fedcons > 0);
    }

    #[test]
    fn fedcons_dominates_density_baseline_with_high_density_tasks() {
        // High per-task utilization cap + tight deadlines produce δ > 1
        // tasks that the sequentialising baseline can never accept.
        let cfg = E4Config {
            m: 8,
            steps: 2,
            systems_per_point: 30,
            n_tasks: 4,
            max_task_utilization: 3.0,
            implicit: false,
            seed: 9,
        };
        let rows = run(&cfg);
        let fed: usize = rows.iter().map(|r| r.fedcons).sum();
        let dens: usize = rows.iter().map(|r| r.global_edf_density).sum();
        assert!(fed > dens, "FEDCONS {fed} vs density {dens}");
    }

    #[test]
    fn table_renders() {
        let cfg = small(true);
        let t = to_table(&run(&cfg), &cfg);
        assert_eq!(t.len(), 4);
        assert!(t.to_string().contains("FEDCONS"));
    }
}
