//! **E4 — baseline comparison** (the Section III "A note" discussion made
//! quantitative): on implicit-deadline systems, FEDCONS coincides with the
//! Li et al. federated algorithm in spirit; on constrained-deadline systems
//! only FEDCONS and the sequentialising global-EDF density test apply, and
//! FEDCONS should dominate whenever parallelism matters.
//!
//! The sweep is policy-generic: it iterates the full
//! [`SchedulingPolicy`] registry, so a new analysis added to
//! `fedsched-policy` shows up here (and in the CSV) without touching this
//! module.

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::{DeadlineTightness, Span, Topology};
use fedsched_policy::{policy_names, registry, SchedulingPolicy};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration for the baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Config {
    /// Platform size.
    pub m: u32,
    /// Normalized-utilization steps in `(0, 1]`.
    pub steps: usize,
    /// Systems per point.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// Per-task utilization cap.
    pub max_task_utilization: f64,
    /// Use implicit deadlines (`true`: every registry policy applies) or
    /// constrained (`false`: the implicit-only baselines reject everything
    /// with a typed [`AdmissionFailure`](fedsched_policy::AdmissionFailure)).
    pub implicit: bool,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E4Config {
    fn default() -> Self {
        E4Config {
            m: 8,
            steps: 20,
            systems_per_point: 200,
            n_tasks: 8,
            max_task_utilization: 2.0,
            implicit: true,
            seed: 44,
        }
    }
}

/// One point of the comparison: acceptance counts for each registry policy.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Row {
    /// Normalized utilization `U_sum / m`.
    pub normalized_utilization: f64,
    /// Systems generated.
    pub generated: usize,
    /// Acceptance counts, aligned with [`policy_names`] order.
    pub accepted: Vec<usize>,
}

impl E4Row {
    /// Acceptance count of the registry policy called `name` (0 for an
    /// unknown name).
    #[must_use]
    pub fn accepted_by(&self, name: &str) -> usize {
        policy_names()
            .iter()
            .position(|&n| n == name)
            .and_then(|k| self.accepted.get(k).copied())
            .unwrap_or(0)
    }
}

/// Runs the comparison sweep over the whole policy registry.
#[must_use]
pub fn run(cfg: &E4Config) -> Vec<E4Row> {
    let policies: Vec<Box<dyn SchedulingPolicy>> = registry();
    let tightness = if cfg.implicit {
        DeadlineTightness::implicit()
    } else {
        DeadlineTightness::new(0.3, 0.9)
    };
    let topology = Topology::Layered {
        layers: Span::new(2, 5),
        width: Span::new(1, 5),
        edge_probability: 0.3,
    };
    let mut rows = Vec::new();
    for step in 1..=cfg.steps {
        let norm_u = step as f64 / cfg.steps as f64;
        let gen_cfg = SystemConfig::new(cfg.n_tasks, norm_u * f64::from(cfg.m))
            .with_max_task_utilization(cfg.max_task_utilization)
            .with_topology(topology)
            .with_tightness(tightness);
        let mut row = E4Row {
            normalized_utilization: norm_u,
            generated: 0,
            accepted: vec![0; policies.len()],
        };
        for i in 0..cfg.systems_per_point {
            let seed = mix_seed(&[cfg.seed, step as u64, i as u64]);
            let Some(system) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            row.generated += 1;
            for (k, policy) in policies.iter().enumerate() {
                let mut probe = AnalysisProbe::default();
                if policy.analyze(&system, cfg.m, &mut probe).is_ok() {
                    row.accepted[k] += 1;
                }
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders E4 rows as a table of acceptance ratios, one column per
/// registry policy.
#[must_use]
pub fn to_table(rows: &[E4Row], cfg: &E4Config) -> Table {
    let kind = if cfg.implicit {
        "implicit"
    } else {
        "constrained"
    };
    let mut headers = vec!["U/m".to_owned(), "generated".to_owned()];
    headers.extend(policy_names().iter().map(|n| (*n).to_owned()));
    let mut t = Table::new(
        format!(
            "E4: acceptance ratios across the policy registry ({kind}-deadline, m = {})",
            cfg.m
        ),
        headers,
    );
    for r in rows {
        let mut cells = vec![fmt3(r.normalized_utilization), r.generated.to_string()];
        for &a in &r.accepted {
            cells.push(if r.generated == 0 {
                "0.000".to_owned()
            } else {
                fmt3(a as f64 / r.generated as f64)
            });
        }
        t.push_row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(implicit: bool) -> E4Config {
        E4Config {
            m: 4,
            steps: 4,
            systems_per_point: 25,
            n_tasks: 6,
            implicit,
            ..E4Config::default()
        }
    }

    #[test]
    fn implicit_comparison_shapes() {
        let cfg = small(true);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4);
        assert!(rows
            .iter()
            .all(|r| r.accepted.len() == policy_names().len()));
        let total = |name: &str| rows.iter().map(|r| r.accepted_by(name)).sum::<usize>() as f64;
        let generated: usize = rows.iter().map(|r| r.generated).sum();
        assert!(generated > 0);
        // Federated algorithms accept more than the conservative global-EDF
        // capacity test overall.
        assert!(total("fedcons") >= total("gedf-li"));
        // At the lowest utilization point everything reasonable accepts.
        assert!(rows[0].accepted_by("fedcons") as f64 / rows[0].generated as f64 > 0.9);
    }

    #[test]
    fn constrained_mode_disables_li_baselines() {
        let cfg = small(false);
        let rows = run(&cfg);
        for r in &rows {
            assert_eq!(
                r.accepted_by("li-federated"),
                0,
                "Li federated is implicit-only"
            );
            assert_eq!(r.accepted_by("gedf-li"), 0, "GEDF-Li is implicit-only");
        }
        // FEDCONS still accepts plenty at low utilization.
        assert!(rows[0].accepted_by("fedcons") > 0);
    }

    #[test]
    fn fedcons_dominates_density_baseline_with_high_density_tasks() {
        // High per-task utilization cap + tight deadlines produce δ > 1
        // tasks that the sequentialising baseline can never accept.
        let cfg = E4Config {
            m: 8,
            steps: 2,
            systems_per_point: 30,
            n_tasks: 4,
            max_task_utilization: 3.0,
            implicit: false,
            seed: 9,
        };
        let rows = run(&cfg);
        let fed: usize = rows.iter().map(|r| r.accepted_by("fedcons")).sum();
        let dens: usize = rows.iter().map(|r| r.accepted_by("gedf-density")).sum();
        assert!(fed > dens, "FEDCONS {fed} vs density {dens}");
    }

    #[test]
    fn table_renders_one_column_per_policy() {
        let cfg = small(true);
        let t = to_table(&run(&cfg), &cfg);
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        for name in policy_names() {
            assert!(csv.contains(name), "missing column {name}");
        }
    }
}
