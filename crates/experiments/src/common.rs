//! Shared helpers for the experiment modules.

/// Deterministic seed mixing (SplitMix64 finalizer) so every generated
/// system is reproducible from the experiment seed and its coordinates.
#[must_use]
pub fn mix_seed(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        h ^= p.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

/// Formats a ratio as a fixed three-decimal string.
#[must_use]
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Runs `trials` independent experiment trials through the workspace's
/// parallel façade and returns the per-trial results **in trial order**.
///
/// Every trial must derive its randomness from its own index (the
/// experiments seed each trial with [`mix_seed`] over the trial number), so
/// results are independent of execution order and any fold over the
/// returned vector is byte-identical to the sequential `for` loop it
/// replaces — at any pool width, including the `FEDSCHED_THREADS=1`
/// escape hatch.
pub fn par_trials<R, F>(trials: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..trials).collect();
    fedsched_parallel::par_map(&indices, |&i| run(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_is_deterministic_and_sensitive() {
        assert_eq!(mix_seed(&[1, 2, 3]), mix_seed(&[1, 2, 3]));
        assert_ne!(mix_seed(&[1, 2, 3]), mix_seed(&[1, 2, 4]));
        assert_ne!(mix_seed(&[1, 2, 3]), mix_seed(&[3, 2, 1]));
        assert_ne!(mix_seed(&[]), mix_seed(&[0]));
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt3(1.0), "1.000");
    }

    #[test]
    fn par_trials_preserves_trial_order() {
        let out = par_trials(100, |i| mix_seed(&[7, i as u64]));
        let expected: Vec<u64> = (0..100).map(|i| mix_seed(&[7, i as u64])).collect();
        assert_eq!(out, expected);
        assert!(par_trials(0, |i| i).is_empty());
    }
}
