//! **E15 — critical-speed distribution (sensitivity analysis).**
//!
//! For each random system, the *critical speed* is the minimum processor
//! speed at which FEDCONS first accepts it on a fixed platform — the
//! speedup-metric (Definition 1) turned into a per-system sensitivity
//! measure, directly comparable across topologies. Values ≤ 1 mean the
//! system is accepted as-is with margin; the distribution's upper tail
//! shows how far typical systems sit from the `3 − 1/m` worst case.

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_core::speedup::required_speed;
use fedsched_dag::system::TaskSystem;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::{DeadlineTightness, Span, Topology};

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration of the critical-speed study.
#[derive(Debug, Clone, PartialEq)]
pub struct E15Config {
    /// Platform size.
    pub m: u32,
    /// Normalized utilization of the generated systems.
    pub normalized_utilization: f64,
    /// Systems per topology.
    pub systems_per_topology: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// Speed grid denominator.
    pub grid: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E15Config {
    fn default() -> Self {
        E15Config {
            m: 8,
            normalized_utilization: 0.6,
            systems_per_topology: 100,
            n_tasks: 8,
            grid: 32,
            seed: 1515,
        }
    }
}

/// Distribution summary for one topology family.
#[derive(Debug, Clone, PartialEq)]
pub struct E15Row {
    /// Topology label.
    pub topology: String,
    /// Systems measured.
    pub measured: usize,
    /// Fraction whose critical speed is ≤ 1 (accepted as generated).
    pub accepted_at_unit_speed: f64,
    /// Median critical speed.
    pub median_speed: f64,
    /// 90th-percentile critical speed.
    pub p90_speed: f64,
    /// Maximum observed critical speed.
    pub max_speed: f64,
}

fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        (
            "layered",
            Topology::Layered {
                layers: Span::new(2, 5),
                width: Span::new(1, 5),
                edge_probability: 0.3,
            },
        ),
        (
            "erdos-renyi",
            Topology::ErdosRenyi {
                vertices: Span::new(5, 20),
                edge_probability: 0.2,
            },
        ),
        (
            "fork-join",
            Topology::NestedForkJoin {
                depth: Span::new(1, 3),
                branching: Span::new(2, 3),
            },
        ),
        (
            "series-parallel",
            Topology::SeriesParallel {
                operations: Span::new(3, 12),
            },
        ),
    ]
}

/// Runs the study across the four topology families.
#[must_use]
pub fn run(cfg: &E15Config) -> Vec<E15Row> {
    let mut rows = Vec::new();
    for (name, topo) in topologies() {
        let gen_cfg = SystemConfig::new(cfg.n_tasks, cfg.normalized_utilization * f64::from(cfg.m))
            .with_max_task_utilization(1.5)
            .with_topology(topo)
            .with_tightness(DeadlineTightness::new(0.2, 1.0));
        let mut speeds: Vec<f64> = Vec::new();
        for i in 0..cfg.systems_per_topology {
            let seed = mix_seed(&[cfg.seed, i as u64]);
            let Some(system) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            let accepts = |s: &TaskSystem| fedcons(s, cfg.m, FedConsConfig::default()).is_ok();
            if let Some(speed) = required_speed(&system, accepts, cfg.grid, 4) {
                speeds.push(speed.to_f64());
            }
        }
        speeds.sort_by(f64::total_cmp);
        let n = speeds.len();
        let pct = |q: f64| {
            if n == 0 {
                f64::NAN
            } else {
                speeds[((n as f64 - 1.0) * q).round() as usize]
            }
        };
        rows.push(E15Row {
            topology: name.to_owned(),
            measured: n,
            accepted_at_unit_speed: speeds.iter().filter(|&&s| s <= 1.0).count() as f64
                / n.max(1) as f64,
            median_speed: pct(0.5),
            p90_speed: pct(0.9),
            max_speed: speeds.last().copied().unwrap_or(f64::NAN),
        });
    }
    rows
}

/// Renders E15 rows as a table.
#[must_use]
pub fn to_table(rows: &[E15Row], cfg: &E15Config) -> Table {
    let bound = 3.0 - 1.0 / f64::from(cfg.m);
    let mut t = Table::new(
        format!(
            "E15: critical-speed distribution by topology (m = {}, U/m = {}, Thm-1 bound {bound:.3})",
            cfg.m, cfg.normalized_utilization
        ),
        ["topology", "systems", "≤ 1.0", "median", "p90", "max"],
    );
    for r in rows {
        t.push_row([
            r.topology.clone(),
            r.measured.to_string(),
            fmt3(r.accepted_at_unit_speed),
            fmt3(r.median_speed),
            fmt3(r.p90_speed),
            fmt3(r.max_speed),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E15Config {
        E15Config {
            m: 4,
            systems_per_topology: 15,
            n_tasks: 6,
            grid: 8,
            ..E15Config::default()
        }
    }

    #[test]
    fn distributions_are_sane() {
        let rows = run(&small());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.measured > 10, "{}: {}", r.topology, r.measured);
            assert!(r.median_speed <= r.p90_speed);
            assert!(r.p90_speed <= r.max_speed);
            // Typical systems at U/m = 0.6 sit far under the 3 − 1/m bound.
            assert!(r.max_speed < 3.0 - 1.0 / 4.0);
            assert!(r.accepted_at_unit_speed > 0.2, "{}", r.topology);
        }
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        let t = to_table(&a, &small());
        assert_eq!(t.len(), 4);
        assert!(t.title.contains("bound 2.750"));
    }
}
