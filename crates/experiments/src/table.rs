//! Plain-text and CSV table rendering for experiment results.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A simple rectangular results table with a title and column headers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table title (printed above the header row).
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new<T, H, S>(title: T, headers: H) -> Table
    where
        T: Into<String>,
        H: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<R, S>(&mut self, row: R)
    where
        R: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row first). Fields containing
    /// commas or quotes are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        writeln!(f, "# {}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "| {} |", line.join(" | "))
        };
        render(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", ["m", "ratio"]);
        t.push_row(["4", "0.95"]);
        t.push_row(["16", "0.80"]);
        t
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let s = sample().to_string();
        assert!(s.contains("# demo"));
        assert!(s.contains("|  m | ratio |"));
        assert!(s.contains("| 16 |  0.80 |"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv, "m,ratio\n4,0.95\n16,0.80\n");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("q", ["a"]);
        t.push_row(["x,y"]);
        t.push_row(["he said \"hi\""]);
        assert_eq!(t.to_csv(), "a\n\"x,y\"\n\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("bad", ["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("fedsched_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        sample().write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.starts_with("m,ratio"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
