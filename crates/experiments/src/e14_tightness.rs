//! **E14 — deadline tightness: the dimension the paper adds.**
//!
//! The paper's whole point is handling `D < T`. This experiment fixes the
//! platform and utilization and sweeps how tight the deadlines are drawn
//! within `[len, T]` (tightness fraction 0 = deadlines hug the critical
//! path, 1 = implicit deadlines). As deadlines tighten, densities grow,
//! low-density tasks migrate into the high-density class (costing dedicated
//! processors), and acceptance falls — quantifying the price of deadline
//! constraint that the implicit-deadline algorithm of \[17\] never faces.

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_gen::system::SystemConfig;
use fedsched_gen::DeadlineTightness;

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration of the tightness sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct E14Config {
    /// Platform size.
    pub m: u32,
    /// Normalized utilization (fixed across the sweep).
    pub normalized_utilization: f64,
    /// Number of tightness steps in `\[0, 1\]`.
    pub steps: usize,
    /// Systems per step.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E14Config {
    fn default() -> Self {
        E14Config {
            m: 8,
            normalized_utilization: 0.5,
            steps: 10,
            systems_per_point: 200,
            n_tasks: 8,
            seed: 1414,
        }
    }
}

/// One tightness point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E14Row {
    /// Centre of the tightness band used at this point.
    pub tightness: f64,
    /// Systems generated.
    pub generated: usize,
    /// Accepted by FEDCONS.
    pub accepted: usize,
    /// Mean fraction of tasks that were high-density.
    pub mean_high_density_fraction: f64,
    /// Mean processors consumed by dedicated clusters in accepted systems.
    pub mean_dedicated: f64,
}

/// Runs the sweep, from implicit deadlines (tightness 1) down to
/// chain-hugging ones (tightness 0).
#[must_use]
pub fn run(cfg: &E14Config) -> Vec<E14Row> {
    let mut rows = Vec::new();
    for step in 0..cfg.steps {
        // A narrow band centred on the step's fraction, swept from loose
        // to tight.
        let hi = 1.0 - step as f64 / cfg.steps as f64;
        let lo = (hi - 1.0 / cfg.steps as f64).max(0.0);
        let gen_cfg = SystemConfig::new(cfg.n_tasks, cfg.normalized_utilization * f64::from(cfg.m))
            .with_max_task_utilization(1.2)
            .with_tightness(DeadlineTightness::new(lo, hi));
        let mut generated = 0usize;
        let mut accepted = 0usize;
        let mut high_fraction_sum = 0.0f64;
        let mut dedicated_sum = 0u64;
        for i in 0..cfg.systems_per_point {
            let seed = mix_seed(&[cfg.seed, step as u64, i as u64]);
            let Some(system) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            generated += 1;
            high_fraction_sum += system.high_density_ids().len() as f64 / system.len() as f64;
            if let Ok(schedule) = fedcons(&system, cfg.m, FedConsConfig::default()) {
                accepted += 1;
                dedicated_sum += u64::from(schedule.shared_first());
            }
        }
        rows.push(E14Row {
            tightness: (lo + hi) / 2.0,
            generated,
            accepted,
            mean_high_density_fraction: high_fraction_sum / generated.max(1) as f64,
            mean_dedicated: dedicated_sum as f64 / accepted.max(1) as f64,
        });
    }
    rows
}

/// Renders E14 rows as a table.
#[must_use]
pub fn to_table(rows: &[E14Row], cfg: &E14Config) -> Table {
    let mut t = Table::new(
        format!(
            "E14: deadline tightness sweep (m = {}, U/m = {})",
            cfg.m, cfg.normalized_utilization
        ),
        [
            "D tightness",
            "generated",
            "accepted",
            "ratio",
            "high-δ fraction",
            "mean dedicated procs",
        ],
    );
    for r in rows {
        t.push_row([
            fmt3(r.tightness),
            r.generated.to_string(),
            r.accepted.to_string(),
            fmt3(r.accepted as f64 / r.generated.max(1) as f64),
            fmt3(r.mean_high_density_fraction),
            fmt3(r.mean_dedicated),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E14Config {
        E14Config {
            m: 4,
            steps: 5,
            systems_per_point: 30,
            n_tasks: 6,
            ..E14Config::default()
        }
    }

    #[test]
    fn tighter_deadlines_mean_more_high_density_tasks() {
        let rows = run(&small());
        assert_eq!(rows.len(), 5);
        // Rows go loose → tight; the high-density fraction must rise.
        assert!(
            rows.last().unwrap().mean_high_density_fraction > rows[0].mean_high_density_fraction
        );
        // Implicit-ish deadlines with U/m = 0.5 and u ≤ 1.2: nearly no
        // high-density tasks.
        assert!(rows[0].mean_high_density_fraction < 0.15);
    }

    #[test]
    fn acceptance_degrades_as_deadlines_tighten() {
        let rows = run(&small());
        let loose = rows[0].accepted as f64 / rows[0].generated.max(1) as f64;
        let tight =
            rows.last().unwrap().accepted as f64 / rows.last().unwrap().generated.max(1) as f64;
        assert!(loose > tight, "loose {loose} vs tight {tight}");
        assert!(loose > 0.9);
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        let t = to_table(&a, &small());
        assert_eq!(t.len(), a.len());
    }
}
