//! **E13 — federated admission vs. empirical global EDF.**
//!
//! The paper frames federated scheduling against the global approach
//! (Section I): partitioned-style schemes are simpler and analysable,
//! global schemes waste less capacity. The analytic global-EDF tests of E4
//! are far too conservative to show that trade-off, so this experiment uses
//! the *runtime* instead: a system counts as "global-EDF-OK" if vertex-level
//! global EDF runs one observation window (periodic arrivals, exact WCETs)
//! without a miss.
//!
//! Caveat, stated loudly: a clean window is **no guarantee** — sporadic
//! release patterns other than the synchronous periodic one can still miss
//! (global EDF is not sustainable in general). The comparison therefore
//! shows FEDCONS's *provable* acceptance against global EDF's *optimistic*
//! empirical ceiling, which is precisely the analysability-vs-capacity
//! trade-off the paper describes.

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::DeadlineTightness;
use fedsched_sim::global_edf::simulate_global_edf;
use fedsched_sim::model::SimConfig;

use crate::common::{fmt3, mix_seed};
use crate::table::Table;

/// Configuration of the federated-vs-global comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct E13Config {
    /// Platform size.
    pub m: u32,
    /// Normalized-utilization steps in `(0, 1]`.
    pub steps: usize,
    /// Systems per point.
    pub systems_per_point: usize,
    /// Tasks per system.
    pub n_tasks: usize,
    /// Observation window for the global-EDF run (ticks).
    pub horizon: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E13Config {
    fn default() -> Self {
        E13Config {
            m: 8,
            steps: 20,
            systems_per_point: 100,
            n_tasks: 8,
            horizon: 50_000,
            seed: 1313,
        }
    }
}

/// One point of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E13Row {
    /// Normalized utilization.
    pub normalized_utilization: f64,
    /// Systems generated.
    pub generated: usize,
    /// Accepted by FEDCONS (provable).
    pub fedcons: usize,
    /// Global-EDF window ran clean (empirical, no guarantee).
    pub global_edf_clean: usize,
    /// Systems FEDCONS rejected but whose global window was clean — the
    /// apparent capacity the federated structure gives up.
    pub global_only: usize,
}

/// Runs the sweep.
#[must_use]
pub fn run(cfg: &E13Config) -> Vec<E13Row> {
    let mut rows = Vec::new();
    for step in 1..=cfg.steps {
        let norm_u = step as f64 / cfg.steps as f64;
        let gen_cfg = SystemConfig::new(cfg.n_tasks, norm_u * f64::from(cfg.m))
            .with_max_task_utilization(1.5)
            .with_tightness(DeadlineTightness::new(0.3, 1.0));
        let mut row = E13Row {
            normalized_utilization: norm_u,
            generated: 0,
            fedcons: 0,
            global_edf_clean: 0,
            global_only: 0,
        };
        for i in 0..cfg.systems_per_point {
            let seed = mix_seed(&[cfg.seed, step as u64, i as u64]);
            let Some(system) = gen_cfg.generate_seeded(seed) else {
                continue;
            };
            row.generated += 1;
            let fed = fedcons(&system, cfg.m, FedConsConfig::default()).is_ok();
            if fed {
                row.fedcons += 1;
            }
            let report = simulate_global_edf(
                &system,
                cfg.m,
                SimConfig::worst_case(Duration::new(cfg.horizon)),
            );
            let clean = report.is_clean() && report.jobs_scored > 0;
            if clean {
                row.global_edf_clean += 1;
                if !fed {
                    row.global_only += 1;
                }
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders E13 rows as a table.
#[must_use]
pub fn to_table(rows: &[E13Row], cfg: &E13Config) -> Table {
    let mut t = Table::new(
        format!(
            "E13: provable FEDCONS acceptance vs empirical global-EDF window (m = {})",
            cfg.m
        ),
        [
            "U/m",
            "generated",
            "FEDCONS (provable)",
            "GEDF window clean",
            "GEDF-only",
        ],
    );
    for r in rows {
        let g = r.generated.max(1) as f64;
        t.push_row([
            fmt3(r.normalized_utilization),
            r.generated.to_string(),
            fmt3(r.fedcons as f64 / g),
            fmt3(r.global_edf_clean as f64 / g),
            fmt3(r.global_only as f64 / g),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E13Config {
        E13Config {
            m: 4,
            steps: 5,
            systems_per_point: 15,
            n_tasks: 5,
            horizon: 20_000,
            ..E13Config::default()
        }
    }

    #[test]
    fn global_window_is_an_upper_envelope() {
        // At every point the empirical global-EDF count should be at least
        // the FEDCONS count minus statistical noise; in aggregate it must
        // dominate (global EDF with WCET-periodic arrivals handles at
        // least what the federated structure provably handles).
        let rows = run(&small());
        let fed: usize = rows.iter().map(|r| r.fedcons).sum();
        let gedf: usize = rows.iter().map(|r| r.global_edf_clean).sum();
        assert!(gedf >= fed, "gedf {gedf} < fedcons {fed}");
    }

    #[test]
    fn capacity_gap_appears_under_load() {
        let rows = run(&small());
        let gap: usize = rows.iter().map(|r| r.global_only).sum();
        assert!(gap > 0, "expected some GEDF-only systems near saturation");
    }

    #[test]
    fn both_accept_everything_at_low_load() {
        let rows = run(&small());
        assert_eq!(rows[0].fedcons, rows[0].generated);
        assert_eq!(rows[0].global_edf_clean, rows[0].generated);
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        assert_eq!(a, run(&small()));
        let t = to_table(&a, &small());
        assert_eq!(t.len(), a.len());
        assert!(t.to_string().contains("GEDF"));
    }
}
