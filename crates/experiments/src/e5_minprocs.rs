//! **E5 — Lemma 1 empirically:** the speedup List Scheduling needs over a
//! clairvoyant scheduler for a single high-density DAG never exceeds
//! `2 − 1/m`.
//!
//! For each random high-density task we compute the *optimal* processor
//! lower bound `m_lb = ⌈vol / D⌉` (no scheduler meets the deadline on fewer
//! unit-speed processors, since `max(len, vol/m) ≤ D` is necessary), then
//! binary-search the smallest processor speed at which `MINPROCS` fits the
//! task on exactly `m_lb` processors. Lemma 1 promises that speed is at
//! most `2 − 1/m_lb`; the experiment reports the measured distribution,
//! which sits far below the bound.

use fedsched_core::minprocs::min_procs_fits;
use fedsched_core::speedup::required_speed;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::{Span, Topology, WcetRange};
use fedsched_graham::list::PriorityPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{fmt3, mix_seed, par_trials};
use crate::table::Table;

/// Configuration for the MINPROCS speedup study.
#[derive(Debug, Clone, PartialEq)]
pub struct E5Config {
    /// Number of random high-density tasks.
    pub trials: usize,
    /// DAG topology family.
    pub topology: Topology,
    /// Vertex WCET range.
    pub wcet: WcetRange,
    /// Speed-search grid denominator.
    pub grid: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for E5Config {
    fn default() -> Self {
        E5Config {
            trials: 500,
            topology: Topology::ErdosRenyi {
                vertices: Span::new(8, 30),
                edge_probability: 0.15,
            },
            wcet: WcetRange::new(1, 20),
            grid: 64,
            seed: 55,
        }
    }
}

/// Aggregated measurements for one optimal-processor-count bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E5Row {
    /// The lower-bound processor count `m_lb` of this bucket.
    pub m_lb: u32,
    /// Trials that landed in the bucket.
    pub trials: usize,
    /// Mean measured speedup.
    pub mean_speed: f64,
    /// Maximum measured speedup.
    pub max_speed: f64,
    /// Lemma 1 bound `2 − 1/m_lb`.
    pub bound: f64,
}

/// Runs the study. Every measured speed is checked against Lemma 1; a
/// violation would be a bug in the implementation, so it panics loudly.
///
/// # Panics
///
/// Panics if any measured speedup exceeds `2 − 1/m_lb` — i.e. if Lemma 1
/// were violated.
#[must_use]
pub fn run(cfg: &E5Config) -> Vec<E5Row> {
    // Trials are independent and seeded by their index, so they fan out
    // through the parallel façade; folding the per-trial measurements in
    // trial order keeps the buckets byte-identical to the sequential loop.
    let measurements = par_trials(cfg.trials, |i| {
        let mut rng = StdRng::seed_from_u64(mix_seed(&[cfg.seed, i as u64]));
        let dag = cfg.topology.generate(&mut rng, cfg.wcet);
        let len = dag.longest_chain().length.ticks();
        let vol = dag.volume().ticks();
        if vol == len {
            return None; // a pure chain: m_lb = 1 and LS is optimal; skip
        }
        // D uniform in [len, vol] makes the task high-density (δ ≥ 1).
        let d = rng.gen_range(len..=vol);
        let t = d + rng.gen_range(0..=d);
        let task = DagTask::new(dag, Duration::new(d), Duration::new(t))
            .expect("generated parameters are valid");
        let m_lb = u32::try_from(vol.div_ceil(d)).expect("fits u32").max(1);
        let system: TaskSystem = [task].into_iter().collect();
        // The speed search only needs the acceptance verdict, never the
        // template — `min_procs_fits` settles most probes with a Graham
        // certificate and zero LS runs.
        let accepts =
            |s: &TaskSystem| min_procs_fits(&s.tasks()[0], m_lb, PriorityPolicy::ListOrder);
        let speed = required_speed(&system, accepts, cfg.grid, 3)
            .expect("speed 2 − 1/m always suffices by Lemma 1")
            .to_f64();
        let bound = 2.0 - 1.0 / f64::from(m_lb);
        assert!(
            speed <= bound + 1e-9,
            "Lemma 1 violated: speed {speed} > bound {bound} (m_lb = {m_lb})"
        );
        Some((m_lb, speed))
    });
    let mut buckets: std::collections::BTreeMap<u32, Vec<f64>> = std::collections::BTreeMap::new();
    for (m_lb, speed) in measurements.into_iter().flatten() {
        buckets.entry(m_lb).or_default().push(speed);
    }
    buckets
        .into_iter()
        .map(|(m_lb, speeds)| {
            let n = speeds.len();
            let mean = speeds.iter().sum::<f64>() / n as f64;
            let max = speeds.iter().copied().fold(0.0, f64::max);
            E5Row {
                m_lb,
                trials: n,
                mean_speed: mean,
                max_speed: max,
                bound: 2.0 - 1.0 / f64::from(m_lb),
            }
        })
        .collect()
}

/// Renders E5 rows as a table.
#[must_use]
pub fn to_table(rows: &[E5Row]) -> Table {
    let mut t = Table::new(
        "E5: measured MINPROCS speedup vs the Lemma 1 bound (2 − 1/m)",
        ["m_lb", "trials", "mean speed", "max speed", "bound 2−1/m"],
    );
    for r in rows {
        t.push_row([
            r.m_lb.to_string(),
            r.trials.to_string(),
            fmt3(r.mean_speed),
            fmt3(r.max_speed),
            fmt3(r.bound),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E5Config {
        E5Config {
            trials: 60,
            ..E5Config::default()
        }
    }

    #[test]
    fn all_measurements_respect_lemma_one() {
        // `run` itself asserts the bound; surviving is the test.
        let rows = run(&small());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.max_speed <= r.bound + 1e-9);
            assert!(r.mean_speed <= r.max_speed + 1e-12);
            assert!(r.trials > 0);
        }
    }

    #[test]
    fn typical_speed_is_well_below_bound() {
        let rows = run(&small());
        let overall_mean: f64 = rows
            .iter()
            .map(|r| r.mean_speed * r.trials as f64)
            .sum::<f64>()
            / rows.iter().map(|r| r.trials as f64).sum::<f64>();
        // The paper's point: typical behaviour beats the worst case by far.
        assert!(overall_mean < 1.6, "mean measured speed {overall_mean}");
    }

    #[test]
    fn deterministic_and_renders() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(a, b);
        let t = to_table(&a);
        assert_eq!(t.len(), a.len());
    }
}
