//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! run_experiments [--quick] [--threads N] [--out DIR] [e2|e3|e4|e5|e6|e7|e8|all]...
//! ```
//!
//! Prints each table and writes its CSV next to it under `--out`
//! (default `results/`). `--quick` shrinks the sweeps for smoke runs.
//! `--threads N` sizes the analysis thread pool (results are
//! byte-identical at every pool size).

use std::path::PathBuf;
use std::process::ExitCode;

use fedsched_experiments::{
    e10_partition_ablation, e11_policy_ablation, e12_exact_optimum, e13_global_sim, e14_tightness,
    e15_critical_speed, e2_capacity, e3_acceptance, e4_baselines, e5_minprocs, e6_partition,
    e7_runtime, e8_anomaly, Table,
};

struct Options {
    quick: bool,
    out: PathBuf,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a directory")?);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--threads expects an integer >= 1, got {v:?}"))?;
                fedsched_parallel::configure_threads(n);
            }
            "-h" | "--help" => {
                return Err(
                    "usage: run_experiments [--quick] [--threads N] [--out DIR] \
                     [e2..e8|e10..e15|all]..."
                        .into(),
                )
            }
            e @ ("e2" | "e3" | "e4" | "e5" | "e6" | "e7" | "e8" | "e10" | "e11" | "e12" | "e13"
            | "e14" | "e15" | "all") => {
                experiments.push(e.to_owned());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e10", "e11", "e12", "e13", "e14", "e15",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    Ok(Options {
        quick,
        out,
        experiments,
    })
}

fn emit(table: &Table, out: &std::path::Path, file: &str) {
    println!("{table}");
    let path = out.join(file);
    match table.write_csv(&path) {
        Ok(()) => println!("  -> wrote {}\n", path.display()),
        Err(e) => eprintln!("  !! failed to write {}: {e}\n", path.display()),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let q = opts.quick;

    for exp in &opts.experiments {
        match exp.as_str() {
            "e2" => {
                let rows = e2_capacity::run(if q { 5 } else { 10 });
                emit(&e2_capacity::to_table(&rows), &opts.out, "e2_capacity.csv");
            }
            "e3" => {
                let mut cfg = e3_acceptance::E3Config::default();
                if q {
                    cfg.m_values = vec![4, 8];
                    cfg.steps = 10;
                    cfg.systems_per_point = 40;
                }
                let rows = e3_acceptance::run(&cfg);
                emit(
                    &e3_acceptance::to_table(&rows),
                    &opts.out,
                    "e3_acceptance.csv",
                );
            }
            "e4" => {
                for implicit in [true, false] {
                    let mut cfg = e4_baselines::E4Config {
                        implicit,
                        ..e4_baselines::E4Config::default()
                    };
                    if q {
                        cfg.steps = 10;
                        cfg.systems_per_point = 40;
                    }
                    let rows = e4_baselines::run(&cfg);
                    let file = if implicit {
                        "e4_baselines_implicit.csv"
                    } else {
                        "e4_baselines_constrained.csv"
                    };
                    emit(&e4_baselines::to_table(&rows, &cfg), &opts.out, file);
                }
            }
            "e5" => {
                let mut cfg = e5_minprocs::E5Config::default();
                if q {
                    cfg.trials = 100;
                }
                let rows = e5_minprocs::run(&cfg);
                emit(&e5_minprocs::to_table(&rows), &opts.out, "e5_minprocs.csv");
            }
            "e6" => {
                let mut cfg = e6_partition::E6Config::default();
                if q {
                    cfg.trials = 60;
                }
                let rows = e6_partition::run(&cfg);
                emit(
                    &e6_partition::to_table(&rows),
                    &opts.out,
                    "e6_partition.csv",
                );
            }
            "e7" => {
                let mut cfg = e7_runtime::E7Config::default();
                if q {
                    cfg.steps = 5;
                    cfg.systems_per_point = 8;
                    cfg.horizon = 30_000;
                }
                let rows = e7_runtime::run(&cfg);
                emit(&e7_runtime::to_table(&rows), &opts.out, "e7_runtime.csv");
            }
            "e8" => {
                let classic = e8_anomaly::run_classic(if q { 2_000 } else { 20_000 });
                let mut cfg = e8_anomaly::E8Config::default();
                if q {
                    cfg.trials = 300;
                }
                let rows = e8_anomaly::run_search(&cfg);
                let (a, b) = e8_anomaly::to_tables(&classic, &rows);
                emit(&a, &opts.out, "e8_anomaly_classic.csv");
                emit(&b, &opts.out, "e8_anomaly_search.csv");
            }
            "e10" => {
                let mut cfg = e10_partition_ablation::E10Config::default();
                if q {
                    cfg.steps = 8;
                    cfg.systems_per_point = 40;
                }
                let rows = e10_partition_ablation::run(&cfg);
                emit(
                    &e10_partition_ablation::to_table(&rows, &cfg),
                    &opts.out,
                    "e10_partition_ablation.csv",
                );
            }
            "e11" => {
                let mut cfg = e11_policy_ablation::E11Config::default();
                if q {
                    cfg.trials = 100;
                }
                let rows = e11_policy_ablation::run(&cfg);
                emit(
                    &e11_policy_ablation::to_table(&rows),
                    &opts.out,
                    "e11_policy_ablation.csv",
                );
            }
            "e12" => {
                let mut cfg = e12_exact_optimum::E12Config::default();
                if q {
                    cfg.trials = 50;
                }
                let rows = e12_exact_optimum::run(&cfg);
                emit(
                    &e12_exact_optimum::to_table(&rows),
                    &opts.out,
                    "e12_exact_optimum.csv",
                );
            }
            "e13" => {
                let mut cfg = e13_global_sim::E13Config::default();
                if q {
                    cfg.steps = 8;
                    cfg.systems_per_point = 25;
                    cfg.horizon = 20_000;
                }
                let rows = e13_global_sim::run(&cfg);
                emit(
                    &e13_global_sim::to_table(&rows, &cfg),
                    &opts.out,
                    "e13_global_sim.csv",
                );
            }
            "e14" => {
                let mut cfg = e14_tightness::E14Config::default();
                if q {
                    cfg.steps = 5;
                    cfg.systems_per_point = 40;
                }
                let rows = e14_tightness::run(&cfg);
                emit(
                    &e14_tightness::to_table(&rows, &cfg),
                    &opts.out,
                    "e14_tightness.csv",
                );
            }
            "e15" => {
                let mut cfg = e15_critical_speed::E15Config::default();
                if q {
                    cfg.systems_per_topology = 25;
                    cfg.grid = 8;
                }
                let rows = e15_critical_speed::run(&cfg);
                emit(
                    &e15_critical_speed::to_table(&rows, &cfg),
                    &opts.out,
                    "e15_critical_speed.csv",
                );
            }
            _ => unreachable!("validated in parse_args"),
        }
    }
    ExitCode::SUCCESS
}
