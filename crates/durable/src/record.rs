//! The serde DTOs that live inside WAL frames and snapshot files.
//!
//! Two deliberate properties:
//!
//! 1. **The WAL is a decision log, not a state dump.** Every algorithm in
//!    the admission path (MINPROCS sizing, Baruah–Fisher DBF\* first-fit)
//!    is deterministic, so recovery re-executes the logged decision
//!    sequence against the real engine and the state machine lands exactly
//!    where the pre-crash server was. The outcomes recorded alongside each
//!    decision — the assigned pool, the frozen σ template, whether the
//!    template cache hit — are *verification data*: replay asserts the
//!    re-derived outcome matches the logged one, so silent version drift
//!    (an algorithm change between writer and reader) or nondeterminism is
//!    caught at boot instead of surfacing as a broken promise to a client.
//! 2. **Snapshots are structural.** A snapshot captures placements as they
//!    are, *not* as a fresh batch admission would produce them: first-fit
//!    removal anomalies mean the live partition can legitimately differ
//!    from re-admitting the resident set, and a restore must reproduce the
//!    promises actually made.
//!
//! All types serialize through the workspace's vendored serde (externally
//! tagged enums, unknown map keys ignored), so a newer writer adding a
//! field degrades readably: old readers ignore it, and a record an old
//! reader cannot interpret at all (a new enum variant) fails loudly rather
//! than being misapplied.

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_dag::task::DagTask;
use fedsched_graham::list::PriorityPolicy;
use fedsched_graham::schedule::TemplateSchedule;
use serde::{Deserialize, Serialize};

/// Current on-disk format version, embedded in every snapshot. Bump when a
/// change is not readable by older code.
pub const FORMAT_VERSION: u32 = 1;

/// Where an admitted task was placed — mirrors the service protocol's
/// `Placement` without depending on the service crate (the dependency runs
/// the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolAssignment {
    /// A dedicated cluster of `processors` processors starting at platform
    /// processor `first_processor`.
    Dedicated {
        /// First platform processor index of the cluster.
        first_processor: u32,
        /// Cluster width `μ*`.
        processors: u32,
    },
    /// A slot on one shared EDF processor (pool-local index).
    Shared {
        /// Pool-local processor index.
        processor: u64,
    },
}

/// A memoized `MINPROCS` result as persisted: `None` inside an
/// `Option<PersistedSizing>` field records a chain-infeasible shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedSizing {
    /// Intrinsic minimum processor count `μ*`.
    pub processors: u32,
    /// The frozen LS template witnessing `μ*`.
    pub template: TemplateSchedule,
}

/// One entry of the append-only write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A task was admitted. `token` pins the identity the client was
    /// given; `placement`, `cache_hit` and `sizing` (the frozen σ
    /// template, for dedicated placements) are the logged outcomes replay
    /// verifies.
    Admit {
        /// The admission token returned to the client.
        token: u64,
        /// The admitted task, exactly as submitted.
        task: DagTask,
        /// Where the task was placed.
        placement: PoolAssignment,
        /// Whether the template cache hit on the original decision.
        cache_hit: bool,
        /// The frozen σ template for dedicated placements (`None` for
        /// shared-pool admissions — they have no template).
        sizing: Option<PersistedSizing>,
    },
    /// A task was rejected. Rejections mutate counters and (for
    /// chain-infeasible shapes) the template cache, so they are logged
    /// with the full task and re-executed on replay.
    Reject {
        /// The rejected task.
        task: DagTask,
        /// Whether it was classed high-density (δ ≥ 1).
        high_density: bool,
        /// Whether the template cache hit on the original decision (only
        /// meaningful for high-density rejections; `false` otherwise).
        cache_hit: bool,
    },
    /// A task departed. Replay re-runs the removal (including the suffix
    /// replay of later shared-pool admissions) and verifies the logged
    /// anomaly outcome.
    Depart {
        /// The departing task's admission token.
        token: u64,
        /// Whether the original removal's suffix replay hit a first-fit
        /// anomaly and kept the previous placements.
        anomaly: bool,
    },
    /// A new `MINPROCS` template-cache entry was computed (always adjacent
    /// to the `Admit`/`Reject` that computed it). Replay verifies the
    /// re-derived entry — processors *and* template bytes — against this
    /// record, and offline tooling can rebuild the cache from the log
    /// without running the scheduler.
    CacheInsert {
        /// A task exhibiting the cached shape (period irrelevant to the
        /// cache key).
        task: DagTask,
        /// The computed sizing; `None` for chain-infeasible shapes.
        sizing: Option<PersistedSizing>,
    },
    /// Snapshot `seq` was durably written; records before this marker are
    /// covered by `snapshot-<seq>` and recovery replays only what follows.
    SnapshotMarker {
        /// Snapshot sequence number.
        seq: u64,
    },
}

impl LogRecord {
    /// Stable lower-case tag for telemetry and the `recover` subcommand.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LogRecord::Admit { .. } => "admit",
            LogRecord::Reject { .. } => "reject",
            LogRecord::Depart { .. } => "depart",
            LogRecord::CacheInsert { .. } => "cache_insert",
            LogRecord::SnapshotMarker { .. } => "snapshot_marker",
        }
    }
}

/// The server configuration a snapshot (and WAL) was produced under.
/// Recovery refuses to load state into a server configured differently —
/// a partition computed for `m` processors under one priority policy is
/// meaningless under another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedConfig {
    /// Platform size `m`.
    pub processors: u32,
    /// The LS priority policy sizings were computed under.
    pub policy: PriorityPolicy,
    /// Whether the approximate first-fit also enforced the utilization
    /// check.
    pub utilization_check: bool,
    /// `Some(budget)` when the exact-EDF partition test was active, `None`
    /// for the paper's approximate `DBF*` test.
    pub exact_budget: Option<u64>,
    /// Template-cache capacity bound (`0` = unbounded). Part of the
    /// configuration identity: the clock-eviction sequence — and therefore
    /// cache contents, `CacheInsert` traffic, and counters — depends on
    /// it, so replaying a log under a different cap would diverge.
    #[serde(default)]
    pub template_cache_cap: u64,
}

/// One live dedicated cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedCluster {
    /// Admission token.
    pub token: u64,
    /// The resident task.
    pub task: DagTask,
    /// Cluster width `μ*` (the σ template itself is normally recovered
    /// from the snapshot's cache section).
    pub processors: u32,
    /// The frozen σ template, carried inline only when the bounded cache
    /// evicted the cluster's shape before the snapshot was taken (`None`
    /// when the cache section still covers it).
    #[serde(default)]
    pub sizing: Option<PersistedSizing>,
}

/// One live shared-pool entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedShared {
    /// Admission token.
    pub token: u64,
    /// The resident task.
    pub task: DagTask,
    /// Pool-local processor index the task is placed on.
    pub processor: u64,
}

/// One template-cache entry, keyed by the cache's canonical DAG encoding
/// (policy tag, deadline, vertex count, WCETs, sorted edges) rather than a
/// task exemplar — the encoding is the cache's identity, so restoring it
/// verbatim is exact by construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedCacheEntry {
    /// The canonical cache key.
    pub key: Vec<u64>,
    /// The memoized sizing (`None` = chain-infeasible shape).
    pub sizing: Option<PersistedSizing>,
    /// The clock-eviction referenced bit. Entries are persisted in clock
    /// order (eviction hand first), so restoring them verbatim reproduces
    /// the exact future eviction sequence.
    #[serde(default)]
    pub referenced: bool,
}

/// The admission counters, persisted verbatim.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedStats {
    /// High-density tasks admitted since start.
    pub admitted_high: u64,
    /// Low-density tasks admitted since start.
    pub admitted_low: u64,
    /// High-density rejections since start.
    pub rejected_high: u64,
    /// Low-density rejections since start.
    pub rejected_low: u64,
    /// Removals since start.
    pub removed: u64,
    /// Removal replays that hit a first-fit anomaly.
    pub remove_anomalies: u64,
    /// Template-cache hits since start.
    pub cache_hits: u64,
    /// Template-cache misses since start.
    pub cache_misses: u64,
    /// Template-cache entries evicted by the capacity bound since start.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Admission-latency histogram buckets (`[2^i, 2^{i+1})` µs).
    pub latency_buckets_us: Vec<u64>,
}

/// A structural snapshot of the whole admission state: everything needed
/// to answer `stats`, `query`, and new admissions exactly as the server
/// that wrote it would.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedState {
    /// On-disk format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// The configuration the state was produced under.
    pub config: PersistedConfig,
    /// The next admission token the server would have handed out.
    pub next_token: u64,
    /// Dedicated clusters in admission order.
    pub clusters: Vec<PersistedCluster>,
    /// Shared-pool entries in EDF order (deadline, then token).
    pub shared: Vec<PersistedShared>,
    /// The full template cache.
    pub cache: Vec<PersistedCacheEntry>,
    /// Admission counters.
    pub stats: PersistedStats,
    /// Cumulative analysis cost counters.
    pub probe: AnalysisProbe,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::time::Duration;

    fn task() -> DagTask {
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3, 1].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        DagTask::new(b.build().unwrap(), Duration::new(6), Duration::new(10)).unwrap()
    }

    fn sizing() -> PersistedSizing {
        use fedsched_graham::schedule::ScheduleEntry;
        PersistedSizing {
            processors: 2,
            template: TemplateSchedule::from_entries(
                2,
                vec![ScheduleEntry {
                    processor: 0,
                    start: Duration::new(0),
                    finish: Duration::new(5),
                }],
            ),
        }
    }

    #[test]
    fn log_records_roundtrip_through_json() {
        let records = vec![
            LogRecord::Admit {
                token: 7,
                task: task(),
                placement: PoolAssignment::Dedicated {
                    first_processor: 0,
                    processors: 2,
                },
                cache_hit: false,
                sizing: Some(sizing()),
            },
            LogRecord::Admit {
                token: 8,
                task: task(),
                placement: PoolAssignment::Shared { processor: 3 },
                cache_hit: true,
                sizing: None,
            },
            LogRecord::Reject {
                task: task(),
                high_density: true,
                cache_hit: false,
            },
            LogRecord::Depart {
                token: 7,
                anomaly: true,
            },
            LogRecord::CacheInsert {
                task: task(),
                sizing: None,
            },
            LogRecord::SnapshotMarker { seq: 3 },
        ];
        for record in records {
            let json = serde_json::to_string(&record).unwrap();
            let back: LogRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn persisted_state_roundtrips_through_json() {
        let state = PersistedState {
            version: FORMAT_VERSION,
            config: PersistedConfig {
                processors: 8,
                policy: PriorityPolicy::CriticalPathFirst,
                utilization_check: true,
                exact_budget: None,
                template_cache_cap: 16,
            },
            next_token: 11,
            clusters: vec![PersistedCluster {
                token: 3,
                task: task(),
                processors: 2,
                sizing: None,
            }],
            shared: vec![PersistedShared {
                token: 5,
                task: task(),
                processor: 1,
            }],
            cache: vec![PersistedCacheEntry {
                key: vec![0, 6, 3, 2, 3, 1],
                sizing: Some(sizing()),
                referenced: true,
            }],
            stats: PersistedStats {
                admitted_high: 1,
                admitted_low: 1,
                rejected_high: 2,
                rejected_low: 0,
                removed: 1,
                remove_anomalies: 0,
                cache_hits: 1,
                cache_misses: 2,
                cache_evictions: 3,
                latency_buckets_us: vec![0; 22],
            },
            probe: AnalysisProbe::default(),
        };
        let json = serde_json::to_string(&state).unwrap();
        let back: PersistedState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn record_kinds_are_stable() {
        assert_eq!(
            LogRecord::SnapshotMarker { seq: 0 }.kind(),
            "snapshot_marker"
        );
        assert_eq!(
            LogRecord::Depart {
                token: 1,
                anomaly: false
            }
            .kind(),
            "depart"
        );
    }
}
