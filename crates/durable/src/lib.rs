//! `fedsched-durable` — durable platform state for the federated-scheduling
//! admission server (Baruah, DATE 2015).
//!
//! A production admission server cannot forget its admitted systems on
//! restart: the federated partition — and with it the incremental-FEDCONS
//! state, the frozen LS σ templates, and the `MINPROCS` template cache —
//! is expensive to recompute, and re-admission after a crash can produce a
//! *different* partition than the one clients were promised (first-fit
//! removal anomalies make the live placement history-dependent). This
//! crate is the storage engine underneath that guarantee:
//!
//! * [`crc32()`] — the CRC-32/ISO-HDLC checksum every frame carries;
//! * [`frame`] — length-prefixed, checksummed frames with torn- and
//!   corrupt-tail classification ([`frame::scan_frames`]);
//! * [`record`] — the serde DTOs: the [`LogRecord`] decision log entries
//!   and the structural [`PersistedState`] snapshot;
//! * [`wal`] — the append-only log file with [`FsyncPolicy`]-controlled
//!   durability and torn-tail repair on open;
//! * [`snapshot`] — atomic (tmp + rename + dir-sync) snapshot files;
//! * [`store`] — [`DurableStore`]: the data directory as one object, with
//!   snapshot-threshold bookkeeping, recovery-point selection, and
//!   [`compact`](DurableStore::compact).
//!
//! The crate deliberately knows nothing about sockets or the admission
//! protocol: the service crate drives it (append on every decision, replay
//! on boot), the CLI exposes `--data-dir` / `--fsync` / `compact`, and
//! docs/DURABILITY.md specifies the format bit-for-bit.
//!
//! # Example
//!
//! ```
//! use fedsched_durable::{DurableStore, FsyncPolicy, LogRecord, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("fedsched-durable-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut config = StoreConfig::new(&dir);
//! config.fsync = FsyncPolicy::Every;
//! let (mut store, recovered) = DurableStore::open(config.clone())?;
//! assert!(recovered.suffix.is_empty());
//! store.append(&LogRecord::Depart { token: 7, anomaly: false })?;
//!
//! // A reopen — e.g. after a crash — replays the acknowledged decision.
//! drop(store);
//! let (_store, recovered) = DurableStore::open(config)?;
//! assert_eq!(recovered.suffix.len(), 1);
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod crc32;
pub mod frame;
pub mod record;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use crc32::crc32;
pub use frame::{scan_frames, ScanOutcome, TailState, MAX_FRAME_LEN};
pub use record::{
    LogRecord, PersistedCacheEntry, PersistedCluster, PersistedConfig, PersistedShared,
    PersistedSizing, PersistedState, PersistedStats, PoolAssignment, FORMAT_VERSION,
};
pub use snapshot::{list_snapshots, load_snapshot, snapshot_file_name, write_snapshot};
pub use store::{
    CompactReport, DurableStore, RecoveredLog, StoreConfig, DEFAULT_SNAPSHOT_BYTES,
    DEFAULT_SNAPSHOT_RECORDS, WAL_FILE,
};
pub use wal::{FsyncPolicy, WalOpenReport, WalStats, WalWriter};
