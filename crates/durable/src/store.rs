//! [`DurableStore`]: the data directory as one object — a WAL plus its
//! snapshot lineage — with the open/append/snapshot/compact protocol the
//! admission server drives.
//!
//! Layout of a data directory:
//!
//! ```text
//! <data-dir>/
//!   wal.log                        append-only decision log
//!   snapshot-<seq 16 digits>.snap  structural state snapshots
//! ```
//!
//! Recovery contract: [`DurableStore::open`] returns the newest *loadable*
//! snapshot whose `SnapshotMarker` is in the log, plus the record suffix
//! after that marker. A marker whose snapshot file is missing or damaged
//! is skipped — the store falls back to the previous marker, and with no
//! usable snapshot at all the suffix is the entire log, which rebuilds the
//! state from empty. The WAL is only ever shortened by [`DurableStore::compact`]
//! (`DurableStore::compact`), which first makes a fresh snapshot durable,
//! so every fallback path always has the records it needs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::record::{LogRecord, PersistedState};
use crate::snapshot::{load_snapshot, prune_snapshots, write_snapshot};
use crate::wal::{FsyncPolicy, WalOpenReport, WalStats, WalWriter};

/// File name of the log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Default snapshot trigger: records appended since the last snapshot.
pub const DEFAULT_SNAPSHOT_RECORDS: u64 = 512;

/// Default snapshot trigger: WAL bytes appended since the last snapshot.
pub const DEFAULT_SNAPSHOT_BYTES: u64 = 4 << 20;

/// Configuration of a [`DurableStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// The data directory (created if absent).
    pub dir: PathBuf,
    /// When appends are flushed to stable storage.
    pub fsync: FsyncPolicy,
    /// Take a snapshot after this many records since the last one
    /// (0 disables the record trigger).
    pub snapshot_every_records: u64,
    /// Take a snapshot after this many appended WAL bytes since the last
    /// one (0 disables the byte trigger).
    pub snapshot_every_bytes: u64,
}

impl StoreConfig {
    /// Defaults: `fsync every` (never lose an acknowledged decision),
    /// snapshot every [`DEFAULT_SNAPSHOT_RECORDS`] records or
    /// [`DEFAULT_SNAPSHOT_BYTES`] bytes.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Every,
            snapshot_every_records: DEFAULT_SNAPSHOT_RECORDS,
            snapshot_every_bytes: DEFAULT_SNAPSHOT_BYTES,
        }
    }
}

/// What [`DurableStore::open`] recovered from disk.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The newest loadable snapshot, if any.
    pub snapshot: Option<PersistedState>,
    /// Its sequence number.
    pub snapshot_seq: Option<u64>,
    /// Records after the chosen snapshot's marker (the whole log when no
    /// snapshot was usable). May still contain `SnapshotMarker` records
    /// for *newer* snapshots that failed to load; replay ignores markers.
    pub suffix: Vec<LogRecord>,
    /// What opening the WAL file itself found (torn-tail repair etc.).
    pub wal_report: WalOpenReport,
    /// Markers whose snapshot file was missing or unusable and had to be
    /// skipped in favour of an older one.
    pub snapshots_skipped: u64,
}

/// The outcome of a [`DurableStore::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Sequence number of the snapshot the compaction wrote.
    pub snapshot_seq: u64,
    /// Size of that snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// WAL length before compaction.
    pub wal_bytes_before: u64,
    /// WAL length after (magic + one marker frame).
    pub wal_bytes_after: u64,
    /// Old snapshot files (and stale tmp files) deleted.
    pub files_removed: u64,
}

/// An open data directory.
#[derive(Debug)]
pub struct DurableStore {
    config: StoreConfig,
    wal: WalWriter,
    last_snapshot_seq: u64,
    records_since_snapshot: u64,
    bytes_since_snapshot: u64,
    snapshots_written: u64,
}

impl DurableStore {
    /// Opens (creating if needed) the data directory, repairs the WAL
    /// tail, and selects the snapshot + suffix recovery point.
    ///
    /// # Errors
    ///
    /// I/O errors; an unreadable WAL (bad magic, undecodable record).
    /// A damaged *snapshot* is not an error — it is skipped.
    pub fn open(config: StoreConfig) -> io::Result<(DurableStore, RecoveredLog)> {
        fs::create_dir_all(&config.dir)?;
        let (wal, records, wal_report) = WalWriter::open(&config.dir.join(WAL_FILE), config.fsync)?;

        // Walk markers newest-first until one's snapshot actually loads.
        let mut snapshot = None;
        let mut snapshot_seq = None;
        let mut suffix_start = 0usize;
        let mut snapshots_skipped = 0u64;
        let mut max_seq_seen = 0u64;
        for (idx, record) in records.iter().enumerate().rev() {
            let LogRecord::SnapshotMarker { seq } = *record else {
                continue;
            };
            max_seq_seen = max_seq_seen.max(seq);
            match load_snapshot(&config.dir, seq) {
                Ok(state) => {
                    snapshot = Some(state);
                    snapshot_seq = Some(seq);
                    suffix_start = idx + 1;
                    break;
                }
                Err(_) => snapshots_skipped += 1,
            }
        }
        let suffix = records[suffix_start..].to_vec();
        let records_since_snapshot = suffix
            .iter()
            .filter(|r| !matches!(r, LogRecord::SnapshotMarker { .. }))
            .count() as u64;

        let store = DurableStore {
            config,
            wal,
            // Never reuse a sequence number, even of a damaged snapshot.
            last_snapshot_seq: max_seq_seen.max(snapshot_seq.unwrap_or(0)),
            records_since_snapshot,
            // Byte counter restarts per process; the record counter carries
            // across restarts, so short-lived servers still snapshot.
            bytes_since_snapshot: 0,
            snapshots_written: 0,
        };
        Ok((
            store,
            RecoveredLog {
                snapshot,
                snapshot_seq,
                suffix,
                wal_report,
                snapshots_skipped,
            },
        ))
    }

    /// Appends one record under the configured fsync policy.
    ///
    /// # Errors
    ///
    /// I/O errors from the write or sync.
    pub fn append(&mut self, record: &LogRecord) -> io::Result<()> {
        let before = self.wal.stats().bytes_appended;
        self.wal.append(record)?;
        self.records_since_snapshot += 1;
        self.bytes_since_snapshot += self.wal.stats().bytes_appended - before;
        Ok(())
    }

    /// Whether a configured snapshot threshold has been crossed.
    #[must_use]
    pub fn should_snapshot(&self) -> bool {
        let by_records = self.config.snapshot_every_records > 0
            && self.records_since_snapshot >= self.config.snapshot_every_records;
        let by_bytes = self.config.snapshot_every_bytes > 0
            && self.bytes_since_snapshot >= self.config.snapshot_every_bytes;
        by_records || by_bytes
    }

    /// Durably writes `state` as the next snapshot, appends its marker to
    /// the WAL (synced regardless of policy), prunes older snapshot files,
    /// and resets the snapshot triggers. Returns the new sequence number.
    ///
    /// # Errors
    ///
    /// I/O errors from any step. On error the store is still consistent:
    /// a snapshot without a marker is simply ignored at the next open.
    pub fn install_snapshot(&mut self, state: &PersistedState) -> io::Result<u64> {
        let seq = self.last_snapshot_seq + 1;
        write_snapshot(&self.config.dir, seq, state)?;
        self.wal.append(&LogRecord::SnapshotMarker { seq })?;
        self.wal.sync()?;
        // Older snapshots are redundant now — the log retains everything
        // since its beginning, so even losing this new snapshot only costs
        // replay time, never data.
        prune_snapshots(&self.config.dir, seq)?;
        self.last_snapshot_seq = seq;
        self.snapshots_written += 1;
        self.records_since_snapshot = 0;
        self.bytes_since_snapshot = 0;
        Ok(seq)
    }

    /// Compacts the directory: snapshot `state`, rewrite the WAL to just
    /// that snapshot's marker, delete superseded snapshot files.
    ///
    /// # Errors
    ///
    /// I/O errors. The snapshot is made durable *before* the log is
    /// rewritten, so a crash at any point leaves a recoverable directory.
    pub fn compact(&mut self, state: &PersistedState) -> io::Result<CompactReport> {
        let wal_bytes_before = self.wal.len();
        let seq = self.last_snapshot_seq + 1;
        let snapshot_bytes = write_snapshot(&self.config.dir, seq, state)?;

        // Rebuild the log as magic + marker in a tmp file, then swap it in.
        let wal_path = self.config.dir.join(WAL_FILE);
        let tmp_path = self.config.dir.join(format!("{WAL_FILE}.tmp"));
        {
            use std::io::Write;
            let payload = serde_json::to_string(&LogRecord::SnapshotMarker { seq })
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let mut bytes = crate::wal::WAL_MAGIC.to_vec();
            bytes.extend_from_slice(&crate::frame::encode_frame(payload.as_bytes()));
            let mut tmp = fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            tmp.write_all(&bytes)?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &wal_path)?;
        sync_dir_best_effort(&self.config.dir);

        let removed = prune_snapshots(&self.config.dir, seq)?;
        // Reopen the handle on the rewritten file.
        let (wal, _, _) = WalWriter::open(&wal_path, self.config.fsync)?;
        let wal_bytes_after = wal.len();
        self.wal = wal;
        self.last_snapshot_seq = seq;
        self.snapshots_written += 1;
        self.records_since_snapshot = 0;
        self.bytes_since_snapshot = 0;
        Ok(CompactReport {
            snapshot_seq: seq,
            snapshot_bytes,
            wal_bytes_before,
            wal_bytes_after,
            files_removed: removed.len() as u64,
        })
    }

    /// Forces an fsync regardless of policy (shutdown path).
    ///
    /// # Errors
    ///
    /// I/O errors from `fsync`.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// How long until the interval fsync policy owes the WAL a sync; see
    /// [`WalWriter::sync_due`]. The server's WAL sequencer uses this as
    /// its idle-tick timeout so a quiet log never holds acked-but-unsynced
    /// frames longer than the interval.
    #[must_use]
    pub fn sync_due(&self) -> Option<Duration> {
        self.wal.sync_due()
    }

    /// Syncs if the interval deadline has expired; returns whether a sync
    /// was issued. See [`WalWriter::sync_if_due`].
    ///
    /// # Errors
    ///
    /// I/O errors from `fsync`.
    pub fn sync_if_due(&mut self) -> io::Result<bool> {
        self.wal.sync_if_due()
    }

    /// WAL cost counters since open.
    #[must_use]
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Current WAL file length in bytes.
    #[must_use]
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Snapshots written since open.
    #[must_use]
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// Sequence number of the newest snapshot (0 when none exists yet).
    #[must_use]
    pub fn last_snapshot_seq(&self) -> u64 {
        self.last_snapshot_seq
    }

    /// The store's configuration.
    #[must_use]
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The effective fsync interval as a duration, for logging.
    #[must_use]
    pub fn fsync_interval(&self) -> Option<Duration> {
        match self.config.fsync {
            FsyncPolicy::Interval(d) => Some(d),
            _ => None,
        }
    }
}

fn sync_dir_best_effort(dir: &Path) {
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PersistedConfig, PersistedStats, FORMAT_VERSION};
    use crate::snapshot::snapshot_file_name;
    use fedsched_analysis::probe::AnalysisProbe;
    use fedsched_graham::list::PriorityPolicy;

    fn state(next_token: u64) -> PersistedState {
        PersistedState {
            version: FORMAT_VERSION,
            config: PersistedConfig {
                processors: 4,
                policy: PriorityPolicy::ListOrder,
                utilization_check: true,
                exact_budget: None,
                template_cache_cap: 0,
            },
            next_token,
            clusters: Vec::new(),
            shared: Vec::new(),
            cache: Vec::new(),
            stats: PersistedStats::default(),
            probe: AnalysisProbe::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fedsched-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> StoreConfig {
        StoreConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            snapshot_every_records: 0,
            snapshot_every_bytes: 0,
        }
    }

    fn depart(token: u64) -> LogRecord {
        LogRecord::Depart {
            token,
            anomaly: false,
        }
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmpdir("fresh");
        let (store, recovered) = DurableStore::open(config(&dir)).unwrap();
        assert!(recovered.snapshot.is_none());
        assert!(recovered.suffix.is_empty());
        assert_eq!(recovered.wal_report.truncated_bytes, 0);
        assert_eq!(store.last_snapshot_seq(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_suffix_recovery_point() {
        let dir = tmpdir("suffix");
        let (mut store, _) = DurableStore::open(config(&dir)).unwrap();
        store.append(&depart(1)).unwrap();
        store.append(&depart(2)).unwrap();
        let seq = store.install_snapshot(&state(10)).unwrap();
        assert_eq!(seq, 1);
        store.append(&depart(3)).unwrap();
        drop(store);
        let (store, recovered) = DurableStore::open(config(&dir)).unwrap();
        assert_eq!(recovered.snapshot, Some(state(10)));
        assert_eq!(recovered.snapshot_seq, Some(1));
        assert_eq!(recovered.suffix, vec![depart(3)]);
        assert_eq!(store.last_snapshot_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_snapshot_falls_back_to_older_marker() {
        let dir = tmpdir("fallback");
        let (mut store, _) = DurableStore::open(config(&dir)).unwrap();
        store.append(&depart(1)).unwrap();
        store.install_snapshot(&state(5)).unwrap();
        store.append(&depart(2)).unwrap();
        store.install_snapshot(&state(9)).unwrap();
        store.append(&depart(3)).unwrap();
        drop(store);
        // Snapshot 1 was pruned when 2 was installed; resurrect it so the
        // fallback has somewhere to land, then damage snapshot 2.
        write_snapshot(&dir, 1, &state(5)).unwrap();
        let snap2 = dir.join(snapshot_file_name(2));
        let mut bytes = fs::read(&snap2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&snap2, &bytes).unwrap();
        let (store, recovered) = DurableStore::open(config(&dir)).unwrap();
        assert_eq!(recovered.snapshot, Some(state(5)));
        assert_eq!(recovered.snapshot_seq, Some(1));
        assert_eq!(recovered.snapshots_skipped, 1);
        // The suffix spans from marker 1 on: depart(2), marker 2, depart(3).
        assert_eq!(
            recovered.suffix,
            vec![depart(2), LogRecord::SnapshotMarker { seq: 2 }, depart(3)]
        );
        // New snapshots must not reuse seq 2.
        assert_eq!(store.last_snapshot_seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_snapshots_unusable_replays_whole_log() {
        let dir = tmpdir("fulllog");
        let (mut store, _) = DurableStore::open(config(&dir)).unwrap();
        store.append(&depart(1)).unwrap();
        store.install_snapshot(&state(5)).unwrap();
        store.append(&depart(2)).unwrap();
        drop(store);
        fs::remove_file(dir.join(snapshot_file_name(1))).unwrap();
        let (_, recovered) = DurableStore::open(config(&dir)).unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.snapshots_skipped, 1);
        assert_eq!(
            recovered.suffix,
            vec![depart(1), LogRecord::SnapshotMarker { seq: 1 }, depart(2)]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_thresholds_trigger() {
        let dir = tmpdir("thresholds");
        let mut cfg = config(&dir);
        cfg.snapshot_every_records = 3;
        let (mut store, _) = DurableStore::open(cfg).unwrap();
        store.append(&depart(1)).unwrap();
        store.append(&depart(2)).unwrap();
        assert!(!store.should_snapshot());
        store.append(&depart(3)).unwrap();
        assert!(store.should_snapshot());
        store.install_snapshot(&state(4)).unwrap();
        assert!(!store.should_snapshot(), "triggers reset after a snapshot");
        // The record counter survives restart: two more records + reopen.
        store.append(&depart(4)).unwrap();
        store.append(&depart(5)).unwrap();
        drop(store);
        let mut cfg = config(&dir);
        cfg.snapshot_every_records = 3;
        let (mut store, _) = DurableStore::open(cfg).unwrap();
        assert!(!store.should_snapshot());
        store.append(&depart(6)).unwrap();
        assert!(store.should_snapshot(), "2 recovered + 1 appended ≥ 3");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_threshold_triggers() {
        let dir = tmpdir("bytes");
        let mut cfg = config(&dir);
        cfg.snapshot_every_bytes = 64;
        let (mut store, _) = DurableStore::open(cfg).unwrap();
        assert!(!store.should_snapshot());
        store.append(&depart(1)).unwrap();
        store.append(&depart(2)).unwrap();
        assert!(store.should_snapshot());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_shrinks_the_log_and_keeps_state() {
        let dir = tmpdir("compact");
        let (mut store, _) = DurableStore::open(config(&dir)).unwrap();
        for token in 0..50 {
            store.append(&depart(token)).unwrap();
        }
        store.install_snapshot(&state(2)).unwrap();
        for token in 50..80 {
            store.append(&depart(token)).unwrap();
        }
        let report = store.compact(&state(99)).unwrap();
        assert!(report.wal_bytes_after < report.wal_bytes_before);
        assert_eq!(report.snapshot_seq, 2);
        assert!(report.files_removed >= 1, "snapshot 1 deleted");
        drop(store);
        let (store, recovered) = DurableStore::open(config(&dir)).unwrap();
        assert_eq!(recovered.snapshot, Some(state(99)));
        assert_eq!(recovered.snapshot_seq, Some(2));
        assert!(recovered.suffix.is_empty());
        assert_eq!(store.last_snapshot_seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_repair_is_reported_through_open() {
        let dir = tmpdir("torn");
        let (mut store, _) = DurableStore::open(config(&dir)).unwrap();
        store.append(&depart(1)).unwrap();
        store.append(&depart(2)).unwrap();
        store.sync().unwrap();
        drop(store);
        let wal_path = dir.join(WAL_FILE);
        let bytes = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, recovered) = DurableStore::open(config(&dir)).unwrap();
        assert_eq!(recovered.suffix, vec![depart(1)]);
        assert!(recovered.wal_report.truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
