//! Length-prefixed, CRC-checksummed frames — the on-disk unit of both the
//! WAL and snapshot files.
//!
//! A frame is `[len: u32 LE][crc: u32 LE][payload: len bytes]` where `crc`
//! is [`crc32`] over the payload alone. The format is deliberately minimal:
//! no per-frame sequence numbers (the WAL is strictly append-only, order
//! *is* position) and no compression (payloads are single admission
//! records; snapshots are written tmp+rename, not streamed).
//!
//! [`scan_frames`] walks a byte buffer and classifies the tail:
//!
//! * a **clean** tail ends exactly at the last complete frame;
//! * a **torn** tail has a partial header or a payload shorter than its
//!   declared length — the signature of a crash mid-`write`;
//! * a **corrupt** tail has a complete frame whose CRC does not match, or
//!   a length prefix beyond [`MAX_FRAME_LEN`] — bit rot or an overwrite.
//!
//! In all three non-clean cases the scanner stops at the last byte of the
//! last *valid* frame. Everything after the first bad frame is untrusted
//! even if later bytes happen to parse: the log is append-only, so a bad
//! frame means the writer died or the file was damaged there, and any
//! subsequent bytes are stale or coincidental.

use crate::crc32::crc32;

/// Bytes of frame header: 4-byte little-endian length + 4-byte CRC.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame's payload length. A prefix above this is treated
/// as corruption, not as a real frame — no admission record or snapshot in
/// this system approaches it, and the cap stops a flipped length bit from
/// making the scanner wait for gigabytes that will never exist.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// How the byte sequence after the last valid frame looked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The buffer ends exactly at a frame boundary.
    Clean,
    /// The buffer ends mid-frame (partial header or short payload):
    /// `trailing` bytes follow the last valid frame.
    Torn {
        /// Number of untrusted bytes after the last valid frame.
        trailing: usize,
    },
    /// A complete frame failed its CRC, or a length prefix exceeded
    /// [`MAX_FRAME_LEN`]: `trailing` bytes follow the last valid frame.
    Corrupt {
        /// Number of untrusted bytes after the last valid frame.
        trailing: usize,
    },
}

impl TailState {
    /// Bytes that must be truncated to restore a clean frame boundary.
    #[must_use]
    pub fn trailing(self) -> usize {
        match self {
            TailState::Clean => 0,
            TailState::Torn { trailing } | TailState::Corrupt { trailing } => trailing,
        }
    }
}

/// The result of scanning a buffer for frames.
#[derive(Debug)]
pub struct ScanOutcome<'a> {
    /// Payloads of the complete, CRC-valid frames, in file order.
    pub frames: Vec<&'a [u8]>,
    /// Bytes covered by those frames — the length to truncate the file to
    /// when the tail is not clean.
    pub valid_len: usize,
    /// Classification of whatever followed the last valid frame.
    pub tail: TailState,
}

/// Encodes one frame (`header + payload`) ready to append.
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX");
    assert!(len <= MAX_FRAME_LEN, "frame payload exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Scans `buf` from the start, collecting valid frames and classifying the
/// tail. Never panics on hostile input; a bad frame simply ends the scan.
#[must_use]
pub fn scan_frames(buf: &[u8]) -> ScanOutcome<'_> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = buf.len() - pos;
        if remaining == 0 {
            return ScanOutcome {
                frames,
                valid_len: pos,
                tail: TailState::Clean,
            };
        }
        if remaining < HEADER_LEN {
            return ScanOutcome {
                frames,
                valid_len: pos,
                tail: TailState::Torn {
                    trailing: remaining,
                },
            };
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return ScanOutcome {
                frames,
                valid_len: pos,
                tail: TailState::Corrupt {
                    trailing: remaining,
                },
            };
        }
        let body = len as usize;
        if remaining - HEADER_LEN < body {
            return ScanOutcome {
                frames,
                valid_len: pos,
                tail: TailState::Torn {
                    trailing: remaining,
                },
            };
        }
        let payload = &buf[pos + HEADER_LEN..pos + HEADER_LEN + body];
        if crc32(payload) != crc {
            return ScanOutcome {
                frames,
                valid_len: pos,
                tail: TailState::Corrupt {
                    trailing: remaining,
                },
            };
        }
        frames.push(payload);
        pos += HEADER_LEN + body;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let payloads: [&[u8]; 3] = [b"first", b"", b"third record, longer"];
        for p in payloads {
            buf.extend_from_slice(&encode_frame(p));
        }
        let scan = scan_frames(&buf);
        assert_eq!(scan.tail, TailState::Clean);
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.frames, payloads);
    }

    #[test]
    fn empty_buffer_is_clean() {
        let scan = scan_frames(&[]);
        assert_eq!(scan.tail, TailState::Clean);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.frames.is_empty());
    }

    #[test]
    fn torn_header_is_detected() {
        let mut buf = encode_frame(b"whole");
        let good_len = buf.len();
        buf.extend_from_slice(&[0x05, 0x00, 0x00]); // 3 of 8 header bytes
        let scan = scan_frames(&buf);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.tail, TailState::Torn { trailing: 3 });
        assert_eq!(scan.frames, vec![b"whole".as_slice()]);
    }

    #[test]
    fn torn_payload_is_detected() {
        let mut buf = encode_frame(b"keep me");
        let good_len = buf.len();
        let torn = encode_frame(b"half written record");
        buf.extend_from_slice(&torn[..torn.len() - 4]);
        let scan = scan_frames(&buf);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(
            scan.tail,
            TailState::Torn {
                trailing: torn.len() - 4
            }
        );
        assert_eq!(scan.frames.len(), 1);
    }

    #[test]
    fn corrupt_crc_is_detected() {
        let mut buf = encode_frame(b"keep me");
        let good_len = buf.len();
        let mut bad = encode_frame(b"bit rot victim");
        let bad_len = bad.len();
        *bad.last_mut().unwrap() ^= 0x40;
        buf.extend_from_slice(&bad);
        let scan = scan_frames(&buf);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.tail, TailState::Corrupt { trailing: bad_len });
    }

    #[test]
    fn absurd_length_prefix_is_corruption() {
        let mut buf = encode_frame(b"good");
        let good_len = buf.len();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 12]);
        let scan = scan_frames(&buf);
        assert_eq!(scan.valid_len, good_len);
        assert!(matches!(scan.tail, TailState::Corrupt { trailing: 16 }));
    }

    #[test]
    fn bad_frame_hides_later_valid_bytes() {
        // Valid frame, corrupt frame, valid frame: the scanner must stop at
        // the corruption and NOT resynchronise on the later valid frame.
        let mut buf = encode_frame(b"one");
        let good_len = buf.len();
        let mut bad = encode_frame(b"two");
        bad[HEADER_LEN] ^= 0xFF;
        buf.extend_from_slice(&bad);
        buf.extend_from_slice(&encode_frame(b"three"));
        let scan = scan_frames(&buf);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.frames, vec![b"one".as_slice()]);
        assert!(matches!(scan.tail, TailState::Corrupt { .. }));
    }
}
