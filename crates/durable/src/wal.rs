//! The write-ahead log file: an 8-byte magic followed by CRC-framed,
//! JSON-encoded [`LogRecord`]s, opened with torn-tail repair.
//!
//! Append ordering is the whole durability argument: a record is written
//! (and, under [`FsyncPolicy::Every`], synced) *before* the server
//! acknowledges the decision to the client, so every acknowledged decision
//! is either on disk or the acknowledgement never left the machine. The
//! converse — a record on disk for a decision never acknowledged — is
//! possible (crash between write and ack) and harmless: replaying it
//! merely re-derives a decision the engine would have made anyway.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::frame::{encode_frame, scan_frames, TailState};
use crate::record::LogRecord;

/// Magic bytes opening every WAL file (`FSWAL` + version 1).
pub const WAL_MAGIC: [u8; 8] = *b"FSWAL\x00\x00\x01";

/// When the WAL file is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: an acknowledged decision can
    /// never be lost, at the cost of one disk sync per decision.
    Every,
    /// `fsync` at most once per interval (checked on append): bounds loss
    /// to the decisions of the last interval.
    Interval(Duration),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    /// Survives process crashes (the page cache persists) but not power
    /// loss or kernel panics.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag grammar: `every`, `interval:<ms>`, or
    /// `never`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything else.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "every" => Ok(FsyncPolicy::Every),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) if ms > 0 => Ok(FsyncPolicy::Interval(Duration::from_millis(ms))),
                    _ => Err(format!(
                        "invalid fsync interval {ms:?}: expected a positive integer of milliseconds"
                    )),
                },
                None => Err(format!(
                    "invalid fsync policy {other:?}: expected every, interval:<ms>, or never"
                )),
            },
        }
    }
}

impl core::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FsyncPolicy::Every => write!(f, "every"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Cumulative cost counters of one [`WalWriter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub records_appended: u64,
    /// Frame bytes appended since open (headers included).
    pub bytes_appended: u64,
    /// Explicit `fsync` calls issued since open.
    pub fsyncs: u64,
}

/// What opening an existing WAL found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Records recovered from the log, in order.
    pub records_recovered: u64,
    /// Bytes truncated off a torn or corrupt tail (0 for a clean log).
    pub truncated_bytes: u64,
    /// Whether the discarded tail failed by CRC/length (corrupt) rather
    /// than by incompleteness (torn). `false` when nothing was truncated.
    pub tail_was_corrupt: bool,
}

/// An open, append-only WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Whether bytes have been appended since the last sync. Under
    /// [`FsyncPolicy::Interval`] this is what bounds the acked-but-unsynced
    /// exposure of a log that goes quiet: the owner polls
    /// [`WalWriter::sync_due`] from a timer and calls
    /// [`WalWriter::sync_if_due`] instead of waiting for the next append.
    dirty: bool,
    len: u64,
    stats: WalStats,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path`, validating the magic,
    /// decoding every complete frame, and truncating a torn or corrupt
    /// tail so the file ends on a frame boundary.
    ///
    /// # Errors
    ///
    /// I/O errors; a file with the wrong magic; or a CRC-valid frame whose
    /// payload does not decode as a [`LogRecord`] — that is version drift
    /// or foul play, not a torn write, and silently dropping it would lose
    /// acknowledged decisions.
    pub fn open(
        path: &Path,
        policy: FsyncPolicy,
    ) -> io::Result<(WalWriter, Vec<LogRecord>, WalOpenReport)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        if buf.is_empty() {
            file.write_all(&WAL_MAGIC)?;
            file.sync_all()?;
            let writer = WalWriter {
                file,
                path: path.to_path_buf(),
                policy,
                last_sync: Instant::now(),
                dirty: false,
                len: WAL_MAGIC.len() as u64,
                stats: WalStats::default(),
            };
            return Ok((
                writer,
                Vec::new(),
                WalOpenReport {
                    records_recovered: 0,
                    truncated_bytes: 0,
                    tail_was_corrupt: false,
                },
            ));
        }
        if buf.len() < WAL_MAGIC.len() || buf[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a fedsched WAL (bad magic)", path.display()),
            ));
        }
        let body = &buf[WAL_MAGIC.len()..];
        let scan = scan_frames(body);
        let mut records = Vec::with_capacity(scan.frames.len());
        for (i, payload) in scan.frames.iter().enumerate() {
            let text = std::str::from_utf8(payload).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("WAL record {i} is CRC-valid but not UTF-8"),
                )
            })?;
            let record: LogRecord = serde_json::from_str(text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("WAL record {i} is CRC-valid but undecodable ({e}): version drift?"),
                )
            })?;
            records.push(record);
        }
        let valid_end = (WAL_MAGIC.len() + scan.valid_len) as u64;
        let truncated = buf.len() as u64 - valid_end;
        if truncated > 0 {
            file.set_len(valid_end)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_end))?;
        let report = WalOpenReport {
            records_recovered: records.len() as u64,
            truncated_bytes: truncated,
            tail_was_corrupt: matches!(scan.tail, TailState::Corrupt { .. }),
        };
        let writer = WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            last_sync: Instant::now(),
            dirty: false,
            len: valid_end,
            stats: WalStats::default(),
        };
        Ok((writer, records, report))
    }

    /// Appends one record, syncing according to the policy.
    ///
    /// # Errors
    ///
    /// I/O errors from the write or sync.
    pub fn append(&mut self, record: &LogRecord) -> io::Result<()> {
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let frame = encode_frame(payload.as_bytes());
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.dirty = true;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += frame.len() as u64;
        match self.policy {
            FsyncPolicy::Every => self.sync()?,
            FsyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces a sync regardless of policy (used at shutdown and after
    /// snapshot markers).
    ///
    /// # Errors
    ///
    /// I/O errors from `fsync`.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        self.dirty = false;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Whether appended bytes are awaiting a sync.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// How long until the interval policy owes unsynced appends a sync:
    /// `Some(Duration::ZERO)` means a sync is overdue, `None` means no
    /// timed sync is pending (clean log, or a policy without an interval —
    /// `Every` never leaves the log dirty and `Never` promises nothing).
    ///
    /// Checking the deadline only on append (the pre-fix behaviour) leaves
    /// a quiet WAL holding acked-but-unsynced frames indefinitely; owners
    /// use this as a timer so the exposure is bounded by the interval even
    /// after the last append.
    #[must_use]
    pub fn sync_due(&self) -> Option<Duration> {
        match self.policy {
            FsyncPolicy::Interval(every) if self.dirty => {
                Some(every.saturating_sub(self.last_sync.elapsed()))
            }
            _ => None,
        }
    }

    /// Syncs if [`Self::sync_due`] reports an expired deadline; returns
    /// whether a sync was issued.
    ///
    /// # Errors
    ///
    /// I/O errors from `fsync`.
    pub fn sync_if_due(&mut self) -> io::Result<bool> {
        if self.sync_due() == Some(Duration::ZERO) {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Current file length in bytes (magic included).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records (just the magic).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Cost counters since open.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The active fsync policy.
    #[must_use]
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fedsched-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn marker(seq: u64) -> LogRecord {
        LogRecord::SnapshotMarker { seq }
    }

    #[test]
    fn parse_fsync_policies() {
        assert_eq!(FsyncPolicy::parse("every"), Ok(FsyncPolicy::Every));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Ok(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("interval:abc").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Every.to_string(), "every");
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(40)).to_string(),
            "interval:40"
        );
        assert_eq!(FsyncPolicy::Never.to_string(), "never");
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let (mut wal, records, report) = WalWriter::open(&path, FsyncPolicy::Every).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.truncated_bytes, 0);
        for seq in 0..5 {
            wal.append(&marker(seq)).unwrap();
        }
        assert_eq!(wal.stats().records_appended, 5);
        assert_eq!(wal.stats().fsyncs, 5, "policy=every syncs per record");
        drop(wal);
        let (wal, records, report) = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(records, (0..5).map(marker).collect::<Vec<_>>());
        assert_eq!(report.records_recovered, 5);
        assert_eq!(report.truncated_bytes, 0);
        assert!(!wal.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let (mut wal, _, _) = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(&marker(1)).unwrap();
        wal.append(&marker(2)).unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();
        // Tear the last frame mid-payload, as a crash mid-write would.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (wal, records, report) = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(records, vec![marker(1)]);
        assert!(report.truncated_bytes > 0);
        assert!(
            !report.tail_was_corrupt,
            "a short tail is torn, not corrupt"
        );
        // The file is now clean: reopening finds no tail to repair.
        drop(wal);
        let (_, records, report) = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(records, vec![marker(1)]);
        assert_eq!(report.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_is_truncated_and_flagged() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        let (mut wal, _, _) = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(&marker(1)).unwrap();
        wal.append(&marker(2)).unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload bit of the final frame
        fs::write(&path, &bytes).unwrap();
        let (_, records, report) = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(records, vec![marker(1)]);
        assert!(report.tail_was_corrupt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = tmpdir("magic");
        let path = dir.join("wal.log");
        fs::write(&path, b"definitely not a WAL").unwrap();
        let err = WalWriter::open(&path, FsyncPolicy::Never).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_valid_but_undecodable_record_errors() {
        let dir = tmpdir("drift");
        let path = dir.join("wal.log");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(b"{\"FutureRecord\":{}}"));
        fs::write(&path, &bytes).unwrap();
        let err = WalWriter::open(&path, FsyncPolicy::Never).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version drift"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn idle_interval_wal_owes_a_sync_within_the_interval() {
        let dir = tmpdir("idle");
        let path = dir.join("wal.log");
        let every = Duration::from_millis(25);
        let (mut wal, _, _) = WalWriter::open(&path, FsyncPolicy::Interval(every)).unwrap();
        assert_eq!(wal.sync_due(), None, "clean log owes nothing");
        wal.append(&marker(1)).unwrap();
        assert!(wal.is_dirty());
        // The acked-unsynced exposure after the last append is bounded by
        // the interval: the due deadline is at most `every` away, and once
        // it expires a timer tick syncs without any further append.
        let due = wal.sync_due().expect("dirty interval log owes a sync");
        assert!(due <= every);
        assert!(!wal.sync_if_due().unwrap(), "not due yet");
        std::thread::sleep(every + Duration::from_millis(5));
        assert_eq!(wal.sync_due(), Some(Duration::ZERO), "deadline expired");
        assert!(wal.sync_if_due().unwrap(), "tick syncs the quiet log");
        assert!(!wal.is_dirty());
        assert_eq!(wal.stats().fsyncs, 1);
        assert_eq!(wal.sync_due(), None, "synced log owes nothing again");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_policy_batches_fsyncs() {
        let dir = tmpdir("interval");
        let path = dir.join("wal.log");
        let (mut wal, _, _) =
            WalWriter::open(&path, FsyncPolicy::Interval(Duration::from_secs(3600))).unwrap();
        for seq in 0..100 {
            wal.append(&marker(seq)).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 0, "interval far away: no syncs yet");
        wal.sync().unwrap();
        assert_eq!(wal.stats().fsyncs, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
