//! CRC-32 (ISO-HDLC / "zlib" polynomial, reflected) used to checksum every
//! WAL and snapshot frame.
//!
//! Hand-rolled because the workspace builds offline: the usual `crc32fast`
//! crate is unavailable, and the frame format only needs the plain
//! byte-at-a-time table algorithm — frames are small (one admission record)
//! and the log is written once per decision, so throughput is not the
//! bottleneck. The parameters match the ubiquitous CRC-32/ISO-HDLC
//! (`poly=0x04C11DB7` reflected to `0xEDB88320`, init `0xFFFF_FFFF`,
//! final XOR `0xFFFF_FFFF`), so frames can be checked with any standard
//! tool (`python -c 'import zlib; print(zlib.crc32(data))'`).

/// The reflected CRC-32/ISO-HDLC polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32/ISO-HDLC of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = (crc ^ u32::from(byte)) & 0xFF;
        crc = (crc >> 8) ^ table[idx as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known vectors for CRC-32/ISO-HDLC (same as zlib.crc32).
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"admit tau_3 sigma template".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn incremental_prefixes_differ() {
        // Sanity: a CRC over a prefix never equals the CRC over the whole
        // (for this data) — guards against an accidentally constant table.
        let data = b"length-prefixed frame payload";
        assert_ne!(crc32(&data[..10]), crc32(data));
    }
}
