//! Snapshot files: one whole [`PersistedState`] per file, written
//! atomically (tmp + rename + directory sync) and checksummed with the
//! same frame format as the WAL.
//!
//! A snapshot is never updated in place and never required to exist: the
//! WAL alone can rebuild the state from empty, a snapshot only shortens
//! replay. That asymmetry makes the write protocol simple — if the process
//! dies mid-snapshot, the `.tmp` file is garbage that the next open
//! ignores, and recovery falls back to the previous snapshot (or the full
//! log). A snapshot only becomes load-bearing once its `SnapshotMarker`
//! lands in the WAL, which happens strictly after the rename.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::frame::{encode_frame, scan_frames, TailState};
use crate::record::PersistedState;

/// Magic bytes opening every snapshot file (`FSSNAP` + version 1).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FSSNAP\x00\x01";

/// The file name of snapshot `seq` (zero-padded so lexicographic order is
/// numeric order).
#[must_use]
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snapshot-{seq:016}.snap")
}

/// Parses a file name produced by [`snapshot_file_name`].
#[must_use]
pub fn parse_snapshot_seq(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Best-effort directory sync, so renames and unlinks survive power loss.
/// Ignored on platforms where directories cannot be opened for sync.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Writes snapshot `seq` atomically into `dir`.
///
/// The data path is: write `snapshot-<seq>.snap.tmp`, `fsync` it, rename
/// over the final name, `fsync` the directory. Only after all of that may
/// the caller append the `SnapshotMarker` to the WAL.
///
/// # Errors
///
/// I/O errors from any step; serialization failures surface as
/// `InvalidData`.
pub fn write_snapshot(dir: &Path, seq: u64, state: &PersistedState) -> io::Result<u64> {
    let final_path = dir.join(snapshot_file_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(seq)));
    let payload = serde_json::to_string(state)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut bytes = SNAPSHOT_MAGIC.to_vec();
    bytes.extend_from_slice(&encode_frame(payload.as_bytes()));
    let total = bytes.len() as u64;
    {
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&bytes)?;
        tmp.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir);
    Ok(total)
}

/// Loads snapshot `seq` from `dir`, verifying magic and CRC.
///
/// # Errors
///
/// I/O errors; `InvalidData` for bad magic, a torn/corrupt frame, trailing
/// bytes, or an undecodable payload. Callers treat any error as "this
/// snapshot is unusable" and fall back to an earlier one or the full log.
pub fn load_snapshot(dir: &Path, seq: u64) -> io::Result<PersistedState> {
    let path = dir.join(snapshot_file_name(seq));
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a fedsched snapshot (bad magic)", path.display()),
        ));
    }
    let scan = scan_frames(&bytes[SNAPSHOT_MAGIC.len()..]);
    if scan.tail != TailState::Clean || scan.frames.len() != 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} is damaged ({} valid frame(s), tail {:?})",
                path.display(),
                scan.frames.len(),
                scan.tail
            ),
        ));
    }
    let text = std::str::from_utf8(scan.frames[0])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "snapshot payload is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot {} undecodable ({e})", path.display()),
        )
    })
}

/// Sequence numbers of all well-named snapshot files in `dir`, ascending.
/// `.tmp` leftovers and foreign files are ignored.
///
/// # Errors
///
/// I/O errors from reading the directory.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_snapshot_seq(name) {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Deletes every snapshot file in `dir` with sequence `< keep`, plus any
/// stale `.tmp` leftovers. Returns the deleted paths.
///
/// # Errors
///
/// I/O errors from reading the directory or unlinking.
pub fn prune_snapshots(dir: &Path, keep: u64) -> io::Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_tmp = name.starts_with("snapshot-") && name.ends_with(".snap.tmp");
        let old = parse_snapshot_seq(name).is_some_and(|seq| seq < keep);
        if stale_tmp || old {
            fs::remove_file(entry.path())?;
            removed.push(entry.path());
        }
    }
    sync_dir(dir);
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PersistedConfig, PersistedStats, FORMAT_VERSION};
    use fedsched_analysis::probe::AnalysisProbe;
    use fedsched_graham::list::PriorityPolicy;

    fn state(next_token: u64) -> PersistedState {
        PersistedState {
            version: FORMAT_VERSION,
            config: PersistedConfig {
                processors: 4,
                policy: PriorityPolicy::ListOrder,
                utilization_check: true,
                exact_budget: None,
                template_cache_cap: 0,
            },
            next_token,
            clusters: Vec::new(),
            shared: Vec::new(),
            cache: Vec::new(),
            stats: PersistedStats::default(),
            probe: AnalysisProbe::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fedsched-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(snapshot_file_name(7), "snapshot-0000000000000007.snap");
        assert_eq!(
            parse_snapshot_seq("snapshot-0000000000000007.snap"),
            Some(7)
        );
        assert_eq!(parse_snapshot_seq("snapshot-7.snap"), None);
        assert_eq!(
            parse_snapshot_seq("snapshot-0000000000000007.snap.tmp"),
            None
        );
        assert_eq!(parse_snapshot_seq("wal.log"), None);
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let bytes = write_snapshot(&dir, 3, &state(42)).unwrap();
        assert!(bytes > SNAPSHOT_MAGIC.len() as u64);
        let loaded = load_snapshot(&dir, 3).unwrap();
        assert_eq!(loaded, state(42));
        assert_eq!(list_snapshots(&dir).unwrap(), vec![3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_fails_to_load() {
        let dir = tmpdir("corrupt");
        write_snapshot(&dir, 1, &state(1)).unwrap();
        let path = dir.join(snapshot_file_name(1));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load_snapshot(&dir, 1).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_fails_to_load() {
        let dir = tmpdir("truncated");
        write_snapshot(&dir, 1, &state(1)).unwrap();
        let path = dir.join(snapshot_file_name(1));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(load_snapshot(&dir, 1).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_old_snapshots_and_tmp_litter() {
        let dir = tmpdir("prune");
        for seq in 1..=3 {
            write_snapshot(&dir, seq, &state(seq)).unwrap();
        }
        fs::write(dir.join("snapshot-0000000000000009.snap.tmp"), b"junk").unwrap();
        fs::write(dir.join("unrelated.txt"), b"keep").unwrap();
        let removed = prune_snapshots(&dir, 3).unwrap();
        assert_eq!(removed.len(), 3, "two old snapshots + one tmp");
        assert_eq!(list_snapshots(&dir).unwrap(), vec![3]);
        assert!(dir.join("unrelated.txt").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
