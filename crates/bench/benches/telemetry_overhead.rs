//! E18 — what does the telemetry event bus cost the admission path?
//!
//! Every admission through [`AdmissionState`] passes the telemetry sink:
//! with telemetry disabled the sink is [`EventSink::Noop`] and every
//! record is a single discarded branch; enabled, spans and counters land
//! in a fixed-capacity ring buffer. Both benchmarks drive the identical
//! admission sweep (the E17 workload: sixteen mixed-density 24-task
//! systems) through the exact production `admit_traced` path:
//!
//! * `noop_sink` — `AdmissionConfig::new(m)`, telemetry off (the default).
//! * `ring_sink` — `with_telemetry(4096)`, every admission emitting its
//!   spans and counters into the ring.
//!
//! The acceptance bar (EXPERIMENTS.md E18) is < 2% added latency for the
//! disabled path relative to what E17 measured for the bare policy layer,
//! and the enabled path is expected to stay within a few percent too: the
//! sink work is a handful of `Instant` reads and vector pushes against an
//! analysis dominated by List-Scheduling and demand-bound arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use fedsched_dag::system::TaskSystem;
use fedsched_gen::system::SystemConfig;
use fedsched_service::{AdmissionConfig, AdmissionState};
use std::hint::black_box;

const PROCESSORS: u32 = 64;

/// The E17 workload: sixteen mixed-density 24-task systems, enough
/// high-density tasks to exercise `MINPROCS` sizing and enough low-density
/// ones to exercise the first-fit, per system.
fn workload() -> Vec<TaskSystem> {
    (0..16)
        .map(|i| {
            SystemConfig::new(24, 10.0)
                .with_max_task_utilization(1.8)
                .generate_seeded(1700 + i)
                .expect("feasible generator target")
        })
        .collect()
}

fn sweep(systems: &[TaskSystem], config: AdmissionConfig) -> usize {
    let mut accepted = 0usize;
    let mut trace = 0u64;
    for system in systems {
        // Fresh state per system so every sweep replays the same mix of
        // fresh sizings, cache hits, and partition replays.
        let mut state = AdmissionState::new(config);
        for task in system.tasks() {
            trace += 1;
            if state.admit_traced(task.clone(), Some(trace)).is_ok() {
                accepted += 1;
            }
        }
    }
    accepted
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let systems = workload();
    let mut group = c.benchmark_group("telemetry_overhead");

    group.bench_function("noop_sink", |b| {
        let config = AdmissionConfig::new(PROCESSORS);
        b.iter(|| black_box(sweep(black_box(&systems), config)));
    });

    group.bench_function("ring_sink", |b| {
        let config = AdmissionConfig::new(PROCESSORS).with_telemetry(4096);
        b.iter(|| black_box(sweep(black_box(&systems), config)));
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
