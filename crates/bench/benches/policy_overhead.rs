//! E17 — what does the `SchedulingPolicy` trait layer cost?
//!
//! The policy layer adds one dynamic dispatch and an [`AnalysisProbe`]
//! threaded through every phase of the analysis. Both benchmarks run the
//! identical FEDCONS code path over the identical workload (a 16-system
//! admission sweep in the spirit of the E16 admission benchmark):
//!
//! * `direct_fedcons` — `fedsched_core::fedcons::fedcons`, the uninstrumented
//!   entry point (which internally discards a scratch probe).
//! * `trait_with_probe` — `policy_by_name("fedcons")` followed by
//!   `SchedulingPolicy::analyze` with a live probe accumulating across the
//!   sweep, i.e. exactly what the CLI, the experiments, and the admission
//!   service do.
//!
//! The acceptance bar (EXPERIMENTS.md E17) is < 2% added latency: the probe
//! counters are plain `u64` adds on paths dominated by List-Scheduling
//! simulation and demand-bound arithmetic, and the virtual call happens
//! once per system, not per inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::system::TaskSystem;
use fedsched_gen::system::SystemConfig;
use fedsched_policy::policy_by_name;
use std::hint::black_box;

const PROCESSORS: u32 = 64;

/// Sixteen mixed-density 24-task systems: enough high-density tasks to
/// exercise `MINPROCS` sizing and enough low-density ones to exercise the
/// first-fit, per system.
fn workload() -> Vec<TaskSystem> {
    (0..16)
        .map(|i| {
            SystemConfig::new(24, 10.0)
                .with_max_task_utilization(1.8)
                .generate_seeded(1700 + i)
                .expect("feasible generator target")
        })
        .collect()
}

fn bench_policy_overhead(c: &mut Criterion) {
    let systems = workload();
    let config = FedConsConfig::default();
    let policy = policy_by_name("fedcons").expect("fedcons is registered");
    let mut group = c.benchmark_group("policy_overhead");

    group.bench_function("direct_fedcons", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for system in &systems {
                if fedcons(black_box(system), PROCESSORS, config).is_ok() {
                    accepted += 1;
                }
            }
            black_box(accepted)
        });
    });

    group.bench_function("trait_with_probe", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            let mut probe = AnalysisProbe::default();
            for system in &systems {
                if policy
                    .analyze(black_box(system), PROCESSORS, &mut probe)
                    .is_ok()
                {
                    accepted += 1;
                }
            }
            black_box((accepted, probe.ls_runs))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_policy_overhead);
criterion_main!(benches);
