//! One criterion group per paper experiment (E2–E8): each benchmark runs a
//! reduced-size instance of the corresponding `fedsched-experiments`
//! module, so `cargo bench` both times the harness and re-executes every
//! table/figure pipeline end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use fedsched_experiments::{
    e10_partition_ablation, e11_policy_ablation, e12_exact_optimum, e13_global_sim, e14_tightness,
    e15_critical_speed, e2_capacity, e3_acceptance, e4_baselines, e5_minprocs, e6_partition,
    e7_runtime, e8_anomaly,
};
use std::hint::black_box;

fn quick_e3() -> e3_acceptance::E3Config {
    e3_acceptance::E3Config {
        m_values: vec![4],
        steps: 5,
        systems_per_point: 10,
        n_tasks: 6,
        ..e3_acceptance::E3Config::default()
    }
}

fn bench_e2(c: &mut Criterion) {
    c.bench_function("e2_capacity_augmentation", |b| {
        b.iter(|| e2_capacity::run(black_box(5)));
    });
}

fn bench_e3(c: &mut Criterion) {
    c.bench_function("e3_acceptance_ratio", |b| {
        let cfg = quick_e3();
        b.iter(|| e3_acceptance::run(black_box(&cfg)));
    });
}

fn bench_e4(c: &mut Criterion) {
    c.bench_function("e4_baselines", |b| {
        let cfg = e4_baselines::E4Config {
            m: 4,
            steps: 4,
            systems_per_point: 10,
            n_tasks: 6,
            ..e4_baselines::E4Config::default()
        };
        b.iter(|| e4_baselines::run(black_box(&cfg)));
    });
}

fn bench_e5(c: &mut Criterion) {
    c.bench_function("e5_minprocs_speedup", |b| {
        let cfg = e5_minprocs::E5Config {
            trials: 20,
            ..e5_minprocs::E5Config::default()
        };
        b.iter(|| e5_minprocs::run(black_box(&cfg)));
    });
}

fn bench_e6(c: &mut Criterion) {
    c.bench_function("e6_partition_speedup", |b| {
        let cfg = e6_partition::E6Config {
            trials: 10,
            n_tasks: 8,
            total_utilization: 2.0,
            ..e6_partition::E6Config::default()
        };
        b.iter(|| e6_partition::run(black_box(&cfg)));
    });
}

fn bench_e7(c: &mut Criterion) {
    c.bench_function("e7_runtime_validation", |b| {
        let cfg = e7_runtime::E7Config {
            m: 4,
            steps: 2,
            systems_per_point: 3,
            n_tasks: 5,
            horizon: 10_000,
            ..e7_runtime::E7Config::default()
        };
        b.iter(|| e7_runtime::run(black_box(&cfg)));
    });
}

fn bench_e8(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_anomaly");
    g.bench_function("classic_runtime", |b| {
        b.iter(|| e8_anomaly::run_classic(black_box(1_000)));
    });
    g.bench_function("random_search", |b| {
        let cfg = e8_anomaly::E8Config {
            trials: 100,
            m_values: vec![3],
            seed: 88,
        };
        b.iter(|| e8_anomaly::run_search(black_box(&cfg)));
    });
    g.finish();
}

fn bench_e10(c: &mut Criterion) {
    c.bench_function("e10_partition_ablation", |b| {
        let cfg = e10_partition_ablation::E10Config {
            m: 3,
            steps: 4,
            systems_per_point: 10,
            n_tasks: 6,
            ..e10_partition_ablation::E10Config::default()
        };
        b.iter(|| e10_partition_ablation::run(black_box(&cfg)));
    });
}

fn bench_e11(c: &mut Criterion) {
    c.bench_function("e11_policy_ablation", |b| {
        let cfg = e11_policy_ablation::E11Config {
            trials: 25,
            ..e11_policy_ablation::E11Config::default()
        };
        b.iter(|| e11_policy_ablation::run(black_box(&cfg)));
    });
}

fn bench_e12(c: &mut Criterion) {
    c.bench_function("e12_exact_optimum", |b| {
        let cfg = e12_exact_optimum::E12Config {
            trials: 10,
            m_values: vec![3],
            ..e12_exact_optimum::E12Config::default()
        };
        b.iter(|| e12_exact_optimum::run(black_box(&cfg)));
    });
}

fn bench_e13(c: &mut Criterion) {
    c.bench_function("e13_global_sim", |b| {
        let cfg = e13_global_sim::E13Config {
            m: 4,
            steps: 3,
            systems_per_point: 5,
            n_tasks: 5,
            horizon: 10_000,
            ..e13_global_sim::E13Config::default()
        };
        b.iter(|| e13_global_sim::run(black_box(&cfg)));
    });
}

fn bench_e14(c: &mut Criterion) {
    c.bench_function("e14_tightness", |b| {
        let cfg = e14_tightness::E14Config {
            m: 4,
            steps: 3,
            systems_per_point: 10,
            n_tasks: 5,
            ..e14_tightness::E14Config::default()
        };
        b.iter(|| e14_tightness::run(black_box(&cfg)));
    });
}

fn bench_e15(c: &mut Criterion) {
    c.bench_function("e15_critical_speed", |b| {
        let cfg = e15_critical_speed::E15Config {
            m: 4,
            systems_per_topology: 5,
            n_tasks: 5,
            grid: 4,
            ..e15_critical_speed::E15Config::default()
        };
        b.iter(|| e15_critical_speed::run(black_box(&cfg)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e2, bench_e3, bench_e4, bench_e5, bench_e6, bench_e7, bench_e8,
        bench_e10, bench_e11, bench_e12, bench_e13, bench_e14, bench_e15
}
criterion_main!(benches);
