//! E9 — scalability of the analyses: the paper claims `len`/`vol` are
//! linear-time (Section II) and the whole admission is polynomial; these
//! benchmarks chart the actual cost against DAG size, task count and
//! processor count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::edf::{edf_exact, edf_qpa, DEFAULT_BUDGET};
use fedsched_analysis::response_time::edf_response_times;
use fedsched_bench::{bench_dag, bench_system, wide_dag};
use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_graham::list::{list_schedule, list_schedule_with, PriorityPolicy};
use fedsched_graham::optimal::optimal_makespan;
use std::hint::black_box;

fn bench_graph_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability_graph_metrics");
    for v in [50u32, 200, 800] {
        let dag = bench_dag(v, 1);
        g.bench_with_input(BenchmarkId::new("longest_chain", v), &dag, |b, dag| {
            b.iter(|| black_box(dag).longest_chain());
        });
        g.bench_with_input(BenchmarkId::new("volume", v), &dag, |b, dag| {
            b.iter(|| black_box(dag).volume());
        });
    }
    g.finish();
}

fn bench_list_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability_list_scheduling");
    for v in [50u32, 200, 800] {
        let dag = bench_dag(v, 2);
        g.bench_with_input(BenchmarkId::new("ls_m4", v), &dag, |b, dag| {
            b.iter(|| list_schedule(black_box(dag), 4));
        });
        g.bench_with_input(BenchmarkId::new("ls_cpf_m4", v), &dag, |b, dag| {
            b.iter(|| list_schedule_with(black_box(dag), 4, PriorityPolicy::CriticalPathFirst));
        });
    }
    for w in [64usize, 512] {
        let dag = wide_dag(w);
        g.bench_with_input(BenchmarkId::new("ls_wide_m8", w), &dag, |b, dag| {
            b.iter(|| list_schedule(black_box(dag), 8));
        });
    }
    g.finish();
}

fn bench_edf_tests(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability_edf_tests");
    for n in [5usize, 20, 50] {
        let system = bench_system(n, n as f64 * 0.08, 3);
        let views: Vec<SequentialView> =
            system.iter().map(|(_, t)| SequentialView::of(t)).collect();
        g.bench_with_input(BenchmarkId::new("exhaustive", n), &views, |b, v| {
            b.iter(|| edf_exact(black_box(v), DEFAULT_BUDGET));
        });
        g.bench_with_input(BenchmarkId::new("qpa", n), &views, |b, v| {
            b.iter(|| edf_qpa(black_box(v), DEFAULT_BUDGET));
        });
    }
    g.finish();
}

fn bench_fedcons(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability_fedcons");
    for n in [5usize, 20, 50] {
        let system = bench_system(n, 4.0, 4);
        g.bench_with_input(BenchmarkId::new("admit_m8", n), &system, |b, s| {
            b.iter(|| fedcons(black_box(s), 8, FedConsConfig::default()));
        });
    }
    // U/m = 0.5 per point; m is capped so 16 tasks with u ≤ 1.5 can
    // actually carry the load (m = 64 would need U = 32 > 16·1.5).
    for m in [4u32, 8, 16] {
        let system = bench_system(16, f64::from(m) * 0.5, 5);
        g.bench_with_input(BenchmarkId::new("admit_n16", m), &system, |b, s| {
            b.iter(|| fedcons(black_box(s), m, FedConsConfig::default()));
        });
    }
    g.finish();
}

fn bench_response_times(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability_response_times");
    for n in [5usize, 15, 30] {
        let system = bench_system(n, n as f64 * 0.06, 6);
        let views: Vec<SequentialView> =
            system.iter().map(|(_, t)| SequentialView::of(t)).collect();
        g.bench_with_input(BenchmarkId::new("spuri", n), &views, |b, v| {
            b.iter(|| edf_response_times(black_box(v), 5_000_000));
        });
    }
    g.finish();
}

fn bench_optimal_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability_optimal_makespan");
    for v in [6u32, 9, 12] {
        let dag = bench_dag(v, 7);
        g.bench_with_input(BenchmarkId::new("bnb_m3", v), &dag, |b, dag| {
            b.iter(|| optimal_makespan(black_box(dag), 3, 5_000_000));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_metrics, bench_list_scheduling, bench_edf_tests, bench_fedcons,
        bench_response_times, bench_optimal_solver
}
criterion_main!(benches);
