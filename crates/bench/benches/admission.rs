//! Online admission vs. batch re-analysis: how much does the incremental
//! `AdmissionState` (suffix-replay partitioning + `MINPROCS` template
//! caching) buy over re-running `FEDCONS` from scratch on every arrival?
//!
//! Three routines admit the same arrival sequence onto the same platform:
//!
//! * `batch_readmit` — the naive online server: on each arrival, run batch
//!   `fedcons` over resident ∪ {new} (quadratic in the resident count, and
//!   every `MINPROCS` search is repeated from scratch each round).
//! * `incremental_cold` — `AdmissionState::admit` with an empty template
//!   cache: every distinct DAG shape pays one `MINPROCS` List-Scheduling
//!   search, low-density arrivals pay only a suffix replay.
//! * `incremental_warm` — the steady-state server: the same arrivals
//!   admitted into a state whose template cache already holds every shape
//!   (populated by an admit/remove warm-up pass), so high-density
//!   admissions are pure cache lookups.
//!
//! A second group, `template_cache`, isolates the cache itself on a
//! hard-to-size shape (see [`chain_with_fringe`]): one high-density admit
//! with an empty cache vs. a cached one.
//!
//! Representative numbers from this machine (shim criterion, release,
//! 64 processors, 48-task arrival sequence, mean per full sequence):
//! batch_readmit ≈ 8.9 ms, incremental_cold ≈ 2.1 ms (~4.3×),
//! incremental_warm ≈ 1.8 ms (~5.0×). The sequence is replay-dominated;
//! the isolated high-density admit shows the cache directly:
//! high_admit_cold ≈ 116 µs vs. high_admit_warm ≈ 5.0 µs (~23×).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fedsched_core::fedcons::fedcons;
use fedsched_dag::graph::DagBuilder;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;
use fedsched_service::state::{AdmissionConfig, AdmissionState};
use std::hint::black_box;

const PROCESSORS: u32 = 64;

/// A 4-layer × `width`-vertex fork-join stage pipeline (complete bipartite
/// edges between consecutive layers): volume `4·width`, chain 4,
/// high-density at `D = 40` (`MINPROCS` = ⌈width/10⌉). Large enough that
/// sizing its template is real work — exactly the case the cache is for;
/// each `width` is a distinct canonical shape.
fn layered_high_density(width: usize) -> DagTask {
    let mut b = DagBuilder::new();
    let mut prev: Vec<_> = Vec::new();
    for _ in 0..4 {
        let layer: Vec<_> = (0..width).map(|_| b.add_vertex(Duration::new(1))).collect();
        for &p in &prev {
            for &v in &layer {
                b.add_edge(p, v).unwrap();
            }
        }
        prev = layer;
    }
    DagTask::new(b.build().unwrap(), Duration::new(40), Duration::new(60)).unwrap()
}

/// The arrival sequence: a generated low/mixed-density workload plus eight
/// *distinct* high-density shapes (widths 28..=35), interleaved so high
/// arrivals shrink the shared pool mid-sequence. Distinct shapes make the
/// cold run pay one `MINPROCS` search per high arrival, while the warm run
/// answers all eight from the template cache. Sized so every arrival is
/// admissible on 64 processors.
fn arrivals() -> Vec<DagTask> {
    let system = SystemConfig::new(40, 8.0)
        .with_max_task_utilization(0.7)
        .generate_seeded(2015)
        .expect("feasible generator target");
    let mut tasks = Vec::new();
    let mut width = 28;
    for (i, (_, t)) in system.iter().enumerate() {
        tasks.push(t.clone());
        if i % 5 == 4 {
            tasks.push(layered_high_density(width));
            width += 1;
        }
    }
    tasks
}

/// A fresh state with every arrival's template already cached.
fn warmed_state(tasks: &[DagTask]) -> AdmissionState {
    let mut state = AdmissionState::new(AdmissionConfig::new(PROCESSORS));
    let tokens: Vec<u64> = tasks
        .iter()
        .map(|t| state.admit(t.clone()).expect("warm-up admit").token)
        .collect();
    for token in tokens {
        state.remove(token).expect("warm-up remove");
    }
    state
}

fn bench_admission(c: &mut Criterion) {
    let tasks = arrivals();
    let mut group = c.benchmark_group("admission");

    group.bench_function("batch_readmit", |b| {
        b.iter(|| {
            let mut resident: Vec<DagTask> = Vec::new();
            for task in &tasks {
                let union: TaskSystem = resident.iter().cloned().chain([task.clone()]).collect();
                let config = AdmissionConfig::new(PROCESSORS);
                if fedcons(&union, PROCESSORS, config.fedcons).is_ok() {
                    resident.push(task.clone());
                }
            }
            black_box(resident.len())
        });
    });

    group.bench_function("incremental_cold", |b| {
        b.iter_batched(
            || AdmissionState::new(AdmissionConfig::new(PROCESSORS)),
            |mut state| {
                for task in &tasks {
                    let _ = black_box(state.admit(task.clone()));
                }
                state
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("incremental_warm", |b| {
        b.iter_batched(
            || warmed_state(&tasks),
            |mut state| {
                for task in &tasks {
                    let _ = black_box(state.admit(task.clone()));
                }
                state
            },
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

/// A shape `MINPROCS` has to *search* for: 60 independent unit vertices
/// listed ahead of a 38-vertex chain, `D = 40`. The volume bound says
/// `⌈98/40⌉ = 3` processors, but under list-order priorities the fringe
/// starves the chain, so the search walks μ = 3, 4, … until the makespan
/// fits — dozens of List-Scheduling runs. (Contrast with
/// [`layered_high_density`], whose volume bound is exact and sizes in one
/// run.)
fn chain_with_fringe() -> DagTask {
    let mut b = DagBuilder::new();
    b.add_vertices([1; 60].map(Duration::new));
    let chain: Vec<_> = (0..38).map(|_| b.add_vertex(Duration::new(1))).collect();
    for pair in chain.windows(2) {
        b.add_edge(pair[0], pair[1]).unwrap();
    }
    DagTask::new(b.build().unwrap(), Duration::new(40), Duration::new(60)).unwrap()
}

/// Isolates what the template cache saves on the high-density path: a
/// single hard-to-size admit against an empty cache (pays the full
/// `MINPROCS` List-Scheduling search) vs. against a cache that already
/// holds the shape (a hash lookup plus cluster bookkeeping).
fn bench_template_cache(c: &mut Criterion) {
    let big = chain_with_fringe();
    let mut group = c.benchmark_group("template_cache");

    group.bench_function("high_admit_cold", |b| {
        b.iter_batched(
            || AdmissionState::new(AdmissionConfig::new(PROCESSORS)),
            |mut state| {
                black_box(state.admit(big.clone())).expect("admissible");
                state
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("high_admit_warm", |b| {
        let mut state = AdmissionState::new(AdmissionConfig::new(PROCESSORS));
        let token = state.admit(big.clone()).expect("admissible").token;
        state.remove(token).expect("resident");
        b.iter(|| {
            let admitted = black_box(state.admit(big.clone())).expect("admissible");
            state.remove(admitted.token).expect("resident");
        });
    });

    group.finish();
}

criterion_group!(benches, bench_admission, bench_template_cache);
criterion_main!(benches);
