//! E1 benchmarks: the paper's Figure 1 / Example 1 quantities and the
//! admission of the example task — plus the linear-time `len`/`vol`
//! computations the paper highlights in Section II.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::examples::{paper_example2, paper_figure1};
use fedsched_dag::system::TaskSystem;
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_figure1");
    g.bench_function("derive_quantities", |b| {
        let tau1 = paper_figure1();
        b.iter(|| {
            let dag = black_box(tau1.dag());
            (dag.volume(), dag.longest_chain().length)
        });
    });
    g.bench_function("construct_task", |b| {
        b.iter(paper_figure1);
    });
    g.bench_function("fedcons_admit", |b| {
        let system: TaskSystem = [paper_figure1()].into_iter().collect();
        b.iter(|| fedcons(black_box(&system), 2, FedConsConfig::default()));
    });
    g.finish();
}

fn bench_example2(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_example2");
    for n in [4u32, 16, 64] {
        g.bench_function(format!("fedcons_n{n}"), |b| {
            b.iter_batched(
                || paper_example2(n),
                |sys| fedcons(&sys, n, FedConsConfig::default()),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figure1, bench_example2);
criterion_main!(benches);
