//! Shared fixtures for the criterion benchmarks.
//!
//! The actual benchmarks live in `benches/`; each one regenerates part of
//! the paper's evaluation (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded outcomes).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fedsched_dag::graph::{Dag, DagBuilder};
use fedsched_dag::system::TaskSystem;
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::{DeadlineTightness, Span, Topology, WcetRange};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic random DAG with roughly `vertices` vertices.
#[must_use]
pub fn bench_dag(vertices: u32, seed: u64) -> Dag {
    Topology::ErdosRenyi {
        vertices: Span::new(vertices.max(2), vertices.max(2)),
        edge_probability: 0.15,
    }
    .generate(&mut StdRng::seed_from_u64(seed), WcetRange::new(1, 20))
}

/// A deterministic wide DAG: `width` independent unit jobs.
#[must_use]
pub fn wide_dag(width: usize) -> Dag {
    let mut b = DagBuilder::new();
    b.add_vertices(std::iter::repeat_n(Duration::new(1), width));
    b.build().expect("no edges, no cycles")
}

/// A deterministic constrained-deadline task system for admission benches.
#[must_use]
pub fn bench_system(n_tasks: usize, total_utilization: f64, seed: u64) -> TaskSystem {
    SystemConfig::new(n_tasks, total_utilization)
        .with_max_task_utilization(1.5)
        .with_tightness(DeadlineTightness::new(0.3, 1.0))
        .generate_seeded(seed)
        .expect("bench target is feasible")
}
