//! Reproducible analysis-engine benchmark: the bound-guided parallel
//! engine versus a seed-equivalent naive baseline, on the workloads the
//! optimization targets. Writes a machine-readable `BENCH_analysis.json`.
//!
//! Usage:
//!
//! ```text
//! analysis_bench [--quick] [--out FILE] [--gate-minprocs RATIO]
//! ```
//!
//! `--gate-minprocs RATIO` turns the report into a regression gate: after
//! writing the JSON, the run fails if the 1-thread `minprocs_sizing`
//! engine speedup falls below `RATIO`. The gated suite is measured
//! best-of-3 (minimum wall time of three identical passes per side) so
//! the gate compares the workloads, not scheduler jitter; results are
//! asserted equal on every repeat.
//!
//! The **baseline** reproduces the pre-optimization engine faithfully: a
//! literal Fig. 3 sweep from the processor lower bound upward, one full
//! List-Scheduling run — including a fresh priority-rank computation —
//! per candidate, strictly sequentially, with no Graham-bound pruning.
//!
//! The **engine** columns run the current analysis at pool widths 1, 2, 4
//! and 8. On a single-core host the width-1 column already isolates the
//! algorithmic gains (rank hoisting, bound-guided candidate windows,
//! certificate decisions); wider pools add wall-clock scaling on
//! multi-core hosts. Every suite asserts the engine's verdicts equal the
//! baseline's before any timing is reported — the speedup is never bought
//! with a different answer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::fedcons::{fedcons, fedcons_probed, FedConsConfig};
use fedsched_core::minprocs::{min_procs_fits_probed, min_procs_probed};
use fedsched_core::speedup::required_speed;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::{DeadlineTightness, Span, Topology, WcetRange};
use fedsched_graham::list::{
    list_makespan_ranked, list_schedule_ranked, list_schedule_with, PriorityPolicy,
};
use fedsched_parallel::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Pool widths exercised by the engine columns.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Repeats for the gated `minprocs_sizing` suite (best-of-N wall time).
const GATED_REPEATS: usize = 3;

/// Heap allocations performed by this process, counted by the global
/// allocator below — the `ls_kernel` suite reads it to report
/// allocations per kernel run.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Serialize)]
struct BaselineRun {
    wall_nanos: u64,
    ls_runs: u64,
}

#[derive(Serialize)]
struct EngineRun {
    threads: usize,
    wall_nanos: u64,
    ls_runs: u64,
    ls_runs_pruned: u64,
    par_tasks_dispatched: u64,
    /// Baseline wall time divided by this run's wall time.
    speedup_vs_baseline: f64,
}

#[derive(Serialize)]
struct Suite {
    workload: &'static str,
    policy: &'static str,
    items: usize,
    baseline: BaselineRun,
    engine: Vec<EngineRun>,
}

/// One measured kernel entry point in the `ls_kernel` suite.
#[derive(Serialize)]
struct KernelPath {
    path: &'static str,
    nanos_per_run: f64,
    allocs_per_run: f64,
}

/// Raw List-Scheduling kernel microbenchmark: wall time and heap
/// allocations per warm kernel run, for both the makespan-only and the
/// template-materialising entry points.
#[derive(Serialize)]
struct KernelSuite {
    items: usize,
    iters_per_item: u64,
    paths: Vec<KernelPath>,
}

#[derive(Serialize)]
struct Report {
    quick: bool,
    host_parallelism: usize,
    suites: Vec<Suite>,
    ls_kernel: KernelSuite,
}

fn nanos_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn policy_name(policy: PriorityPolicy) -> &'static str {
    match policy {
        PriorityPolicy::ListOrder => "list",
        PriorityPolicy::CriticalPathFirst => "cpf",
        PriorityPolicy::LongestWcetFirst => "lwf",
    }
}

/// The pre-optimization `MINPROCS`: sweep every candidate from the lower
/// bound up, one `list_schedule_with` (ranks recomputed inside) per
/// candidate, no bounds. Returns the minimal fitting count.
fn naive_min_procs(
    task: &DagTask,
    available: u32,
    policy: PriorityPolicy,
    ls_runs: &mut u64,
) -> Option<u32> {
    if !task.is_chain_feasible() {
        return None;
    }
    let start = task.min_processors_lower_bound().max(1);
    for mu in start..=available {
        *ls_runs += 1;
        let template = list_schedule_with(task.dag(), mu, policy);
        if template.makespan() <= task.deadline() {
            return Some(mu);
        }
    }
    None
}

/// A system pre-split by density class, so the baseline is not charged
/// for clones inside the timed region (the pre-optimization engine never
/// cloned either).
struct SplitSystem {
    full: TaskSystem,
    lows: TaskSystem,
}

impl SplitSystem {
    fn new(full: TaskSystem) -> SplitSystem {
        let lows = full
            .tasks()
            .iter()
            .filter(|t| t.is_low_density())
            .cloned()
            .collect();
        SplitSystem { full, lows }
    }
}

/// The pre-optimization FEDCONS: naive phase-1 sizing of each high-density
/// task against the shrinking remainder, then the (unchanged) phase-2
/// first-fit partition of the low-density subset.
fn naive_fedcons(split: &SplitSystem, m: u32, policy: PriorityPolicy, ls_runs: &mut u64) -> bool {
    let mut remaining = m;
    for id in split.full.high_density_ids() {
        match naive_min_procs(split.full.task(id), remaining, policy, ls_runs) {
            Some(mu) => remaining -= mu,
            None => return false,
        }
    }
    if split.lows.is_empty() {
        return true;
    }
    let config = FedConsConfig {
        policy,
        ..FedConsConfig::default()
    };
    fedcons(&split.lows, remaining, config).is_ok()
}

/// High-density tasks with deadlines at a controlled tightness: `d = len +
/// frac · (vol − len)` for `frac` uniform in `frac_range`. Small fractions
/// squeeze the deadline toward the critical path, so List Scheduling needs
/// well more than the `⌈vol/D⌉` lower bound and a sizing sweep visits
/// several candidates — the regime the analysis actually struggles in.
fn high_density_tasks(count: usize, seed: u64, frac_range: (f64, f64)) -> Vec<DagTask> {
    let topology = Topology::ErdosRenyi {
        vertices: Span::new(40, 120),
        edge_probability: 0.08,
    };
    (0..count)
        .filter_map(|i| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let dag = topology.generate(&mut rng, WcetRange::new(1, 20));
            let len = dag.longest_chain().length.ticks();
            let vol = dag.volume().ticks();
            if vol == len {
                return None;
            }
            let frac = rng.gen_range(frac_range.0..=frac_range.1);
            let slack = ((vol - len) as f64 * frac) as u64;
            let d = (len + slack.max(1)).min(vol);
            let t = d + rng.gen_range(0..=d);
            DagTask::new(dag, Duration::new(d), Duration::new(t)).ok()
        })
        .collect()
}

/// Batch-FEDCONS workload: mixed-density constrained-deadline systems at
/// moderate normalized utilization on an `m = 16` platform, with tight
/// deadlines so phase-1 sizing sweeps carry the analysis cost.
fn fedcons_systems(count: usize, seed: u64) -> Vec<TaskSystem> {
    let config = SystemConfig::new(10, 5.0)
        .with_max_task_utilization(2.0)
        .with_topology(Topology::ErdosRenyi {
            vertices: Span::new(20, 60),
            edge_probability: 0.1,
        })
        .with_tightness(DeadlineTightness::new(0.1, 0.6));
    (0..count)
        .filter_map(|i| config.generate_seeded(seed.wrapping_add(i as u64)))
        .collect()
}

/// Sizing suite: full `MINPROCS` (minimal count + template) per task. The
/// candidate sweep is where rank hoisting pays: the baseline recomputes
/// the priority ranks for every candidate it visits.
fn suite_minprocs_sizing(tasks: &[DagTask], policy: PriorityPolicy) -> Suite {
    let available = 64u32;
    // This suite feeds the `--gate-minprocs` regression gate, so both
    // sides are measured best-of-N: N identical passes, minimum wall
    // time, results asserted equal on every repeat.
    let mut baseline_sizes: Vec<Option<u32>> = Vec::new();
    let mut baseline_runs = 0u64;
    let mut baseline_wall = u64::MAX;
    for repeat in 0..GATED_REPEATS {
        let mut runs = 0u64;
        let start = Instant::now();
        let sizes: Vec<Option<u32>> = tasks
            .iter()
            .map(|t| naive_min_procs(t, available, policy, &mut runs))
            .collect();
        let wall = nanos_since(start);
        baseline_wall = baseline_wall.min(wall);
        if repeat == 0 {
            baseline_sizes = sizes;
            baseline_runs = runs;
        } else {
            assert_eq!(sizes, baseline_sizes, "baseline must be deterministic");
            assert_eq!(runs, baseline_runs, "baseline must be deterministic");
        }
    }
    let baseline = BaselineRun {
        wall_nanos: baseline_wall,
        ls_runs: baseline_runs,
    };

    let engine = THREADS
        .iter()
        .map(|&threads| {
            let pool = Pool::new(threads);
            let mut best_wall = u64::MAX;
            let mut best_probe = AnalysisProbe::default();
            for _ in 0..GATED_REPEATS {
                let mut probe = AnalysisProbe::default();
                let start = Instant::now();
                let sizes: Vec<Option<u32>> = pool.install(|| {
                    tasks
                        .iter()
                        .map(|t| {
                            min_procs_probed(t, available, policy, &mut probe).map(|r| r.processors)
                        })
                        .collect()
                });
                let wall = nanos_since(start);
                assert_eq!(sizes, baseline_sizes, "engine sizing must match baseline");
                if wall < best_wall {
                    best_wall = wall;
                    best_probe = probe;
                }
            }
            EngineRun {
                threads,
                wall_nanos: best_wall,
                ls_runs: best_probe.ls_runs,
                ls_runs_pruned: best_probe.ls_runs_pruned,
                par_tasks_dispatched: best_probe.par_tasks_dispatched,
                speedup_vs_baseline: baseline.wall_nanos as f64 / best_wall.max(1) as f64,
            }
        })
        .collect();

    Suite {
        workload: "minprocs_sizing",
        policy: policy_name(policy),
        items: tasks.len(),
        baseline,
        engine,
    }
}

/// Admission-fits suite: "does τ fit in the processors this platform has
/// left?" — the decision the admission server and every speed search ask.
/// With headroom available, the Graham upper-bound certificate settles
/// most queries with zero LS runs, while the baseline must sweep from the
/// lower bound to the first fitting candidate.
fn suite_admission_fits(tasks: &[DagTask], available: u32, policy: PriorityPolicy) -> Suite {
    let mut baseline_runs = 0u64;
    let start = Instant::now();
    let baseline_verdicts: Vec<bool> = tasks
        .iter()
        .map(|t| naive_min_procs(t, available, policy, &mut baseline_runs).is_some())
        .collect();
    let baseline = BaselineRun {
        wall_nanos: nanos_since(start),
        ls_runs: baseline_runs,
    };

    let engine = THREADS
        .iter()
        .map(|&threads| {
            let pool = Pool::new(threads);
            let mut probe = AnalysisProbe::default();
            let start = Instant::now();
            let verdicts: Vec<bool> = pool.install(|| {
                tasks
                    .iter()
                    .map(|t| min_procs_fits_probed(t, available, policy, &mut probe))
                    .collect()
            });
            let wall_nanos = nanos_since(start);
            assert_eq!(
                verdicts, baseline_verdicts,
                "engine verdicts must match baseline"
            );
            EngineRun {
                threads,
                wall_nanos,
                ls_runs: probe.ls_runs,
                ls_runs_pruned: probe.ls_runs_pruned,
                par_tasks_dispatched: probe.par_tasks_dispatched,
                speedup_vs_baseline: baseline.wall_nanos as f64 / wall_nanos.max(1) as f64,
            }
        })
        .collect();

    Suite {
        workload: "admission_fits",
        policy: policy_name(policy),
        items: tasks.len(),
        baseline,
        engine,
    }
}

/// Experiments suite: the E5 speed search verbatim — `required_speed`
/// binary-searches the smallest acceptable processor speed at exactly the
/// `⌈vol/D⌉` lower bound, issuing one acceptance probe per grid point.
/// The baseline probes with a full naive sizing; the engine probes with
/// the decision-only `min_procs_fits`.
fn suite_speed_search(tasks: &[DagTask], grid: u32) -> Suite {
    let policy = PriorityPolicy::ListOrder;
    let systems: Vec<(TaskSystem, u32)> = tasks
        .iter()
        .map(|t| {
            let m_lb = t.min_processors_lower_bound().max(1);
            ([t.clone()].into_iter().collect(), m_lb)
        })
        .collect();

    let baseline_runs = Cell::new(0u64);
    let start = Instant::now();
    let baseline_speeds: Vec<Option<f64>> = systems
        .iter()
        .map(|(system, m_lb)| {
            let accepts = |s: &TaskSystem| {
                let mut runs = baseline_runs.get();
                let fits = naive_min_procs(&s.tasks()[0], *m_lb, policy, &mut runs).is_some();
                baseline_runs.set(runs);
                fits
            };
            required_speed(system, accepts, grid, 3).map(|s| s.to_f64())
        })
        .collect();
    let baseline = BaselineRun {
        wall_nanos: nanos_since(start),
        ls_runs: baseline_runs.get(),
    };

    let engine = THREADS
        .iter()
        .map(|&threads| {
            let pool = Pool::new(threads);
            let probe = RefCell::new(AnalysisProbe::default());
            let start = Instant::now();
            let speeds: Vec<Option<f64>> = pool.install(|| {
                systems
                    .iter()
                    .map(|(system, m_lb)| {
                        let accepts = |s: &TaskSystem| {
                            min_procs_fits_probed(
                                &s.tasks()[0],
                                *m_lb,
                                policy,
                                &mut probe.borrow_mut(),
                            )
                        };
                        required_speed(system, accepts, grid, 3).map(|s| s.to_f64())
                    })
                    .collect()
            });
            let wall_nanos = nanos_since(start);
            assert_eq!(speeds, baseline_speeds, "engine speeds must match baseline");
            let probe = probe.into_inner();
            EngineRun {
                threads,
                wall_nanos,
                ls_runs: probe.ls_runs,
                ls_runs_pruned: probe.ls_runs_pruned,
                par_tasks_dispatched: probe.par_tasks_dispatched,
                speedup_vs_baseline: baseline.wall_nanos as f64 / wall_nanos.max(1) as f64,
            }
        })
        .collect();

    Suite {
        workload: "experiments_speed_search_e5",
        policy: policy_name(policy),
        items: tasks.len(),
        baseline,
        engine,
    }
}

/// Batch-FEDCONS suite: whole-system admission over many generated
/// systems, the experiments-harness shape.
fn suite_batch_fedcons(systems: &[TaskSystem], m: u32, policy: PriorityPolicy) -> Suite {
    let splits: Vec<SplitSystem> = systems.iter().cloned().map(SplitSystem::new).collect();
    let mut baseline_runs = 0u64;
    let start = Instant::now();
    let baseline_verdicts: Vec<bool> = splits
        .iter()
        .map(|s| naive_fedcons(s, m, policy, &mut baseline_runs))
        .collect();
    let baseline = BaselineRun {
        wall_nanos: nanos_since(start),
        ls_runs: baseline_runs,
    };

    let config = FedConsConfig {
        policy,
        ..FedConsConfig::default()
    };
    let engine = THREADS
        .iter()
        .map(|&threads| {
            let pool = Pool::new(threads);
            let mut probe = AnalysisProbe::default();
            let start = Instant::now();
            let verdicts: Vec<bool> = pool.install(|| {
                systems
                    .iter()
                    .map(|s| fedcons_probed(s, m, config, &mut probe).is_ok())
                    .collect()
            });
            let wall_nanos = nanos_since(start);
            assert_eq!(
                verdicts, baseline_verdicts,
                "engine verdicts must match baseline"
            );
            EngineRun {
                threads,
                wall_nanos,
                ls_runs: probe.ls_runs,
                ls_runs_pruned: probe.ls_runs_pruned,
                par_tasks_dispatched: probe.par_tasks_dispatched,
                speedup_vs_baseline: baseline.wall_nanos as f64 / wall_nanos.max(1) as f64,
            }
        })
        .collect();

    Suite {
        workload: "batch_fedcons",
        policy: policy_name(policy),
        items: systems.len(),
        baseline,
        engine,
    }
}

/// Raw kernel microbenchmark: `iters` warm passes over every task's DAG
/// at its processor lower bound, for the makespan-only and the
/// template-materialising entry points. Ranks are precomputed (the kernel
/// is what is under test) and one untimed pass warms the thread workspace
/// to its steady-state capacity, so the reported allocation counts are
/// the kernel's own: ~0 per makespan run, ~1 per template run.
fn suite_ls_kernel(tasks: &[DagTask], policy: PriorityPolicy, iters: u64) -> KernelSuite {
    let prepared: Vec<(&DagTask, Vec<u64>, u32)> = tasks
        .iter()
        .map(|t| {
            let ranks = policy.ranks(t.dag());
            let mu = t.min_processors_lower_bound().clamp(1, 64);
            (t, ranks, mu)
        })
        .collect();
    for (task, ranks, mu) in &prepared {
        let dag = task.dag();
        black_box(list_schedule_ranked(dag, *mu, ranks, dag.wcets()));
    }
    let runs = iters * prepared.len() as u64;

    let allocs_before = allocations();
    let start = Instant::now();
    for _ in 0..iters {
        for (task, ranks, mu) in &prepared {
            let dag = task.dag();
            black_box(list_makespan_ranked(dag, *mu, ranks, dag.wcets()));
        }
    }
    let makespan_path = KernelPath {
        path: "makespan",
        nanos_per_run: nanos_since(start) as f64 / runs as f64,
        allocs_per_run: (allocations() - allocs_before) as f64 / runs as f64,
    };

    let allocs_before = allocations();
    let start = Instant::now();
    for _ in 0..iters {
        for (task, ranks, mu) in &prepared {
            let dag = task.dag();
            black_box(list_schedule_ranked(dag, *mu, ranks, dag.wcets()));
        }
    }
    let template_path = KernelPath {
        path: "template",
        nanos_per_run: nanos_since(start) as f64 / runs as f64,
        allocs_per_run: (allocations() - allocs_before) as f64 / runs as f64,
    };

    KernelSuite {
        items: prepared.len(),
        iters_per_item: iters,
        paths: vec![makespan_path, template_path],
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_analysis.json");
    let mut gate_minprocs: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--gate-minprocs" => match args.next().map(|s| s.parse::<f64>()) {
                Some(Ok(ratio)) => gate_minprocs = Some(ratio),
                _ => {
                    eprintln!("--gate-minprocs needs a speedup ratio, e.g. 1.0");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (usage: analysis_bench [--quick] [--out FILE] [--gate-minprocs RATIO])"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let (n_tasks, n_systems) = if quick { (60, 30) } else { (300, 120) };
    // Tight deadlines: sizing sweeps several candidates per task.
    let tight_tasks = high_density_tasks(n_tasks, 0xF17, (0.05, 0.4));
    // E5's own distribution: deadline uniform across the whole [len, vol]
    // feasibility window.
    let e5_tasks = high_density_tasks(n_tasks, 0xE5, (0.0, 1.0));
    let systems = fedcons_systems(n_systems, 0xE3);

    let report = Report {
        quick,
        host_parallelism: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        suites: vec![
            suite_minprocs_sizing(&tight_tasks, PriorityPolicy::CriticalPathFirst),
            suite_admission_fits(&tight_tasks, 64, PriorityPolicy::CriticalPathFirst),
            suite_speed_search(&e5_tasks, if quick { 16 } else { 64 }),
            suite_batch_fedcons(&systems, 16, PriorityPolicy::CriticalPathFirst),
        ],
        ls_kernel: suite_ls_kernel(
            &tight_tasks,
            PriorityPolicy::CriticalPathFirst,
            if quick { 50 } else { 200 },
        ),
    };

    for suite in &report.suites {
        println!(
            "{} [{}] ({} items): baseline {:.1} ms / {} LS runs",
            suite.workload,
            suite.policy,
            suite.items,
            suite.baseline.wall_nanos as f64 / 1e6,
            suite.baseline.ls_runs,
        );
        for run in &suite.engine {
            println!(
                "  engine @{} threads: {:.1} ms / {} LS runs ({} pruned, {} dispatched) — {:.2}x",
                run.threads,
                run.wall_nanos as f64 / 1e6,
                run.ls_runs,
                run.ls_runs_pruned,
                run.par_tasks_dispatched,
                run.speedup_vs_baseline,
            );
        }
    }

    for path in &report.ls_kernel.paths {
        println!(
            "ls_kernel [{}] ({} items x {} iters): {:.0} ns/run, {:.3} allocs/run",
            path.path,
            report.ls_kernel.items,
            report.ls_kernel.iters_per_item,
            path.nanos_per_run,
            path.allocs_per_run,
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    // The gate runs after the report is written, so a failing run still
    // leaves the numbers on disk for inspection.
    if let Some(threshold) = gate_minprocs {
        let measured = report
            .suites
            .iter()
            .find(|s| s.workload == "minprocs_sizing")
            .and_then(|s| s.engine.iter().find(|run| run.threads == 1))
            .map(|run| run.speedup_vs_baseline)
            .expect("minprocs_sizing has a 1-thread engine run");
        if measured < threshold {
            eprintln!(
                "REGRESSION: minprocs_sizing 1-thread speedup {measured:.2}x \
                 is below the gate of {threshold:.2}x"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: minprocs_sizing 1-thread speedup {measured:.2}x >= {threshold:.2}x");
    }
    ExitCode::SUCCESS
}
