//! Parallel execution façade for the fedsched workspace.
//!
//! Every analysis hot path fans out through this crate instead of touching
//! the vendored `worksteal` pool directly, which buys three things:
//!
//! * **One global pool.** [`global`] builds the pool lazily on first use,
//!   sized from (in priority order) [`configure_threads`] — the CLI's
//!   `--threads` flag — the `FEDSCHED_THREADS` environment variable, and
//!   finally [`std::thread::available_parallelism`].
//! * **A sequential escape hatch.** A pool of width 1 spawns no threads and
//!   runs every work item inline, in submission order, on the calling
//!   thread. `FEDSCHED_THREADS=1` (or `--threads 1`) therefore reproduces
//!   the fully sequential execution exactly.
//! * **A determinism contract.** [`par_map`] preserves input order: the
//!   result vector is indexed exactly like the input slice regardless of
//!   which thread computed which element, and callers reduce over it in
//!   input order. Combined with pool-size-independent work accounting at
//!   the call sites, every analysis result, frozen σ template, and probe
//!   counter is byte-identical at any pool width (see
//!   `docs/PERFORMANCE.md`).
//!
//! Tests that need a specific width without disturbing the process-global
//! pool use [`Pool::new`] + [`Pool::install`], which scopes the pool to a
//! closure (and to every work item transitively spawned from it).

use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock};

use worksteal::ThreadPool;

/// A handle to a work-stealing pool of fixed width. Cheap to clone.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<ThreadPool>,
}

impl Pool {
    /// Builds a pool of the given width (clamped to at least 1). Width 1
    /// spawns no threads: everything submitted runs inline.
    #[must_use]
    pub fn new(width: usize) -> Pool {
        Pool {
            inner: Arc::new(ThreadPool::new(width)),
        }
    }

    /// The concurrency width of this pool (≥ 1).
    #[must_use]
    pub fn width(&self) -> usize {
        self.inner.width()
    }

    /// Runs `f` with this pool installed as the current pool of the calling
    /// thread: every [`par_map`] reached from inside `f` — including from
    /// work items this pool executes on its workers — uses this pool
    /// instead of the global one. The previous installation is restored on
    /// return.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = CURRENT.with(|c| c.replace(Some(self.clone())));
        let guard = RestoreCurrent { previous };
        let result = f();
        drop(guard);
        result
    }

    /// Applies `f` to every element of `items` — in parallel when both the
    /// pool and the input are wider than one — and returns the results *in
    /// input order*.
    ///
    /// # Panics
    ///
    /// If `f` panics on any element, the (first) panic is re-raised here
    /// after all work items have been joined.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.width() <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let f = &f;
        self.inner.scope(|scope| {
            for (slot, item) in slots.iter().zip(items) {
                let pool = self.clone();
                scope.spawn(move || {
                    // Re-install this pool on the worker so nested fan-outs
                    // (e.g. the MINPROCS wave inside a FEDCONS phase-1 item)
                    // stay on the pool the caller chose.
                    let value = pool.install(|| f(item));
                    *slot.lock().unwrap() = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("scope joined every work item")
            })
            .collect()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Pool>> = const { RefCell::new(None) };
}

struct RestoreCurrent {
    previous: Option<Pool>,
}

impl Drop for RestoreCurrent {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();
static REQUESTED: Mutex<Option<usize>> = Mutex::new(None);

/// Requests a width for the global pool. Effective only before the pool is
/// first used (the CLI calls this while parsing `--threads`, before any
/// analysis runs); returns `false` if the pool already exists, in which
/// case the request is ignored.
pub fn configure_threads(width: usize) -> bool {
    *REQUESTED.lock().unwrap() = Some(width.max(1));
    GLOBAL.get().is_none()
}

/// The process-global pool, built on first use. Width resolution order:
/// [`configure_threads`], then `FEDSCHED_THREADS` (values ≥ 1; `0`,
/// unparsable, or unset mean "auto"), then the machine's available
/// parallelism.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(resolve_width()))
}

fn resolve_width() -> usize {
    if let Some(width) = *REQUESTED.lock().unwrap() {
        return width;
    }
    if let Some(width) = env_threads() {
        return width;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    let raw = std::env::var("FEDSCHED_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(width) if width >= 1 => Some(width),
        _ => None, // 0 or garbage: fall through to auto
    }
}

/// The pool [`par_map`] would use right now: the innermost
/// [`Pool::install`] on this thread, or the global pool.
#[must_use]
pub fn current() -> Pool {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| global().clone())
}

/// The width of the [`current`] pool.
#[must_use]
pub fn width() -> usize {
    current().width()
}

/// [`Pool::par_map`] on the [`current`] pool: applies `f` to every element
/// and returns the results in input order.
///
/// # Panics
///
/// Re-raises the first panic of `f`, after joining all work items.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    current().par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for width in [1, 2, 8] {
            let pool = Pool::new(width);
            let items: Vec<u64> = (0..200).collect();
            let out = pool.par_map(&items, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "width {width}");
        }
    }

    #[test]
    fn par_map_on_empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn install_scopes_the_current_pool() {
        let one = Pool::new(1);
        let wide = Pool::new(4);
        one.install(|| {
            assert_eq!(width(), 1);
            wide.install(|| assert_eq!(width(), 4));
            assert_eq!(width(), 1, "outer installation restored");
        });
    }

    #[test]
    fn installed_pool_propagates_into_workers() {
        let pool = Pool::new(3);
        let items: Vec<u32> = (0..16).collect();
        let widths = pool.install(|| par_map(&items, |_| width()));
        assert!(
            widths.iter().all(|&w| w == 3),
            "nested fan-outs see the installed pool: {widths:?}"
        );
    }

    #[test]
    fn nested_par_map_results_are_deterministic() {
        let items: Vec<u64> = (0..12).collect();
        let expected: Vec<Vec<u64>> = items
            .iter()
            .map(|&i| (0..6).map(|j| i * 10 + j).collect())
            .collect();
        for width in [1, 2, 8] {
            let pool = Pool::new(width);
            let out = pool.install(|| {
                par_map(&items, |&i| {
                    let inner: Vec<u64> = (0..6).collect();
                    par_map(&inner, |&j| i * 10 + j)
                })
            });
            assert_eq!(out, expected, "width {width}");
        }
    }

    #[test]
    fn panics_propagate_through_par_map() {
        let pool = Pool::new(2);
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                assert!(x != 5, "boom at {x}");
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn global_pool_has_nonzero_width() {
        assert!(global().width() >= 1);
    }
}
