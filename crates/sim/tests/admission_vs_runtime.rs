//! The soundness contract between offline admission and the runtime:
//! every FEDCONS-admitted random system runs with zero deadline misses,
//! under worst-case and relaxed conditions alike — while the unsafe
//! re-run-LS dispatcher demonstrably misses on the anomaly instance.

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;
use fedsched_gen::DeadlineTightness;
use fedsched_graham::anomaly::classic_anomaly_dag;
use fedsched_graham::list::PriorityPolicy;
use fedsched_sim::federated::{simulate_federated, simulate_federated_traced, ClusterDispatch};
use fedsched_sim::model::{ArrivalModel, ExecutionModel, SimConfig};
use proptest::prelude::*;

fn random_system(seed: u64, n: usize, total_u: f64) -> Option<TaskSystem> {
    SystemConfig::new(n, total_u)
        .with_max_task_utilization(1.5)
        .with_tightness(DeadlineTightness::new(0.2, 1.0))
        .generate_seeded(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Admitted ⇒ clean under worst-case (periodic, WCET) conditions.
    #[test]
    fn admitted_systems_run_clean_worst_case(seed in 0u64..10_000, m in 2u32..=8) {
        let Some(system) = random_system(seed, 5, f64::from(m) * 0.5) else {
            return Ok(());
        };
        let Ok(schedule) = fedcons(&system, m, FedConsConfig::default()) else {
            return Ok(());
        };
        let horizon = Duration::new(
            system.hyperperiod().ticks().clamp(10_000, 200_000),
        );
        let report = simulate_federated(
            &system,
            &schedule,
            SimConfig::worst_case(horizon),
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        prop_assert!(report.is_clean(), "seed {seed}: {:?}", report.misses);
        prop_assert!(report.jobs_scored > 0);
    }

    /// Admitted ⇒ clean also under sporadic arrivals and early completions
    /// (sustainability of the federated runtime).
    #[test]
    fn admitted_systems_run_clean_relaxed(seed in 0u64..10_000, m in 2u32..=8) {
        let Some(system) = random_system(seed, 5, f64::from(m) * 0.5) else {
            return Ok(());
        };
        let Ok(schedule) = fedcons(&system, m, FedConsConfig::default()) else {
            return Ok(());
        };
        let config = SimConfig {
            horizon: Duration::new(50_000),
            arrivals: ArrivalModel::SporadicUniformSlack { max_extra_fraction: 0.5 },
            execution: ExecutionModel::UniformFraction { min_fraction: 0.25 },
            seed,
        };
        let report = simulate_federated(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        prop_assert!(report.is_clean(), "seed {seed}: {:?}", report.misses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// The execution trace of an admitted run is physically consistent: no
    /// processor ever runs two slices at once, and busy time is positive.
    #[test]
    fn traces_have_no_processor_overlap(seed in 0u64..10_000, m in 2u32..=6) {
        let Some(system) = random_system(seed, 5, f64::from(m) * 0.5) else {
            return Ok(());
        };
        let Ok(schedule) = fedcons(&system, m, FedConsConfig::default()) else {
            return Ok(());
        };
        let config = SimConfig {
            horizon: Duration::new(20_000),
            arrivals: ArrivalModel::SporadicUniformSlack { max_extra_fraction: 0.3 },
            execution: ExecutionModel::UniformFraction { min_fraction: 0.4 },
            seed,
        };
        let (report, trace) = simulate_federated_traced(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        prop_assert!(report.is_clean());
        prop_assert_eq!(trace.find_overlap(), None);
        prop_assert!(trace.total_busy() > Duration::ZERO);
        prop_assert_eq!(trace.processor_count(), m);
    }
}

/// The end-to-end anomaly demonstration (experiment E8): the exact system of
/// Graham \[11\], admitted by FEDCONS with `D = makespan = 12`, runs clean
/// forever under the template dispatcher — and misses deadlines under the
/// re-run-LS dispatcher as soon as execution times shrink by one tick.
#[test]
fn rerun_dispatcher_suffers_grahams_anomaly_but_template_does_not() {
    let task = DagTask::new(classic_anomaly_dag(), Duration::new(12), Duration::new(20))
        .expect("valid task");
    let system: TaskSystem = [task].into_iter().collect();
    let schedule = fedcons(&system, 3, FedConsConfig::default()).expect("admitted on 3");
    assert_eq!(schedule.clusters().len(), 1);
    assert_eq!(schedule.clusters()[0].processors, 3);
    assert_eq!(
        schedule.clusters()[0].template.makespan(),
        Duration::new(12)
    );

    let shorter = SimConfig {
        horizon: Duration::new(2_000),
        arrivals: ArrivalModel::Periodic,
        execution: ExecutionModel::OneTickShorter,
        seed: 0,
    };

    // Template replay: early completions only help.
    let safe = simulate_federated(
        &system,
        &schedule,
        shorter,
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    assert!(safe.jobs_scored >= 99);
    assert!(
        safe.is_clean(),
        "template dispatcher missed: {:?}",
        safe.misses
    );

    // Re-running LS with the shorter times: makespan 13 > D = 12 — every
    // single job misses.
    let unsafe_rerun = simulate_federated(
        &system,
        &schedule,
        shorter,
        ClusterDispatch::RerunListScheduling,
        PriorityPolicy::ListOrder,
    );
    assert_eq!(unsafe_rerun.jobs_on_time, 0);
    assert_eq!(unsafe_rerun.miss_count() as u64, unsafe_rerun.jobs_scored);
    assert_eq!(
        unsafe_rerun.max_lateness(),
        Some(Duration::new(1)),
        "the anomaly adds exactly one tick"
    );

    // With exact WCETs, re-running LS reproduces the template and is clean —
    // the danger is precisely the *reduction* of execution times.
    let exact = SimConfig::worst_case(Duration::new(2_000));
    let rerun_exact = simulate_federated(
        &system,
        &schedule,
        exact,
        ClusterDispatch::RerunListScheduling,
        PriorityPolicy::ListOrder,
    );
    assert!(rerun_exact.is_clean());
}
