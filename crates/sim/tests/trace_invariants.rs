//! Whole-run invariants of the federated runtime's execution traces and
//! the anomaly watchdog.
//!
//! The paper's soundness argument implies physical invariants any faithful
//! runtime must exhibit: no processor ever runs two things at once — in
//! particular not across the dedicated-cluster / shared-EDF boundary — and
//! the simulation is a pure function of its config (two identical runs
//! render byte-identical Gantt charts). The watchdog must stay quiet on an
//! admitted system under template dispatch and light up exactly when the
//! unsafe rerun dispatcher diverges from the frozen template.

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::graph::DagBuilder;
use fedsched_dag::system::{TaskId, TaskSystem};
use fedsched_dag::task::DagTask;
use fedsched_dag::time::{Duration, Time};
use fedsched_graham::list::PriorityPolicy;
use fedsched_sim::{
    simulate_edf_uniprocessor_watched, simulate_federated_traced, simulate_federated_watched,
    ArrivalModel, ClusterDispatch, ExecutionModel, SequentialJob, SimConfig,
};

fn parallel_task(k: usize, w: u64, d: u64, t: u64) -> DagTask {
    let mut b = DagBuilder::new();
    b.add_vertices(std::iter::repeat_n(Duration::new(w), k));
    DagTask::new(b.build().unwrap(), Duration::new(d), Duration::new(t)).unwrap()
}

fn seq(c: u64, d: u64, t: u64) -> DagTask {
    DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
}

/// One high-density task (gets a dedicated cluster) plus low-density tasks
/// (sequentialised onto the shared pool), admitted by FEDCONS.
fn mixed_system() -> (TaskSystem, fedsched_core::fedcons::FederatedSchedule) {
    let system: TaskSystem = [
        parallel_task(6, 4, 8, 16), // δ = 3: dedicated cluster
        seq(1, 4, 8),
        seq(2, 6, 12),
        seq(1, 5, 10),
    ]
    .into_iter()
    .collect();
    let schedule = fedcons(&system, 6, FedConsConfig::default()).unwrap();
    (system, schedule)
}

#[test]
fn no_overlap_within_or_across_the_cluster_shared_boundary() {
    let (system, schedule) = mixed_system();
    assert!(
        !schedule.clusters().is_empty(),
        "system must exercise the dedicated side"
    );
    let shared_first = schedule.shared_first();
    let config = SimConfig {
        horizon: Duration::new(5_000),
        arrivals: ArrivalModel::SporadicUniformSlack {
            max_extra_fraction: 0.3,
        },
        execution: ExecutionModel::UniformFraction { min_fraction: 0.3 },
        seed: 11,
    };
    let (report, trace) = simulate_federated_traced(
        &system,
        &schedule,
        config,
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    assert!(report.jobs_scored > 500, "scored {}", report.jobs_scored);
    assert_eq!(trace.find_overlap(), None, "processors double-booked");

    // The boundary is respected in both directions: dag-vertex segments
    // live strictly on cluster processors, sequentialised segments strictly
    // on shared ones — and both sides are actually exercised.
    let mut cluster_segments = 0u64;
    let mut shared_segments = 0u64;
    for s in trace.segments() {
        match s.vertex {
            Some(_) => {
                assert!(
                    s.processor < shared_first,
                    "cluster segment {s} strayed onto the shared pool"
                );
                cluster_segments += 1;
            }
            None => {
                assert!(
                    s.processor >= shared_first,
                    "shared segment {s} strayed onto a cluster"
                );
                shared_segments += 1;
            }
        }
    }
    assert!(cluster_segments > 0, "no cluster execution recorded");
    assert!(shared_segments > 0, "no shared-pool execution recorded");
}

#[test]
fn identical_runs_render_byte_identical_gantt_charts() {
    let (system, schedule) = mixed_system();
    let config = SimConfig {
        horizon: Duration::new(2_000),
        arrivals: ArrivalModel::SporadicUniformSlack {
            max_extra_fraction: 0.4,
        },
        execution: ExecutionModel::UniformFraction { min_fraction: 0.2 },
        seed: 42,
    };
    let run = || {
        simulate_federated_traced(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        )
    };
    let (report_a, trace_a) = run();
    let (report_b, trace_b) = run();
    assert_eq!(report_a, report_b);
    assert_eq!(trace_a, trace_b);
    let gantt_a = trace_a.to_gantt(Time::ZERO, Time::new(240));
    let gantt_b = trace_b.to_gantt(Time::ZERO, Time::new(240));
    assert!(gantt_a.as_bytes() == gantt_b.as_bytes(), "gantt diverged");
    assert!(gantt_a.lines().count() > 1);
}

#[test]
fn watchdog_is_quiet_for_template_dispatch_on_an_admitted_system() {
    let (system, schedule) = mixed_system();
    let (report, _, watchdog) = simulate_federated_watched(
        &system,
        &schedule,
        SimConfig::worst_case(Duration::new(5_000)),
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    assert!(report.is_clean(), "misses: {:?}", report.misses);
    assert!(watchdog.is_quiet(), "watchdog fired: {watchdog}");
}

#[test]
fn rerun_dispatch_diverges_from_the_template_but_template_dispatch_never_does() {
    let (system, schedule) = mixed_system();
    // Deterministic Graham perturbation: every vertex one tick shorter.
    // Re-running LS then starts the second wave of the parallel task at
    // t = 3 instead of the frozen template offset t = 4.
    let config = SimConfig {
        horizon: Duration::new(1_000),
        arrivals: ArrivalModel::Periodic,
        execution: ExecutionModel::OneTickShorter,
        seed: 0,
    };
    let (report, _, rerun_watchdog) = simulate_federated_watched(
        &system,
        &schedule,
        config,
        ClusterDispatch::RerunListScheduling,
        PriorityPolicy::ListOrder,
    );
    assert!(
        rerun_watchdog.template_divergences > 0,
        "rerun LS under shortened executions must leave the template: {rerun_watchdog}"
    );
    assert_eq!(
        rerun_watchdog.deadline_misses,
        report.misses.len() as u64,
        "watchdog misses must mirror the report"
    );

    let (_, _, template_watchdog) = simulate_federated_watched(
        &system,
        &schedule,
        config,
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    assert_eq!(
        template_watchdog.template_divergences, 0,
        "template replay cannot diverge from itself: {template_watchdog}"
    );
}

#[test]
fn shared_edf_overload_certificate_fires_exactly_when_demand_exceeds_time() {
    let job = |task: usize, release: u64, deadline: u64, exec: u64| SequentialJob {
        task: TaskId::from_index(task),
        release: Time::new(release),
        deadline: Time::new(deadline),
        execution: Duration::new(exec),
    };
    // Infeasible: 6 units of work due by t = 4. The certificate fires at
    // the arrival instant, not when the miss materialises at t = 6.
    let overloaded = [job(0, 0, 4, 3), job(1, 0, 4, 3)];
    let (report, _, overloads) =
        simulate_edf_uniprocessor_watched(&overloaded, Duration::new(100), 0);
    assert!(overloads >= 1, "overload not detected");
    assert_eq!(report.miss_count(), 1);

    // Feasible set under transient back-to-back load: never flagged.
    let feasible = [job(0, 0, 10, 4), job(1, 2, 12, 4), job(0, 10, 25, 5)];
    let (report, _, overloads) =
        simulate_edf_uniprocessor_watched(&feasible, Duration::new(100), 0);
    assert_eq!(overloads, 0, "false positive on a feasible job set");
    assert!(report.is_clean());
}
