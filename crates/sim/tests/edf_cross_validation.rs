//! The sharpest cross-check in the workspace: the *exact* analytical EDF
//! test (processor demand criterion) versus the *simulated* EDF runtime
//! must agree in both directions on synchronous periodic workloads.
//!
//! * Analysis says **schedulable** ⇒ the simulation never misses (over any
//!   horizon: EDF optimality + the demand bound).
//! * Analysis says **unschedulable** with witness `w` ⇒ the synchronous
//!   periodic simulation misses some deadline at or before `w` (the demand
//!   in `[0, w]` exceeds `w`, so no scheduler — EDF included — can clear it).

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::edf::{edf_exact, EdfVerdict, DEFAULT_BUDGET};
use fedsched_dag::system::TaskId;
use fedsched_dag::time::{Duration, Time};
use fedsched_sim::uniproc::{simulate_edf_uniprocessor, SequentialJob};
use proptest::prelude::*;

fn arb_view() -> impl Strategy<Value = SequentialView> {
    (2u64..=30).prop_flat_map(|t| {
        (1u64..=t, Just(t)).prop_flat_map(|(c, t)| {
            (c..=t).prop_map(move |d| {
                SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
            })
        })
    })
}

/// Synchronous periodic jobs of every task, releases in `[0, horizon)`.
fn synchronous_jobs(views: &[SequentialView], horizon: Duration) -> Vec<SequentialJob> {
    let mut jobs = Vec::new();
    for (i, v) in views.iter().enumerate() {
        let mut release = Time::ZERO;
        while release.ticks() < horizon.ticks() {
            jobs.push(SequentialJob {
                task: TaskId::from_index(i),
                release,
                deadline: release + v.deadline,
                execution: v.wcet,
            });
            release += v.period;
        }
    }
    jobs
}

fn hyperperiod(views: &[SequentialView]) -> u64 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    views
        .iter()
        .fold(1u64, |l, v| l / gcd(l, v.period.ticks()) * v.period.ticks())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both directions of the agreement, on random constrained-deadline
    /// sets small enough to simulate a full hyperperiod.
    #[test]
    fn exact_edf_test_agrees_with_simulation(
        views in prop::collection::vec(arb_view(), 1..=4),
    ) {
        let hp = hyperperiod(&views);
        prop_assume!(hp <= 500_000);
        let d_max = views.iter().map(|v| v.deadline.ticks()).max().unwrap();

        match edf_exact(&views, DEFAULT_BUDGET).unwrap() {
            EdfVerdict::Schedulable => {
                // Simulate two hyperperiods (+slack): must be clean.
                let horizon = Duration::new(2 * hp + d_max);
                let jobs = synchronous_jobs(&views, horizon);
                let report = simulate_edf_uniprocessor(&jobs, horizon);
                prop_assert!(
                    report.is_clean(),
                    "analysis said schedulable but simulation missed: {:?}",
                    report.misses
                );
                prop_assert!(report.jobs_scored > 0);
            }
            EdfVerdict::Unschedulable { witness } => {
                // Simulate past the witness: a miss must surface by then.
                let horizon = Duration::new(witness.ticks() + d_max + 1);
                let jobs = synchronous_jobs(&views, horizon);
                let report = simulate_edf_uniprocessor(&jobs, horizon);
                let earliest_miss = report
                    .misses
                    .iter()
                    .map(|m| m.deadline)
                    .min()
                    .expect("analysis found demand overload; the run must miss");
                prop_assert!(
                    earliest_miss.ticks() <= witness.ticks(),
                    "first miss at {earliest_miss} but witness was {witness}"
                );
            }
        }
    }

    /// The verdict is sustainable: a schedulable set stays clean when
    /// execution times shrink (simulated with 60% executions).
    #[test]
    fn schedulable_sets_survive_shorter_executions(
        views in prop::collection::vec(arb_view(), 1..=4),
    ) {
        let hp = hyperperiod(&views);
        prop_assume!(hp <= 300_000);
        prop_assume!(edf_exact(&views, DEFAULT_BUDGET).unwrap().is_schedulable());
        let horizon = Duration::new(hp + 64);
        let mut jobs = synchronous_jobs(&views, horizon);
        for j in &mut jobs {
            j.execution = Duration::new((j.execution.ticks() * 3 / 5).max(1));
        }
        let report = simulate_edf_uniprocessor(&jobs, horizon);
        prop_assert!(report.is_clean());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The Spuri response-time bounds dominate every response time the
    /// simulator ever observes over two hyperperiods of the synchronous
    /// pattern — and the bound-based verdict matches the exact test.
    #[test]
    fn response_time_bounds_dominate_simulation(
        views in prop::collection::vec(arb_view(), 1..=4),
    ) {
        use fedsched_analysis::response_time::edf_response_times;
        use fedsched_sim::uniproc::simulate_edf_uniprocessor_with_completions;

        let hp = hyperperiod(&views);
        prop_assume!(hp <= 300_000);
        let Ok(bounds) = edf_response_times(&views, 5_000_000) else {
            // U > 1: nothing to validate (no finite bounds exist).
            return Ok(());
        };

        // Verdict agreement with the exact processor-demand test.
        let exact = edf_exact(&views, DEFAULT_BUDGET).unwrap().is_schedulable();
        prop_assert_eq!(
            bounds.all_within_deadlines(&views),
            exact,
            "WCRT verdict disagrees with exact EDF test"
        );

        // Observed response times never exceed the bounds.
        let d_max = views.iter().map(|v| v.deadline.ticks()).max().unwrap();
        let horizon = Duration::new(2 * hp + d_max);
        let jobs = synchronous_jobs(&views, horizon);
        let (_, completions) = simulate_edf_uniprocessor_with_completions(&jobs, horizon);
        for (job, completion) in jobs.iter().zip(&completions) {
            let completion = completion.expect("every job completes");
            let observed = completion - job.release;
            let bound = bounds.of(job.task.index());
            prop_assert!(
                observed <= bound,
                "task {} released {}: observed response {} exceeds bound {}",
                job.task,
                job.release,
                observed,
                bound
            );
        }
    }
}
