//! Discrete-event run-time simulator for federated and global scheduling of
//! sporadic DAG task systems.
//!
//! The admission analyses of `fedsched-core` are offline guarantees; this
//! crate provides the run-time system that cashes them in, as an exact
//! integer-tick discrete-event simulation:
//!
//! * [`model`] — arrival processes, execution-time variation, reports;
//! * [`uniproc`] — preemptive uniprocessor EDF (the shared-pool runtime);
//! * [`federated`] — the full federated runtime: template replay on
//!   dedicated clusters + EDF on the shared pool, plus the deliberately
//!   unsafe "re-run LS on-line" dispatcher used to demonstrate Graham's
//!   anomaly (paper footnote 2);
//! * [`global_edf`] — vertex-level global EDF, the comparison runtime;
//! * [`watchdog`] — the runtime anomaly watchdog: deadline misses,
//!   template divergence, and provable shared-EDF overload, tallied by the
//!   `_watched` simulation entry points.
//!
//! # Examples
//!
//! Admit a system with FEDCONS, then watch it run clean:
//!
//! ```
//! use fedsched_core::fedcons::{fedcons, FedConsConfig};
//! use fedsched_dag::system::TaskSystem;
//! use fedsched_dag::task::DagTask;
//! use fedsched_dag::time::Duration;
//! use fedsched_graham::list::PriorityPolicy;
//! use fedsched_sim::federated::{simulate_federated, ClusterDispatch};
//! use fedsched_sim::model::SimConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system: TaskSystem = [
//!     DagTask::sequential(Duration::new(2), Duration::new(5), Duration::new(10))?,
//!     DagTask::sequential(Duration::new(3), Duration::new(8), Duration::new(12))?,
//! ]
//! .into_iter()
//! .collect();
//! let schedule = fedcons(&system, 1, FedConsConfig::default())?;
//! let report = simulate_federated(
//!     &system,
//!     &schedule,
//!     SimConfig::worst_case(Duration::new(10_000)),
//!     ClusterDispatch::Template,
//!     PriorityPolicy::ListOrder,
//! );
//! assert!(report.is_clean());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod federated;
pub mod global_edf;
pub mod model;
pub mod trace;
pub mod uniproc;
pub mod watchdog;

pub use federated::{
    simulate_federated, simulate_federated_runs, simulate_federated_traced,
    simulate_federated_watched, ClusterDispatch,
};
pub use global_edf::simulate_global_edf;
pub use model::{ArrivalModel, ExecutionModel, MissRecord, SimConfig, SimReport};
pub use trace::{ExecutionTrace, TraceSegment};
pub use uniproc::{
    simulate_edf_uniprocessor, simulate_edf_uniprocessor_traced, simulate_edf_uniprocessor_watched,
    simulate_edf_uniprocessor_with_completions, SequentialJob,
};
pub use watchdog::WatchdogReport;
