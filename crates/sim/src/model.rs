//! Simulation configuration and reporting types.

use core::fmt;

use fedsched_dag::system::TaskId;
use fedsched_dag::time::{Duration, Time};
use rand::Rng;

/// How dag-job releases are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Strictly periodic: releases at `0, T, 2T, …` — the densest legal
    /// sporadic pattern and the worst case for demand.
    Periodic,
    /// Sporadic with uniform extra separation: each inter-arrival is
    /// `T + U(0, max_extra_fraction · T)`.
    SporadicUniformSlack {
        /// Maximum extra separation as a fraction of the period.
        max_extra_fraction: f64,
    },
}

impl ArrivalModel {
    /// Release instants within `[0, horizon)` for a task of period
    /// `period`.
    pub fn releases<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        period: Duration,
        horizon: Duration,
    ) -> Vec<Time> {
        let mut out = Vec::new();
        let mut t = Time::ZERO;
        while t.ticks() < horizon.ticks() {
            out.push(t);
            let gap = match *self {
                ArrivalModel::Periodic => period,
                ArrivalModel::SporadicUniformSlack { max_extra_fraction } => {
                    let extra = (period.ticks() as f64 * rng.gen_range(0.0..=max_extra_fraction))
                        .round() as u64;
                    period + Duration::new(extra)
                }
            };
            match t.checked_add(gap) {
                Some(next) => t = next,
                None => break,
            }
        }
        out
    }
}

/// How actual vertex execution times relate to WCETs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionModel {
    /// Every vertex runs for exactly its WCET.
    Wcet,
    /// Each vertex runs for `max(1, round(wcet · U(min_fraction, 1)))` —
    /// early completions, never overruns.
    UniformFraction {
        /// Lower bound of the execution-time fraction, in `(0, 1]`.
        min_fraction: f64,
    },
    /// Every vertex runs for `max(1, wcet − 1)` — the deterministic
    /// "all times reduced by one" perturbation of Graham's classic anomaly
    /// instance \[11\], used by experiment E8.
    OneTickShorter,
}

impl ExecutionModel {
    /// Samples an actual execution time for a vertex of the given WCET.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, wcet: Duration) -> Duration {
        match *self {
            ExecutionModel::Wcet => wcet,
            ExecutionModel::UniformFraction { min_fraction } => {
                let f = rng.gen_range(min_fraction..=1.0);
                Duration::new(
                    ((wcet.ticks() as f64 * f).round() as u64)
                        .max(1)
                        .min(wcet.ticks()),
                )
            }
            ExecutionModel::OneTickShorter => Duration::new(wcet.ticks().saturating_sub(1).max(1)),
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Simulate releases within `[0, horizon)`; only jobs whose absolute
    /// deadline is at or before the horizon are scored, so truncation never
    /// fabricates misses.
    pub horizon: Duration,
    /// Release pattern.
    pub arrivals: ArrivalModel,
    /// Execution-time variation.
    pub execution: ExecutionModel,
    /// RNG seed; every run is deterministic given the config.
    pub seed: u64,
}

impl SimConfig {
    /// A periodic, WCET-exact run over the given horizon — the worst-case
    /// pattern the admission tests guard against.
    #[must_use]
    pub fn worst_case(horizon: Duration) -> SimConfig {
        SimConfig {
            horizon,
            arrivals: ArrivalModel::Periodic,
            execution: ExecutionModel::Wcet,
            seed: 0,
        }
    }
}

/// One missed deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRecord {
    /// The task whose dag-job missed.
    pub task: TaskId,
    /// Release instant of the dag-job.
    pub release: Time,
    /// Its absolute deadline.
    pub deadline: Time,
    /// When it actually completed.
    pub completion: Time,
}

impl MissRecord {
    /// How late the job was.
    #[must_use]
    pub fn lateness(&self) -> Duration {
        self.completion.saturating_since(self.deadline)
    }
}

impl fmt::Display for MissRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} released {} missed deadline {} (completed {}, late by {})",
            self.task,
            self.release,
            self.deadline,
            self.completion,
            self.lateness()
        )
    }
}

/// Aggregate outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimReport {
    /// Dag-jobs whose deadline fell within the horizon (the scored ones).
    pub jobs_scored: u64,
    /// Scored dag-jobs that completed by their deadline.
    pub jobs_on_time: u64,
    /// Every scored deadline miss, in completion order.
    pub misses: Vec<MissRecord>,
}

impl SimReport {
    /// `true` if no scored job missed its deadline.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.misses.is_empty()
    }

    /// Number of missed deadlines.
    #[must_use]
    pub fn miss_count(&self) -> usize {
        self.misses.len()
    }

    /// The largest lateness observed, if any job missed.
    #[must_use]
    pub fn max_lateness(&self) -> Option<Duration> {
        self.misses.iter().map(MissRecord::lateness).max()
    }

    /// Merges another report into this one.
    pub fn absorb(&mut self, other: SimReport) {
        self.jobs_scored += other.jobs_scored;
        self.jobs_on_time += other.jobs_on_time;
        self.misses.extend(other.misses);
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs scored, {} on time, {} misses",
            self.jobs_scored,
            self.jobs_on_time,
            self.miss_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn periodic_releases_are_multiples_of_period() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = ArrivalModel::Periodic.releases(&mut rng, Duration::new(10), Duration::new(35));
        assert_eq!(
            r,
            vec![Time::new(0), Time::new(10), Time::new(20), Time::new(30)]
        );
    }

    #[test]
    fn sporadic_releases_respect_minimum_separation() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ArrivalModel::SporadicUniformSlack {
            max_extra_fraction: 0.5,
        };
        let r = model.releases(&mut rng, Duration::new(10), Duration::new(1000));
        for w in r.windows(2) {
            let gap = w[1] - w[0];
            assert!(gap >= Duration::new(10));
            assert!(gap <= Duration::new(15));
        }
        assert!(r.len() >= 60); // mean gap ≤ 12.5 ⇒ at least ~80 releases
    }

    #[test]
    fn execution_models_never_exceed_wcet_and_stay_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            ExecutionModel::Wcet.sample(&mut rng, Duration::new(9)),
            Duration::new(9)
        );
        let m = ExecutionModel::UniformFraction { min_fraction: 0.3 };
        for _ in 0..500 {
            let s = m.sample(&mut rng, Duration::new(10));
            assert!(s >= Duration::new(1));
            assert!(s <= Duration::new(10));
        }
        // WCET 1 cannot shrink.
        assert_eq!(m.sample(&mut rng, Duration::new(1)), Duration::new(1));
    }

    #[test]
    fn report_aggregation() {
        let mut a = SimReport {
            jobs_scored: 3,
            jobs_on_time: 3,
            misses: vec![],
        };
        let miss = MissRecord {
            task: TaskId::from_index(1),
            release: Time::new(0),
            deadline: Time::new(5),
            completion: Time::new(8),
        };
        let b = SimReport {
            jobs_scored: 2,
            jobs_on_time: 1,
            misses: vec![miss],
        };
        a.absorb(b);
        assert_eq!(a.jobs_scored, 5);
        assert!(!a.is_clean());
        assert_eq!(a.max_lateness(), Some(Duration::new(3)));
        assert_eq!(miss.lateness(), Duration::new(3));
        assert!(miss.to_string().contains("late by 3"));
        assert!(a.to_string().contains("5 jobs scored"));
    }
}
