//! Event-driven preemptive EDF on a single processor.
//!
//! Each shared processor of a federated schedule runs preemptive
//! uniprocessor EDF over the sequentialised low-density tasks assigned to it
//! (paper Section IV). The engine here is an exact event-driven simulation:
//! between events (job arrival or completion) the pending job with the
//! earliest absolute deadline runs; arrivals preempt instantly when they
//! carry an earlier deadline.

use core::cmp::Reverse;
use std::collections::BinaryHeap;

use fedsched_dag::system::TaskId;
use fedsched_dag::time::{Duration, Time};

use crate::model::{MissRecord, SimReport};
use crate::trace::TraceSegment;

/// One sequential job released to a uniprocessor EDF queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialJob {
    /// Originating task (for reporting).
    pub task: TaskId,
    /// Release instant.
    pub release: Time,
    /// Absolute deadline.
    pub deadline: Time,
    /// Actual execution demand (≤ the task's WCET/volume).
    pub execution: Duration,
}

/// Simulates preemptive EDF over the given jobs on one processor, scoring
/// every job whose deadline is at or before `horizon`.
///
/// Jobs may be supplied in any order. Ties on deadline break by release,
/// task id and then input order (deterministic).
///
/// Completions after `horizon` are still tracked so that a job with
/// deadline inside the horizon that would finish late is correctly reported
/// as a miss rather than silently dropped.
#[must_use]
pub fn simulate_edf_uniprocessor(jobs: &[SequentialJob], horizon: Duration) -> SimReport {
    run_edf(jobs, horizon, |_, _, _, _| {}, None)
}

/// Like [`simulate_edf_uniprocessor`], additionally recording every
/// execution slice as a [`TraceSegment`] on global processor `processor`.
#[must_use]
pub fn simulate_edf_uniprocessor_traced(
    jobs: &[SequentialJob],
    horizon: Duration,
    processor: u32,
) -> (SimReport, Vec<TraceSegment>) {
    let mut segments = Vec::new();
    let report = run_edf(
        jobs,
        horizon,
        |_, job, from, to| {
            segments.push(TraceSegment {
                processor,
                task: job.task,
                vertex: None,
                start: from,
                end: to,
            });
        },
        None,
    );
    (report, segments)
}

/// Like [`simulate_edf_uniprocessor_traced`], additionally counting
/// *overload instants*: events at which, right after admitting arrivals,
/// some pending absolute deadline `d` had more remaining demand from jobs
/// due at or before `d` than the `d − now` time left — a certificate that
/// EDF (optimal on one processor) cannot meet `d`, detected the moment the
/// overload materialises rather than when the miss occurs.
#[must_use]
pub fn simulate_edf_uniprocessor_watched(
    jobs: &[SequentialJob],
    horizon: Duration,
    processor: u32,
) -> (SimReport, Vec<TraceSegment>, u64) {
    let mut segments = Vec::new();
    let mut overloads = 0u64;
    let report = run_edf(
        jobs,
        horizon,
        |_, job, from, to| {
            segments.push(TraceSegment {
                processor,
                task: job.task,
                vertex: None,
                start: from,
                end: to,
            });
        },
        Some(&mut overloads),
    );
    (report, segments, overloads)
}

/// Like [`simulate_edf_uniprocessor`], additionally returning the
/// completion instant of every input job (`None` if it never ran to
/// completion, which cannot happen for finite job lists — every job
/// eventually completes — but keeps the API total).
///
/// Useful for measuring *response times*: `completion − release`, compared
/// against analytical bounds in the cross-validation tests.
#[must_use]
pub fn simulate_edf_uniprocessor_with_completions(
    jobs: &[SequentialJob],
    horizon: Duration,
) -> (SimReport, Vec<Option<Time>>) {
    let mut completions: Vec<Option<Time>> = vec![None; jobs.len()];
    // The end of a job's latest slice is its completion once the run ends.
    let report = run_edf(
        jobs,
        horizon,
        |idx, _, _, to| {
            completions[idx] = Some(to);
        },
        None,
    );
    (report, completions)
}

/// The EDF engine, parameterised over a slice observer invoked for every
/// contiguous run of a job, and an optional overload counter bumped at
/// every arrival-admission instant where pending demand provably exceeds
/// the time left to some deadline (see
/// [`simulate_edf_uniprocessor_watched`]).
fn run_edf(
    jobs: &[SequentialJob],
    horizon: Duration,
    mut on_slice: impl FnMut(usize, &SequentialJob, Time, Time),
    mut overloads: Option<&mut u64>,
) -> SimReport {
    // Arrival-ordered queue.
    let mut arrivals: Vec<(usize, &SequentialJob)> = jobs.iter().enumerate().collect();
    arrivals.sort_by_key(|(i, j)| (j.release, j.deadline, j.task, *i));
    let mut next_arrival = 0usize;

    // Ready jobs: min-heap keyed by (deadline, release, task, input index).
    type Key = (u64, u64, u32, usize);
    let mut ready: BinaryHeap<Reverse<(Key, u64)>> = BinaryHeap::new(); // value: remaining
    let push_key = |j: &SequentialJob, i: usize| {
        (
            j.deadline.ticks(),
            j.release.ticks(),
            j.task.index() as u32,
            i,
        )
    };

    let mut now = Time::ZERO;
    let mut report = SimReport::default();
    let score = |job: &SequentialJob, completion: Time, report: &mut SimReport| {
        if job.deadline.ticks() <= horizon.ticks() {
            report.jobs_scored += 1;
            if completion <= job.deadline {
                report.jobs_on_time += 1;
            } else {
                report.misses.push(MissRecord {
                    task: job.task,
                    release: job.release,
                    deadline: job.deadline,
                    completion,
                });
            }
        }
    };

    loop {
        // Admit everything that has arrived by `now`.
        let mut admitted_any = false;
        while next_arrival < arrivals.len() && arrivals[next_arrival].1.release <= now {
            let (i, j) = arrivals[next_arrival];
            ready.push(Reverse((push_key(j, i), j.execution.ticks())));
            next_arrival += 1;
            admitted_any = true;
        }
        if admitted_any {
            if let Some(counter) = overloads.as_deref_mut() {
                // Demand check over the pending set (every unfinished job
                // sits in `ready` here): sorted by deadline, if the
                // cumulative remaining demand through deadline `d` exceeds
                // `d − now`, EDF provably misses `d`.
                let mut pending: Vec<(u64, u64)> = ready
                    .iter()
                    .map(|Reverse((key, rem))| (key.0, *rem))
                    .collect();
                pending.sort_unstable();
                let mut cumulative = 0u64;
                if pending.iter().any(|&(deadline, rem)| {
                    cumulative = cumulative.saturating_add(rem);
                    now.ticks().saturating_add(cumulative) > deadline
                }) {
                    *counter = counter.saturating_add(1);
                }
            }
        }
        let Some(Reverse((key, remaining))) = ready.pop() else {
            // Idle: jump to the next arrival or finish.
            match arrivals.get(next_arrival) {
                Some((_, j)) => {
                    now = j.release;
                    continue;
                }
                None => break,
            }
        };
        let job = &jobs[key.3];
        // Run until completion or the next arrival, whichever is first.
        let completion_at = now + Duration::new(remaining);
        let next_at = arrivals
            .get(next_arrival)
            .map(|(_, j)| j.release)
            .unwrap_or(Time::MAX);
        if completion_at <= next_at {
            on_slice(key.3, job, now, completion_at);
            now = completion_at;
            score(job, now, &mut report);
        } else {
            let ran = next_at - now;
            on_slice(key.3, job, now, next_at);
            ready.push(Reverse((key, remaining - ran.ticks())));
            now = next_at;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(task: usize, release: u64, deadline: u64, exec: u64) -> SequentialJob {
        SequentialJob {
            task: TaskId::from_index(task),
            release: Time::new(release),
            deadline: Time::new(deadline),
            execution: Duration::new(exec),
        }
    }

    #[test]
    fn single_job_on_time() {
        let r = simulate_edf_uniprocessor(&[job(0, 0, 5, 3)], Duration::new(100));
        assert_eq!(r.jobs_scored, 1);
        assert!(r.is_clean());
    }

    #[test]
    fn single_job_too_long_misses() {
        let r = simulate_edf_uniprocessor(&[job(0, 0, 5, 6)], Duration::new(100));
        assert_eq!(r.miss_count(), 1);
        assert_eq!(r.misses[0].completion, Time::new(6));
    }

    #[test]
    fn edf_orders_by_deadline() {
        // Job B arrives later but has the earlier deadline: it must preempt.
        let jobs = [job(0, 0, 20, 10), job(1, 2, 6, 3)];
        let r = simulate_edf_uniprocessor(&jobs, Duration::new(100));
        assert!(r.is_clean(), "{r}");
        // A: runs 0–2, preempted, resumes 5–13 (≤ 20); B: 2–5 (≤ 6).
        assert_eq!(r.jobs_scored, 2);
    }

    #[test]
    fn non_preemptive_order_would_miss_but_edf_does_not() {
        // Classic: long job first, short urgent job arrives during it.
        let jobs = [job(0, 0, 100, 50), job(1, 1, 4, 2)];
        let r = simulate_edf_uniprocessor(&jobs, Duration::new(200));
        assert!(r.is_clean());
    }

    #[test]
    fn overload_misses_latest_deadline_first_job() {
        // Two jobs due at 4 with total work 6: one must miss.
        let jobs = [job(0, 0, 4, 3), job(1, 0, 4, 3)];
        let r = simulate_edf_uniprocessor(&jobs, Duration::new(100));
        assert_eq!(r.jobs_scored, 2);
        assert_eq!(r.miss_count(), 1);
        assert_eq!(r.misses[0].completion, Time::new(6));
    }

    #[test]
    fn horizon_scores_only_contained_deadlines() {
        let jobs = [job(0, 0, 5, 1), job(0, 90, 150, 1)];
        let r = simulate_edf_uniprocessor(&jobs, Duration::new(100));
        assert_eq!(r.jobs_scored, 1);
    }

    #[test]
    fn miss_with_deadline_inside_horizon_counts_even_if_completion_outside() {
        let jobs = [job(0, 0, 90, 120)];
        let r = simulate_edf_uniprocessor(&jobs, Duration::new(100));
        assert_eq!(r.jobs_scored, 1);
        assert_eq!(r.miss_count(), 1);
        assert_eq!(r.misses[0].completion, Time::new(120));
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let jobs = [job(0, 0, 5, 1), job(0, 50, 55, 1)];
        let r = simulate_edf_uniprocessor(&jobs, Duration::new(100));
        assert_eq!(r.jobs_scored, 2);
        assert!(r.is_clean());
    }

    #[test]
    fn deterministic_tie_breaking() {
        let jobs = [job(1, 0, 10, 2), job(0, 0, 10, 2)];
        let a = simulate_edf_uniprocessor(&jobs, Duration::new(50));
        let b = simulate_edf_uniprocessor(&jobs, Duration::new(50));
        assert_eq!(a, b);
        assert!(a.is_clean());
    }

    #[test]
    fn empty_job_list() {
        let r = simulate_edf_uniprocessor(&[], Duration::new(10));
        assert_eq!(r.jobs_scored, 0);
        assert!(r.is_clean());
    }
}
