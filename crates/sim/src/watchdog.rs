//! The runtime anomaly watchdog: counters for the three ways a federated
//! runtime deviates from what its offline analysis promised.
//!
//! FEDCONS's soundness argument has three load-bearing runtime premises:
//! dag-jobs complete by their deadlines, dedicated clusters actually follow
//! the frozen LS template `σᵢ` (re-running LS on-line is exposed to
//! Graham's timing anomalies, paper footnote 2), and no shared EDF
//! processor is ever asked for more work than the time remaining to a
//! deadline. The watched simulation entry points
//! ([`simulate_federated_watched`](crate::federated::simulate_federated_watched),
//! [`simulate_edf_uniprocessor_watched`](crate::uniproc::simulate_edf_uniprocessor_watched))
//! observe all three while the run unfolds and tally violations here.
//! The report is plain counters — the telemetry layer
//! (`fedsched-telemetry`) turns it into counter events for export.

use core::fmt;

/// Anomaly counters accumulated over one watched simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Jobs (dag-jobs on clusters, sequential jobs on shared processors)
    /// that completed after their absolute deadline.
    pub deadline_misses: u64,
    /// Vertices whose observed on-line start diverged from the frozen
    /// template offset `σᵢ` — nonzero only under
    /// [`ClusterDispatch::RerunListScheduling`](crate::federated::ClusterDispatch),
    /// where it measures exposure to Graham's timing anomalies.
    pub template_divergences: u64,
    /// Instants at which a shared EDF processor was provably overloaded:
    /// right after admitting arrivals, some absolute deadline `d` had more
    /// pending demand from jobs due at or before `d` than the `d − now`
    /// time left to serve it.
    pub shared_overloads: u64,
}

impl WatchdogReport {
    /// A zeroed report.
    #[must_use]
    pub fn new() -> WatchdogReport {
        WatchdogReport::default()
    }

    /// `true` when the run matched its offline promises: no misses, no
    /// template divergence, no overload instants.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        *self == WatchdogReport::default()
    }

    /// Adds every counter of `other` into `self` (saturating).
    pub fn absorb(&mut self, other: WatchdogReport) {
        self.deadline_misses = self.deadline_misses.saturating_add(other.deadline_misses);
        self.template_divergences = self
            .template_divergences
            .saturating_add(other.template_divergences);
        self.shared_overloads = self.shared_overloads.saturating_add(other.shared_overloads);
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "misses={} divergences={} overloads={}",
            self.deadline_misses, self.template_divergences, self.shared_overloads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_report_has_all_zero_counters() {
        assert!(WatchdogReport::new().is_quiet());
        let noisy = WatchdogReport {
            template_divergences: 1,
            ..WatchdogReport::default()
        };
        assert!(!noisy.is_quiet());
    }

    #[test]
    fn absorb_saturates() {
        let mut a = WatchdogReport {
            deadline_misses: u64::MAX,
            shared_overloads: 1,
            ..WatchdogReport::default()
        };
        a.absorb(WatchdogReport {
            deadline_misses: 7,
            shared_overloads: 2,
            template_divergences: 3,
        });
        assert_eq!(a.deadline_misses, u64::MAX);
        assert_eq!(a.shared_overloads, 3);
        assert_eq!(a.template_divergences, 3);
    }

    #[test]
    fn display_is_compact() {
        let r = WatchdogReport {
            deadline_misses: 2,
            template_divergences: 0,
            shared_overloads: 1,
        };
        assert_eq!(r.to_string(), "misses=2 divergences=0 overloads=1");
    }
}
