//! Execution traces: what ran where, when.
//!
//! The traced simulation entry points (`simulate_federated_traced`,
//! `simulate_edf_uniprocessor_traced`) record every execution slice as a
//! [`TraceSegment`]. Traces support overlap validation (no processor runs
//! two things at once — a whole-run invariant checked in tests) and ASCII
//! Gantt rendering of a time window, which the `runtime_trace` example uses
//! to visualise a federated system in flight.

use core::fmt;

use fedsched_dag::system::TaskId;
use fedsched_dag::time::{Duration, Time};

/// One contiguous execution slice on one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// Global processor index.
    pub processor: u32,
    /// The task whose work ran.
    pub task: TaskId,
    /// The vertex index within the task's DAG, for cluster/global
    /// schedules; `None` for sequentialised execution on a shared EDF
    /// processor.
    pub vertex: Option<u32>,
    /// Slice start.
    pub start: Time,
    /// Slice end (exclusive).
    pub end: Time,
}

impl TraceSegment {
    /// Length of the slice.
    #[must_use]
    pub fn len(&self) -> Duration {
        self.end - self.start
    }

    /// `true` for degenerate zero-length slices (never recorded, but the
    /// type allows them).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for TraceSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.vertex {
            Some(v) => write!(
                f,
                "P{} {}..{} {}[v{}]",
                self.processor, self.start, self.end, self.task, v
            ),
            None => write!(
                f,
                "P{} {}..{} {}",
                self.processor, self.start, self.end, self.task
            ),
        }
    }
}

/// A whole-run execution trace over a fixed processor count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionTrace {
    processors: u32,
    segments: Vec<TraceSegment>,
}

impl ExecutionTrace {
    /// An empty trace over `processors` processors.
    #[must_use]
    pub fn new(processors: u32) -> ExecutionTrace {
        ExecutionTrace {
            processors,
            segments: Vec::new(),
        }
    }

    /// Processor count the trace spans.
    #[must_use]
    pub fn processor_count(&self) -> u32 {
        self.processors
    }

    /// Records a slice; zero-length slices are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the segment references a processor outside the trace or
    /// ends before it starts.
    pub fn push(&mut self, segment: TraceSegment) {
        assert!(
            segment.processor < self.processors,
            "segment on out-of-range processor"
        );
        assert!(segment.end >= segment.start, "segment ends before start");
        if !segment.is_empty() {
            self.segments.push(segment);
        }
    }

    /// All recorded slices, in recording order.
    #[must_use]
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Total busy time across all processors.
    #[must_use]
    pub fn total_busy(&self) -> Duration {
        self.segments.iter().map(TraceSegment::len).sum()
    }

    /// Merges another trace (e.g. from a different processor subset) into
    /// this one.
    ///
    /// # Panics
    ///
    /// Panics if the other trace spans more processors.
    pub fn absorb(&mut self, other: ExecutionTrace) {
        assert!(other.processors <= self.processors);
        self.segments.extend(other.segments);
    }

    /// Verifies that no two slices overlap on the same processor, returning
    /// the first offending pair if any.
    #[must_use]
    pub fn find_overlap(&self) -> Option<(TraceSegment, TraceSegment)> {
        let mut by_proc: Vec<Vec<TraceSegment>> = vec![Vec::new(); self.processors as usize];
        for &s in &self.segments {
            by_proc[s.processor as usize].push(s);
        }
        for slices in &mut by_proc {
            slices.sort_by_key(|s| (s.start, s.end));
            for w in slices.windows(2) {
                if w[0].end > w[1].start {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }

    /// Renders an ASCII Gantt chart of the window `[from, to)`: one row per
    /// processor, one column per tick, task ids as base-36 glyphs and `.`
    /// for idle.
    ///
    /// Intended for small windows; the width is `to − from` characters.
    ///
    /// # Panics
    ///
    /// Panics if `to < from`.
    #[must_use]
    pub fn to_gantt(&self, from: Time, to: Time) -> String {
        use core::fmt::Write as _;
        let width = (to - from).ticks() as usize;
        let mut rows = vec![vec!['.'; width]; self.processors as usize];
        for s in &self.segments {
            if s.end <= from || s.start >= to {
                continue;
            }
            let glyph = char::from_digit((s.task.index() % 36) as u32, 36).unwrap_or('?');
            let lo = s.start.max(from).ticks() - from.ticks();
            let hi = s.end.min(to).ticks() - from.ticks();
            for c in rows[s.processor as usize]
                .iter_mut()
                .take(hi as usize)
                .skip(lo as usize)
            {
                *c = glyph;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "t={from}..{to}");
        for (p, row) in rows.iter().enumerate() {
            let _ = writeln!(out, "P{p}: {}", row.iter().collect::<String>());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(p: u32, task: usize, s: u64, e: u64) -> TraceSegment {
        TraceSegment {
            processor: p,
            task: TaskId::from_index(task),
            vertex: None,
            start: Time::new(s),
            end: Time::new(e),
        }
    }

    #[test]
    fn push_and_totals() {
        let mut t = ExecutionTrace::new(2);
        t.push(seg(0, 1, 0, 3));
        t.push(seg(1, 2, 1, 2));
        t.push(seg(0, 1, 5, 5)); // zero-length: dropped
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.total_busy(), Duration::new(4));
        assert_eq!(t.processor_count(), 2);
    }

    #[test]
    fn overlap_detection() {
        let mut t = ExecutionTrace::new(1);
        t.push(seg(0, 1, 0, 3));
        t.push(seg(0, 2, 5, 8));
        assert_eq!(t.find_overlap(), None);
        t.push(seg(0, 3, 2, 4));
        let (a, b) = t.find_overlap().expect("overlap exists");
        assert_eq!((a.start, b.start), (Time::new(0), Time::new(2)));
        // Back-to-back slices do not overlap.
        let mut t2 = ExecutionTrace::new(1);
        t2.push(seg(0, 1, 0, 3));
        t2.push(seg(0, 2, 3, 5));
        assert_eq!(t2.find_overlap(), None);
    }

    #[test]
    #[should_panic(expected = "out-of-range processor")]
    fn rejects_out_of_range_processor() {
        let mut t = ExecutionTrace::new(1);
        t.push(seg(1, 0, 0, 1));
    }

    #[test]
    fn gantt_window_rendering() {
        let mut t = ExecutionTrace::new(2);
        t.push(seg(0, 1, 2, 5));
        t.push(seg(1, 2, 0, 2));
        let g = t.to_gantt(Time::new(0), Time::new(6));
        assert!(g.contains("P0: ..111."));
        assert!(g.contains("P1: 22...."));
        // Clipping at the window edges.
        let clipped = t.to_gantt(Time::new(3), Time::new(5));
        assert!(clipped.contains("P0: 11"));
        assert!(clipped.contains("P1: .."));
    }

    #[test]
    fn absorb_merges() {
        let mut a = ExecutionTrace::new(3);
        a.push(seg(0, 1, 0, 1));
        let mut b = ExecutionTrace::new(2);
        b.push(seg(1, 2, 0, 1));
        a.absorb(b);
        assert_eq!(a.segments().len(), 2);
    }

    #[test]
    fn segment_display() {
        let s = seg(0, 3, 1, 4);
        assert_eq!(s.to_string(), "P0 t1..t4 τ3");
        let v = TraceSegment {
            vertex: Some(2),
            ..s
        };
        assert_eq!(v.to_string(), "P0 t1..t4 τ3[v2]");
        assert_eq!(s.len(), Duration::new(3));
    }
}

impl ExecutionTrace {
    /// Renders the window `[from, to)` as a standalone SVG document: one
    /// swim-lane per processor, one rectangle per execution slice, colour-
    /// coded by task (golden-angle hues, so adjacent task ids contrast).
    ///
    /// # Panics
    ///
    /// Panics if `to < from`.
    #[must_use]
    pub fn to_svg(&self, from: Time, to: Time) -> String {
        use core::fmt::Write as _;
        const LANE_H: u64 = 28;
        const LANE_GAP: u64 = 6;
        const MARGIN: u64 = 40;
        const WIDTH: u64 = 960;
        let span = (to - from).ticks().max(1);
        let scale = WIDTH as f64 / span as f64;
        let height = MARGIN + self.processors as u64 * (LANE_H + LANE_GAP) + MARGIN / 2;
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{height}\" \
             font-family=\"monospace\" font-size=\"11\">",
            WIDTH + 2 * MARGIN
        );
        let _ = writeln!(
            svg,
            "  <text x=\"{MARGIN}\" y=\"20\">execution trace, t = {from} .. {to}</text>"
        );
        // Lanes.
        for p in 0..self.processors {
            let y = MARGIN + u64::from(p) * (LANE_H + LANE_GAP);
            let _ = writeln!(
                svg,
                "  <text x=\"4\" y=\"{}\">P{p}</text>",
                y + LANE_H / 2 + 4
            );
            let _ = writeln!(
                svg,
                "  <rect x=\"{MARGIN}\" y=\"{y}\" width=\"{WIDTH}\" height=\"{LANE_H}\" \
                 fill=\"#f4f4f4\" stroke=\"#cccccc\"/>"
            );
        }
        // Slices.
        for s in &self.segments {
            if s.end <= from || s.start >= to {
                continue;
            }
            let lo = s.start.max(from).ticks() - from.ticks();
            let hi = s.end.min(to).ticks() - from.ticks();
            let x = MARGIN as f64 + lo as f64 * scale;
            let w = ((hi - lo) as f64 * scale).max(1.0);
            let y = MARGIN + u64::from(s.processor) * (LANE_H + LANE_GAP);
            let hue = (s.task.index() as f64 * 137.508) % 360.0;
            let _ = writeln!(
                svg,
                "  <rect x=\"{x:.1}\" y=\"{}\" width=\"{w:.1}\" height=\"{}\" \
                 fill=\"hsl({hue:.0},70%,60%)\" stroke=\"#333333\" stroke-width=\"0.5\">\
                 <title>{s}</title></rect>",
                y + 2,
                LANE_H - 4
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

#[cfg(test)]
mod svg_tests {
    use super::*;

    #[test]
    fn svg_contains_lanes_and_slices() {
        let mut t = ExecutionTrace::new(2);
        t.push(TraceSegment {
            processor: 0,
            task: TaskId::from_index(3),
            vertex: Some(1),
            start: Time::new(2),
            end: Time::new(9),
        });
        let svg = t.to_svg(Time::ZERO, Time::new(20));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 3); // 2 lanes + 1 slice
        assert!(svg.contains("<title>P0 t2..t9 τ3[v1]</title>"));
        assert!(svg.contains(">P1<"));
    }

    #[test]
    fn svg_clips_to_window() {
        let mut t = ExecutionTrace::new(1);
        t.push(TraceSegment {
            processor: 0,
            task: TaskId::from_index(0),
            vertex: None,
            start: Time::new(100),
            end: Time::new(200),
        });
        let svg = t.to_svg(Time::ZERO, Time::new(50));
        assert_eq!(svg.matches("<rect").count(), 1); // lane only
    }
}
