//! Run-time simulation of a federated schedule.
//!
//! Reproduces the paper's run-time system: each dedicated cluster replays
//! its frozen template `σ_i` on every dag-job release (idling on early
//! completion, per footnote 2), and each shared processor runs preemptive
//! uniprocessor EDF over its partition slot.
//!
//! A deliberately *unsafe* cluster dispatcher is also provided —
//! [`ClusterDispatch::RerunListScheduling`] — which re-runs LS on-line with
//! the revealed actual execution times. Graham's anomaly makes this
//! dispatcher miss deadlines that the template dispatcher provably cannot;
//! experiment E8 quantifies exactly that.

use fedsched_core::fedcons::FederatedSchedule;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::time::Duration;
use fedsched_graham::list::{list_schedule_ranked, PriorityPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{MissRecord, SimConfig, SimReport};
use crate::trace::{ExecutionTrace, TraceSegment};
use crate::uniproc::{simulate_edf_uniprocessor_watched, SequentialJob};
use crate::watchdog::WatchdogReport;

/// How a dedicated cluster dispatches the jobs of a released dag-job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterDispatch {
    /// Replay the frozen template `σ_i`: every vertex starts at its template
    /// offset; early completions idle the processor (paper footnote 2).
    /// Safe: actual execution times never exceed WCETs, so precedence holds
    /// and the completion is never later than the template makespan.
    #[default]
    Template,
    /// Re-run List Scheduling on-line with the actual execution times — the
    /// scheme footnote 2 warns against. Subject to Graham's timing
    /// anomalies: *shorter* executions can yield a *longer* schedule.
    RerunListScheduling,
}

/// Simulates the complete federated runtime of `schedule` for `system`.
///
/// Scored jobs are exactly those whose absolute deadline lies within
/// `config.horizon`. Consecutive dag-jobs of a cluster task never overlap
/// under [`ClusterDispatch::Template`] (makespan ≤ D ≤ T); under the unsafe
/// rerun dispatcher each dag-job is scheduled in isolation, which *favours*
/// the rerun — the anomaly misses it still exhibits are genuine.
///
/// `policy` must match the priority policy the templates were built with so
/// the rerun dispatcher replays the same list.
///
/// # Panics
///
/// Panics if `schedule` does not belong to `system` (task ids out of
/// range).
#[must_use]
pub fn simulate_federated(
    system: &TaskSystem,
    schedule: &FederatedSchedule,
    config: SimConfig,
    dispatch: ClusterDispatch,
    policy: PriorityPolicy,
) -> SimReport {
    simulate_federated_traced(system, schedule, config, dispatch, policy).0
}

/// Like [`simulate_federated`], additionally recording the full
/// [`ExecutionTrace`] (every execution slice on every processor) for
/// visualisation and overlap checking.
#[must_use]
pub fn simulate_federated_traced(
    system: &TaskSystem,
    schedule: &FederatedSchedule,
    config: SimConfig,
    dispatch: ClusterDispatch,
    policy: PriorityPolicy,
) -> (SimReport, ExecutionTrace) {
    let (report, trace, _) = simulate_federated_watched(system, schedule, config, dispatch, policy);
    (report, trace)
}

/// Like [`simulate_federated_traced`], additionally running the runtime
/// anomaly watchdog: the returned [`WatchdogReport`] counts deadline
/// misses, vertices whose observed on-line start diverged from the frozen
/// template `σᵢ` offset (nonzero only under the unsafe
/// [`ClusterDispatch::RerunListScheduling`] — the Graham-anomaly exposure
/// of paper footnote 2), and instants at which a shared EDF processor was
/// provably overloaded.
///
/// # Panics
///
/// Panics if `schedule` does not belong to `system` (task ids out of
/// range).
#[must_use]
pub fn simulate_federated_watched(
    system: &TaskSystem,
    schedule: &FederatedSchedule,
    config: SimConfig,
    dispatch: ClusterDispatch,
    policy: PriorityPolicy,
) -> (SimReport, ExecutionTrace, WatchdogReport) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut watchdog = WatchdogReport::default();
    let mut report = SimReport::default();
    let mut trace = ExecutionTrace::new(schedule.total_processors());

    // Dedicated clusters.
    for cluster in schedule.clusters() {
        let task = system.task(cluster.task);
        // Priority ranks depend only on the DAG, not on the sampled
        // execution times — hoist them out of the per-release loop.
        let rerun_ranks = match dispatch {
            ClusterDispatch::RerunListScheduling => Some(policy.ranks(task.dag())),
            ClusterDispatch::Template => None,
        };
        let releases = config
            .arrivals
            .releases(&mut rng, task.period(), config.horizon);
        for release in releases {
            let deadline = release + task.deadline();
            if deadline.ticks() > config.horizon.ticks() {
                continue;
            }
            let actual: Vec<Duration> = task
                .dag()
                .wcets()
                .iter()
                .map(|&w| config.execution.sample(&mut rng, w))
                .collect();
            let completion_offset = match dispatch {
                ClusterDispatch::Template => {
                    let mut latest = Duration::ZERO;
                    for (v, (&a, e)) in actual.iter().zip(cluster.template.entries()).enumerate() {
                        trace.push(TraceSegment {
                            processor: cluster.first_processor + e.processor,
                            task: cluster.task,
                            vertex: Some(v as u32),
                            start: release + e.start,
                            end: release + e.start + a,
                        });
                        latest = latest.max(e.start + a);
                    }
                    latest
                }
                ClusterDispatch::RerunListScheduling => {
                    let ranks = rerun_ranks
                        .as_ref()
                        .expect("hoisted above for this dispatch");
                    let rerun =
                        list_schedule_ranked(task.dag(), cluster.processors, ranks, &actual);
                    for (v, e) in rerun.entries().iter().enumerate() {
                        // Watchdog: the on-line start deviated from the
                        // frozen template offset σᵢ — Graham-anomaly
                        // exposure, impossible under template dispatch.
                        if e.start != cluster.template.entries()[v].start {
                            watchdog.template_divergences =
                                watchdog.template_divergences.saturating_add(1);
                        }
                        trace.push(TraceSegment {
                            processor: cluster.first_processor + e.processor,
                            task: cluster.task,
                            vertex: Some(v as u32),
                            start: release + e.start,
                            end: release + e.finish,
                        });
                    }
                    rerun.makespan()
                }
            };
            let completion = release + completion_offset;
            report.jobs_scored += 1;
            if completion <= deadline {
                report.jobs_on_time += 1;
            } else {
                report.misses.push(MissRecord {
                    task: cluster.task,
                    release,
                    deadline,
                    completion,
                });
            }
        }
    }

    // Shared pool: one EDF simulation per shared processor.
    for (slot, ids) in schedule.partition().iter() {
        let processor = schedule.shared_first() + slot as u32;
        let mut jobs: Vec<SequentialJob> = Vec::new();
        for &id in ids {
            let task = system.task(id);
            let releases = config
                .arrivals
                .releases(&mut rng, task.period(), config.horizon);
            for release in releases {
                let execution: Duration = task
                    .dag()
                    .wcets()
                    .iter()
                    .map(|&w| config.execution.sample(&mut rng, w))
                    .sum();
                jobs.push(SequentialJob {
                    task: id,
                    release,
                    deadline: release + task.deadline(),
                    execution,
                });
            }
        }
        let (proc_report, segments, overloads) =
            simulate_edf_uniprocessor_watched(&jobs, config.horizon, processor);
        report.absorb(proc_report);
        watchdog.shared_overloads = watchdog.shared_overloads.saturating_add(overloads);
        for s in segments {
            trace.push(s);
        }
    }
    watchdog.deadline_misses = report.misses.len() as u64;
    (report, trace, watchdog)
}

/// Convenience wrapper: random execution-time fractions are the interesting
/// case for the anomaly experiment, so this samples `runs` different seeds
/// and reports the total.
#[must_use]
pub fn simulate_federated_runs(
    system: &TaskSystem,
    schedule: &FederatedSchedule,
    base: SimConfig,
    dispatch: ClusterDispatch,
    policy: PriorityPolicy,
    runs: u64,
) -> SimReport {
    let mut seeds = StdRng::seed_from_u64(base.seed);
    let mut total = SimReport::default();
    for _ in 0..runs {
        let config = SimConfig {
            seed: seeds.gen(),
            ..base
        };
        total.absorb(simulate_federated(
            system, schedule, config, dispatch, policy,
        ));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArrivalModel, ExecutionModel};
    use fedsched_core::fedcons::{fedcons, FedConsConfig};
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::task::DagTask;

    fn parallel_task(k: usize, w: u64, d: u64, t: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(w), k));
        DagTask::new(b.build().unwrap(), Duration::new(d), Duration::new(t)).unwrap()
    }

    fn seq(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    fn admitted_system() -> (TaskSystem, FederatedSchedule) {
        let system: TaskSystem = [
            parallel_task(6, 1, 2, 4), // high-density: δ = 3
            seq(1, 4, 8),
            seq(2, 6, 12),
        ]
        .into_iter()
        .collect();
        let schedule = fedcons(&system, 5, FedConsConfig::default()).unwrap();
        (system, schedule)
    }

    #[test]
    fn admitted_system_is_clean_under_wcet_periodic() {
        let (system, schedule) = admitted_system();
        let config = SimConfig::worst_case(Duration::new(10_000));
        let r = simulate_federated(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        assert!(r.jobs_scored > 2500, "scored {}", r.jobs_scored);
        assert!(r.is_clean(), "misses: {:?}", r.misses);
    }

    #[test]
    fn admitted_system_is_clean_with_early_completions() {
        let (system, schedule) = admitted_system();
        let config = SimConfig {
            horizon: Duration::new(10_000),
            arrivals: ArrivalModel::SporadicUniformSlack {
                max_extra_fraction: 0.4,
            },
            execution: ExecutionModel::UniformFraction { min_fraction: 0.2 },
            seed: 77,
        };
        let r = simulate_federated(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        assert!(r.jobs_scored > 1000);
        assert!(r.is_clean(), "misses: {:?}", r.misses);
    }

    #[test]
    fn multiple_runs_accumulate() {
        let (system, schedule) = admitted_system();
        let base = SimConfig {
            horizon: Duration::new(500),
            arrivals: ArrivalModel::Periodic,
            execution: ExecutionModel::UniformFraction { min_fraction: 0.5 },
            seed: 1,
        };
        let r = simulate_federated_runs(
            &system,
            &schedule,
            base,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
            5,
        );
        let single = simulate_federated(
            &system,
            &schedule,
            base,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        assert_eq!(r.jobs_scored, 5 * single.jobs_scored);
        assert!(r.is_clean());
    }

    #[test]
    fn simulation_is_deterministic() {
        let (system, schedule) = admitted_system();
        let config = SimConfig {
            horizon: Duration::new(2_000),
            arrivals: ArrivalModel::SporadicUniformSlack {
                max_extra_fraction: 0.3,
            },
            execution: ExecutionModel::UniformFraction { min_fraction: 0.4 },
            seed: 5,
        };
        let a = simulate_federated(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        let b = simulate_federated(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_zero_scores_nothing() {
        let (system, schedule) = admitted_system();
        let config = SimConfig::worst_case(Duration::ZERO);
        let r = simulate_federated(
            &system,
            &schedule,
            config,
            ClusterDispatch::Template,
            PriorityPolicy::ListOrder,
        );
        assert_eq!(r.jobs_scored, 0);
    }
}
