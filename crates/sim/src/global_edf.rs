//! Vertex-level global EDF simulation on `m` identical processors.
//!
//! The global-scheduling counterpart the paper's related work analyses
//! (\[16\], \[5\], \[1\]): all tasks share all processors; at every instant the
//! (up to) `m` *available* vertices belonging to the dag-jobs with the
//! earliest absolute deadlines execute, with free preemption and migration.
//!
//! Used as a comparison runtime in experiment E4 and to sanity-check the
//! global-EDF admission baselines of `fedsched-core`.

use fedsched_dag::system::{TaskId, TaskSystem};
use fedsched_dag::time::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::model::{MissRecord, SimConfig, SimReport};

#[derive(Debug)]
struct JobInstance {
    task: TaskId,
    release: Time,
    deadline: Time,
    /// Remaining execution per vertex (0 = finished).
    remaining: Vec<u64>,
    /// Unfinished predecessor count per vertex.
    pending_preds: Vec<usize>,
    unfinished: usize,
}

impl JobInstance {
    fn is_complete(&self) -> bool {
        self.unfinished == 0
    }
}

/// Simulates preemptive, migrating, vertex-level global EDF of `system` on
/// `m` processors.
///
/// Jobs are scored iff their absolute deadline is within `config.horizon`.
/// If backlog persists, the engine stops at a hard stop of
/// `2·horizon + max Dᵢ`; scored jobs still unfinished there are reported as
/// misses with the hard stop as their (lower-bound) completion time.
///
/// # Panics
///
/// Panics if `m == 0` while the system is non-empty.
#[must_use]
pub fn simulate_global_edf(system: &TaskSystem, m: u32, config: SimConfig) -> SimReport {
    if system.is_empty() {
        return SimReport::default();
    }
    assert!(m > 0, "global EDF needs at least one processor");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Materialise every dag-job instance, arrival-sorted.
    let mut instances: Vec<JobInstance> = Vec::new();
    for (id, task) in system.iter() {
        let releases = config
            .arrivals
            .releases(&mut rng, task.period(), config.horizon);
        for release in releases {
            let remaining: Vec<u64> = task
                .dag()
                .wcets()
                .iter()
                .map(|&w| config.execution.sample(&mut rng, w).ticks())
                .collect();
            let pending_preds: Vec<usize> = task
                .dag()
                .vertices()
                .map(|v| task.dag().in_degree(v))
                .collect();
            let unfinished = remaining.len();
            instances.push(JobInstance {
                task: id,
                release,
                deadline: release + task.deadline(),
                remaining,
                pending_preds,
                unfinished,
            });
        }
    }
    instances.sort_by_key(|j| (j.release, j.deadline, j.task));

    let max_deadline_rel = system
        .iter()
        .map(|(_, t)| t.deadline())
        .max()
        .unwrap_or(Duration::ZERO);
    let hard_stop = Time::new(
        config
            .horizon
            .ticks()
            .saturating_mul(2)
            .saturating_add(max_deadline_rel.ticks())
            .max(1),
    );

    let mut report = SimReport::default();
    let mut next_arrival = 0usize;
    let mut active: Vec<usize> = Vec::new(); // indices into `instances`
    let mut now = Time::ZERO;

    let score =
        |inst: &JobInstance, completion: Time, report: &mut SimReport, horizon: Duration| {
            if inst.deadline.ticks() <= horizon.ticks() {
                report.jobs_scored += 1;
                if completion <= inst.deadline {
                    report.jobs_on_time += 1;
                } else {
                    report.misses.push(MissRecord {
                        task: inst.task,
                        release: inst.release,
                        deadline: inst.deadline,
                        completion,
                    });
                }
            }
        };

    loop {
        // Admit arrivals.
        while next_arrival < instances.len() && instances[next_arrival].release <= now {
            active.push(next_arrival);
            next_arrival += 1;
        }
        if active.is_empty() {
            match instances.get(next_arrival) {
                Some(j) => {
                    now = j.release;
                    continue;
                }
                None => break,
            }
        }
        if now >= hard_stop {
            break;
        }

        // Select up to m available vertices by (deadline, release, task, vertex).
        let mut candidates: Vec<(u64, u64, u32, usize, usize)> = Vec::new();
        for &ii in &active {
            let inst = &instances[ii];
            for v in 0..inst.remaining.len() {
                if inst.remaining[v] > 0 && inst.pending_preds[v] == 0 {
                    candidates.push((
                        inst.deadline.ticks(),
                        inst.release.ticks(),
                        inst.task.index() as u32,
                        ii,
                        v,
                    ));
                }
            }
        }
        candidates.sort_unstable();
        candidates.truncate(m as usize);

        // Next event: earliest running-vertex completion, next arrival, or
        // the hard stop.
        let min_completion = candidates
            .iter()
            .map(|&(_, _, _, ii, v)| instances[ii].remaining[v])
            .min()
            .map(|r| now + Duration::new(r))
            .unwrap_or(Time::MAX);
        let next_at = instances
            .get(next_arrival)
            .map(|j| j.release)
            .unwrap_or(Time::MAX);
        let until = min_completion.min(next_at).min(hard_stop);
        debug_assert!(until > now || until == hard_stop, "no progress");
        let delta = (until - now).ticks();

        // Advance the chosen vertices.
        for &(_, _, _, ii, v) in &candidates {
            let inst = &mut instances[ii];
            inst.remaining[v] -= delta.min(inst.remaining[v]);
            if inst.remaining[v] == 0 {
                inst.unfinished -= 1;
                // Release successors.
                let dag = system.task(inst.task).dag();
                let succs: Vec<usize> = dag
                    .successors(fedsched_dag::graph::VertexId::from_index(v))
                    .iter()
                    .map(|s| s.index())
                    .collect();
                for s in succs {
                    inst.pending_preds[s] -= 1;
                }
            }
        }
        now = until;

        // Retire complete instances.
        let mut i = 0;
        while i < active.len() {
            let ii = active[i];
            if instances[ii].is_complete() {
                score(&instances[ii], now, &mut report, config.horizon);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }

        if now >= hard_stop {
            break;
        }
    }

    // Anything scored but unfinished at the hard stop is a miss.
    for &ii in &active {
        let inst = &instances[ii];
        if !inst.is_complete() {
            score(inst, hard_stop, &mut report, config.horizon);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::task::DagTask;

    fn parallel_task(k: usize, w: u64, d: u64, t: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(w), k));
        DagTask::new(b.build().unwrap(), Duration::new(d), Duration::new(t)).unwrap()
    }

    fn seq(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    fn wc(h: u64) -> SimConfig {
        SimConfig::worst_case(Duration::new(h))
    }

    #[test]
    fn single_light_task_is_clean() {
        let system: TaskSystem = [seq(2, 5, 10)].into_iter().collect();
        let r = simulate_global_edf(&system, 1, wc(1_000));
        assert!(r.jobs_scored >= 99);
        assert!(r.is_clean());
    }

    #[test]
    fn parallel_task_exploits_processors() {
        // 4 unit jobs, D = 1: impossible on 3 processors, fine on 4.
        let system: TaskSystem = [parallel_task(4, 1, 1, 4)].into_iter().collect();
        let tight = simulate_global_edf(&system, 3, wc(100));
        assert!(!tight.is_clean());
        let ok = simulate_global_edf(&system, 4, wc(100));
        assert!(ok.is_clean());
    }

    #[test]
    fn precedence_is_respected() {
        // Chain a(2) → b(2), D = 4: needs exactly sequential execution.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 2].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let task = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(8)).unwrap();
        let system: TaskSystem = [task].into_iter().collect();
        // Even with many processors the chain takes 4 ticks — exactly D.
        let r = simulate_global_edf(&system, 8, wc(800));
        assert!(r.is_clean());
        // With D = 3 it must miss every job.
        let mut b2 = DagBuilder::new();
        let v2 = b2.add_vertices([2, 2].map(Duration::new));
        b2.add_edge(v2[0], v2[1]).unwrap();
        let tight = DagTask::new(b2.build().unwrap(), Duration::new(3), Duration::new(8)).unwrap();
        let sys2: TaskSystem = [tight].into_iter().collect();
        let r2 = simulate_global_edf(&sys2, 8, wc(800));
        assert_eq!(r2.jobs_on_time, 0);
        assert!(r2.jobs_scored > 0);
    }

    #[test]
    fn edf_prioritizes_urgent_dag_jobs() {
        // A long-deadline heavy task plus a short-deadline light task on one
        // processor: EDF must always serve the light one first.
        let system: TaskSystem = [seq(4, 20, 20), seq(1, 2, 5)].into_iter().collect();
        let r = simulate_global_edf(&system, 1, wc(2_000));
        assert!(r.is_clean(), "misses: {:?}", r.misses);
    }

    #[test]
    fn overload_reports_misses_not_hangs() {
        let system: TaskSystem = [seq(9, 10, 10), seq(9, 10, 10)].into_iter().collect();
        let r = simulate_global_edf(&system, 1, wc(200));
        assert!(r.jobs_scored > 0);
        assert!(!r.is_clean());
    }

    #[test]
    fn deterministic() {
        let system: TaskSystem = [parallel_task(3, 2, 5, 6), seq(1, 3, 7)]
            .into_iter()
            .collect();
        let cfg = SimConfig {
            horizon: Duration::new(1_000),
            arrivals: crate::model::ArrivalModel::SporadicUniformSlack {
                max_extra_fraction: 0.5,
            },
            execution: crate::model::ExecutionModel::UniformFraction { min_fraction: 0.3 },
            seed: 11,
        };
        let a = simulate_global_edf(&system, 2, cfg);
        let b = simulate_global_edf(&system, 2, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_system() {
        let r = simulate_global_edf(&TaskSystem::new(), 0, wc(100));
        assert_eq!(r.jobs_scored, 0);
    }
}
