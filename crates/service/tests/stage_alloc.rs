//! Allocation gate for the per-request stage timing path.
//!
//! The PR-8 ethos extends to observability: measuring the pipeline must
//! not perturb it. After the telemetry clock's one-time epoch
//! initialization, a full request's worth of stage stamping —
//! `StageTimer::start`, one stamp per boundary, the dispatch split, the
//! processing-time sum, and `StageCounters::record` into the shared
//! atomics — performs **zero** heap allocations. A counting global
//! allocator turns that contract into a test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fedsched_service::stats::RequestStage;
use fedsched_service::{StageCounters, StageTimer};

thread_local! {
    /// Per-thread allocation count: tests run on harness threads, so a
    /// process-global counter would pick up other tests' noise.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// `u64` has no destructor, so the thread-local slot is accessible for the
// whole thread lifetime — safe to touch from inside the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// One request's worth of stage stamping, exactly as `serve_connection`
/// and `dispatch` drive it.
fn stamp_one_request(counters: &StageCounters) {
    let mut timer = StageTimer::start();
    timer.stamp(RequestStage::IdleWait);
    timer.stamp(RequestStage::FrameRead);
    timer.stamp(RequestStage::Parse);
    timer.stamp_dispatch(120, 340);
    timer.stamp(RequestStage::Serialize);
    let _ = timer.processing_nanos();
    let _ = timer.micros(RequestStage::Analysis);
    let _ = timer.last_interval(RequestStage::FrameRead);
    counters.record(&timer);
}

#[test]
fn warm_path_stage_timing_is_allocation_free() {
    // Warm-up: the first `monotonic_nanos` call initializes the process
    // epoch (a OnceLock), and `StageCounters::default` builds the atomic
    // bucket matrix. Neither is per-request work.
    let counters = StageCounters::default();
    stamp_one_request(&counters);

    let before = allocations();
    for _ in 0..1_000 {
        stamp_one_request(&counters);
    }
    assert_eq!(
        allocations() - before,
        0,
        "per-request stage timing must not touch the heap"
    );

    // The loop really recorded: every stage histogram counted every
    // request (the snapshot itself may allocate — taken after the gate).
    let stats = counters.snapshot();
    assert_eq!(stats.requests_total, 1_001);
    for stage in RequestStage::ALL {
        let total: u64 = stats.buckets(stage).iter().sum();
        assert_eq!(
            total,
            1_001,
            "stage {} must count every request",
            stage.name()
        );
    }
}
