//! End-to-end exercise of the TCP server: four concurrent client threads
//! over a loopback socket, per-request response checking, cache-hit
//! accounting, malformed-input handling, and shutdown.

use std::collections::HashSet;

use fedsched_dag::graph::DagBuilder;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_service::client::Client;
use fedsched_service::protocol::{Placement, Response};
use fedsched_service::server::{serve, ConnectionLimits, ServerConfig, ServerHandle};
use fedsched_service::state::AdmissionConfig;

const CLIENTS: usize = 4;
const ROUNDS: usize = 25;

fn start_server(processors: u32) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: CLIENTS,
        shards: 2,
        conn_model: Default::default(),
        admission: AdmissionConfig::new(processors),
        limits: ConnectionLimits::default(),
        durability: None,
        handoff_from: None,
    })
    .expect("bind loopback")
}

/// The one high-density shape every client re-submits: 6 unit jobs due in
/// 2 ticks (μ* = 3). Identical shapes are the template cache's hot path.
fn wide_task() -> DagTask {
    let mut b = DagBuilder::new();
    b.add_vertices([1, 1, 1, 1, 1, 1].map(Duration::new));
    DagTask::new(b.build().unwrap(), Duration::new(2), Duration::new(10)).unwrap()
}

fn light_task() -> DagTask {
    DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8)).unwrap()
}

#[test]
fn four_concurrent_clients_admit_query_remove() {
    // 4 clients × (3-processor cluster + 1 shared slot) stays well under 32,
    // so every admission must succeed.
    let handle = start_server(32);
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut seen_tokens = Vec::new();
                for _ in 0..ROUNDS {
                    for task in [wide_task(), light_task()] {
                        let high = task.is_high_density();
                        let (token, placement) = match client.admit(&task).unwrap() {
                            Response::Admitted {
                                token, placement, ..
                            } => (token, placement),
                            other => panic!("admit answered {other:?}"),
                        };
                        match placement {
                            Placement::Dedicated { processors, .. } => {
                                assert!(high);
                                assert_eq!(processors, 3);
                            }
                            Placement::Shared { .. } => assert!(!high),
                        }
                        match client.query(token).unwrap() {
                            Response::TaskInfo { token: t, .. } => assert_eq!(t, token),
                            other => panic!("query answered {other:?}"),
                        }
                        match client.remove(token).unwrap() {
                            Response::Removed { token: t, .. } => assert_eq!(t, token),
                            other => panic!("remove answered {other:?}"),
                        }
                        match client.query(token).unwrap() {
                            Response::NotFound { token: t } => assert_eq!(t, token),
                            other => panic!("stale query answered {other:?}"),
                        }
                        seen_tokens.push(token);
                    }
                }
                seen_tokens
            })
        })
        .collect();

    let mut all_tokens = Vec::new();
    for t in threads {
        all_tokens.extend(t.join().expect("client thread"));
    }
    // Tokens are handed out under one lock: globally unique across clients.
    let distinct: HashSet<u64> = all_tokens.iter().copied().collect();
    assert_eq!(distinct.len(), all_tokens.len());
    assert_eq!(all_tokens.len(), CLIENTS * ROUNDS * 2);

    let mut client = Client::connect(addr).expect("connect for stats");
    let snapshot = match client.stats().unwrap() {
        Response::Stats { snapshot } => snapshot,
        other => panic!("stats answered {other:?}"),
    };
    let ops = (CLIENTS * ROUNDS) as u64;
    assert_eq!(snapshot.admitted_high, ops);
    assert_eq!(snapshot.admitted_low, ops);
    assert_eq!(snapshot.removed, 2 * ops);
    assert_eq!(snapshot.resident_tasks, 0);
    assert_eq!(snapshot.dedicated_processors, 0);
    // All clients submit the same shape: one miss, everything else hits.
    assert_eq!(snapshot.cache_misses, 1);
    assert_eq!(snapshot.cache_hits, ops - 1);
    assert!(snapshot.cache_hits > 0, "cache hits must be non-zero");
    assert_eq!(snapshot.cache_entries, 1);
    assert_eq!(
        snapshot.latency_buckets_us.iter().sum::<u64>(),
        2 * ops,
        "every admit decision must be latency-sampled"
    );

    assert!(matches!(client.shutdown().unwrap(), Response::ShuttingDown));
    handle.join();
}

#[test]
fn malformed_requests_get_an_error_response() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start_server(4);
    let addr = handle.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"{this is not json\n").unwrap();
    let mut line = String::new();
    BufReader::new(raw.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(
        line.contains("Error"),
        "expected an Error response line, got {line:?}"
    );
    drop(raw);

    // The server survives the bad client: a well-formed client still works.
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client.admit(&light_task()).unwrap(),
        Response::Admitted { .. }
    ));
    assert!(matches!(client.shutdown().unwrap(), Response::ShuttingDown));
    handle.join();
}

#[test]
fn in_process_shutdown_stops_the_workers() {
    let handle = start_server(4);
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client.admit(&light_task()).unwrap(),
        Response::Admitted { .. }
    ));
    drop(client);
    handle.shutdown(); // joins internally; must not hang
}
