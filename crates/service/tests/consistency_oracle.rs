//! The consistency oracle: every incremental admission decision — accept or
//! reject, and every placement — must coincide with a *batch* FEDCONS
//! re-analysis of the currently resident task set.
//!
//! The test drives seeded random interleavings of `admit` and `remove` over
//! a pool of more than 500 generated tasks (generator-produced low/mixed
//! systems plus constructed high-density, chain-infeasible, and
//! arbitrary-deadline shapes), checking after *every* operation that
//! `fedcons` over the resident set (in token order) accepts and reproduces
//! the state's clusters and shared placements bit for bit.

use fedsched_core::fedcons::{fedcons, FederatedSchedule};
use fedsched_dag::graph::DagBuilder;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;
use fedsched_service::protocol::Placement;
use fedsched_service::state::{AdmissionConfig, AdmissionState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A wide parallel task with `width` vertices; high-density when the
/// deadline is below the volume.
fn parallel_task(rng: &mut StdRng, width: usize) -> DagTask {
    let mut b = DagBuilder::new();
    let mut volume = 0u64;
    let mut longest = 0u64;
    for _ in 0..width {
        let w = rng.gen_range(1..6u64);
        volume += w;
        longest = longest.max(w);
        b.add_vertex(Duration::new(w));
    }
    // Chain-feasible but dense: longest ≤ D < volume where possible.
    let deadline = if volume > longest + 1 {
        rng.gen_range(longest..volume)
    } else {
        longest
    };
    let period = deadline + rng.gen_range(0..20u64);
    DagTask::new(
        b.build().unwrap(),
        Duration::new(deadline),
        Duration::new(period),
    )
    .unwrap()
}

/// A task no cluster size can help: its chain alone exceeds the deadline.
fn chain_infeasible_task() -> DagTask {
    let mut b = DagBuilder::new();
    let v = b.add_vertices([3, 4].map(Duration::new));
    b.add_edge(v[0], v[1]).unwrap();
    DagTask::new(b.build().unwrap(), Duration::new(5), Duration::new(12)).unwrap()
}

/// A task FEDCONS refuses outright: `D > T`.
fn arbitrary_deadline_task() -> DagTask {
    DagTask::sequential(Duration::new(1), Duration::new(9), Duration::new(4)).unwrap()
}

/// More than 500 tasks mixing generator output with adversarial shapes.
fn task_pool(rng: &mut StdRng) -> Vec<DagTask> {
    let mut pool: Vec<DagTask> = Vec::new();
    for chunk in 0..8u64 {
        let system = SystemConfig::new(50, 8.0)
            .with_max_task_utilization(0.7)
            .generate_seeded(1_000 + chunk)
            .expect("feasible generator target");
        pool.extend(system.tasks().iter().cloned());
    }
    for _ in 0..150 {
        let width = rng.gen_range(2..8usize);
        pool.push(parallel_task(rng, width));
    }
    for _ in 0..8 {
        pool.push(chain_infeasible_task());
        pool.push(arbitrary_deadline_task());
    }
    assert!(pool.len() >= 500, "pool has only {} tasks", pool.len());
    pool
}

/// Asserts that the batch schedule over the resident set places every task
/// exactly where the incremental state has it.
fn assert_placements_match(
    state: &AdmissionState,
    resident: &[(u64, DagTask)],
    schedule: &FederatedSchedule,
    step: usize,
) {
    let system: TaskSystem = resident.iter().map(|(_, t)| t.clone()).collect();
    let mut cluster_index = 0usize;
    for (id, task) in system.iter() {
        let token = resident[id.index()].0;
        let incremental = state
            .query(token)
            .unwrap_or_else(|| panic!("step {step}: token {token} resident but unknown"));
        if task.is_high_density() {
            let cluster = &schedule.clusters()[cluster_index];
            cluster_index += 1;
            assert_eq!(cluster.task, id, "step {step}: cluster order diverged");
            assert_eq!(
                incremental,
                Placement::Dedicated {
                    first_processor: cluster.first_processor,
                    processors: cluster.processors,
                },
                "step {step}: cluster placement diverged for token {token}"
            );
        } else {
            let slot = schedule
                .partition()
                .processor_of(id)
                .unwrap_or_else(|| panic!("step {step}: batch lost shared task {id}"));
            assert_eq!(
                incremental,
                Placement::Shared {
                    processor: schedule.shared_first() + slot as u32,
                },
                "step {step}: shared placement diverged for token {token}"
            );
        }
    }
    assert_eq!(
        cluster_index,
        schedule.clusters().len(),
        "step {step}: batch produced extra clusters"
    );
}

fn run_interleaving(seed: u64, operations: usize, processors: u32) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = task_pool(&mut rng);
    let config = AdmissionConfig::new(processors);
    let mut state = AdmissionState::new(config);
    // The oracle's mirror of the resident set, in token order.
    let mut resident: Vec<(u64, DagTask)> = Vec::new();
    let (mut accepted, mut rejected) = (0u64, 0u64);

    for step in 0..operations {
        if !resident.is_empty() && rng.gen_bool(0.4) {
            let victim = rng.gen_range(0..resident.len());
            let (token, _) = resident.remove(victim);
            state.remove(token).expect("resident token must remove");
        } else {
            let task = pool[rng.gen_range(0..pool.len())].clone();
            let decision = state.admit(task.clone());

            // Batch oracle for the decision: FEDCONS over resident ∪ {task}.
            let union: TaskSystem = resident
                .iter()
                .map(|(_, t)| t.clone())
                .chain([task.clone()])
                .collect();
            let batch = fedcons(&union, processors, config.fedcons);
            assert_eq!(
                decision.is_ok(),
                batch.is_ok(),
                "step {step}: incremental said {decision:?}, batch said {batch:?}"
            );
            match decision {
                Ok(admitted) => {
                    accepted += 1;
                    resident.push((admitted.token, task));
                }
                Err(_) => rejected += 1,
            }
        }

        // Batch oracle for the whole state: the resident set must be
        // schedulable and placed identically.
        let system: TaskSystem = resident.iter().map(|(_, t)| t.clone()).collect();
        let schedule = fedcons(&system, processors, config.fedcons)
            .unwrap_or_else(|e| panic!("step {step}: resident set became unschedulable: {e}"));
        assert_placements_match(&state, &resident, &schedule, step);
    }

    assert_eq!(
        state.stats().remove_anomalies,
        0,
        "seed {seed}: a removal replay hit a first-fit anomaly"
    );
    (accepted, rejected)
}

#[test]
fn incremental_decisions_match_batch_fedcons() {
    let mut total_accepted = 0;
    let mut total_rejected = 0;
    for seed in [11, 23, 47] {
        let (accepted, rejected) = run_interleaving(seed, 260, 16);
        total_accepted += accepted;
        total_rejected += rejected;
    }
    // The interleavings must genuinely exercise both outcomes.
    assert!(total_accepted >= 100, "only {total_accepted} admissions");
    assert!(total_rejected >= 50, "only {total_rejected} rejections");
}

#[test]
fn token_order_tie_break_matches_batch_task_id_order() {
    // Same-deadline tasks: the incremental tie-break (token) must agree
    // with the batch tie-break (TaskId), including across a removal that
    // shifts the id ↔ token correspondence.
    let processors = 2;
    let config = AdmissionConfig::new(processors);
    let mut state = AdmissionState::new(config);
    let mk = |c: u64| DagTask::sequential(Duration::new(c), Duration::new(8), Duration::new(16));
    let a = state.admit(mk(3).unwrap()).unwrap();
    let b = state.admit(mk(4).unwrap()).unwrap();
    let c = state.admit(mk(2).unwrap()).unwrap();
    state.remove(a.token).unwrap();
    let resident = vec![(b.token, mk(4).unwrap()), (c.token, mk(2).unwrap())];
    let system: TaskSystem = resident.iter().map(|(_, t)| t.clone()).collect();
    let schedule = fedcons(&system, processors, config.fedcons).unwrap();
    assert_placements_match(&state, &resident, &schedule, 0);
}
