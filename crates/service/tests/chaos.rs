//! Fault-injection suite: drives hostile and overloaded traffic —
//! slowloris trickles, newline-free floods, garbage bytes, partial
//! writes, mid-request disconnects, connection hogs — against a real
//! server over loopback and asserts the hardening layer holds: bounded
//! memory, bounded time, fast `Busy` rejections, drain-based shutdown,
//! and a counter incremented for every failure mode.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration as Ticks;
use fedsched_durable::{DurableStore, FsyncPolicy, StoreConfig};
use fedsched_service::chaos::ChaosClient;
use fedsched_service::client::{Client, ClientConfig};
use fedsched_service::protocol::{Placement, Response};
use fedsched_service::recover_state;
use fedsched_service::server::{
    serve, ConnModel, ConnectionLimits, ServerConfig, ServerHandle, TransportCounters,
};
use fedsched_service::state::AdmissionConfig;
use fedsched_service::stats::TransportStats;

/// The connection plane under test: `FEDSCHED_CONN_MODEL=threads|reactor`
/// reruns the whole suite against either plane (CI runs both); unset
/// falls back to the server default.
fn conn_model() -> ConnModel {
    match std::env::var("FEDSCHED_CONN_MODEL") {
        Ok(v) => v
            .parse()
            .expect("FEDSCHED_CONN_MODEL must be threads|reactor"),
        Err(_) => ConnModel::default(),
    }
}

fn start_server(limits: ConnectionLimits) -> ServerHandle {
    start_sharded_server(limits, 1)
}

fn start_sharded_server(limits: ConnectionLimits, shards: usize) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards,
        conn_model: conn_model(),
        admission: AdmissionConfig::new(16).with_telemetry(256),
        limits,
        durability: None,
        handoff_from: None,
    })
    .expect("bind loopback")
}

/// A fresh scratch directory for one durability test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedsched-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_durable_server(dir: &std::path::Path) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 1,
        conn_model: conn_model(),
        admission: AdmissionConfig::new(16).with_telemetry(256),
        limits: ConnectionLimits::default(),
        durability: Some(StoreConfig {
            fsync: FsyncPolicy::Every,
            ..StoreConfig::new(dir)
        }),
        handoff_from: None,
    })
    .expect("bind loopback with durability")
}

fn task() -> DagTask {
    DagTask::sequential(Ticks::new(1), Ticks::new(4), Ticks::new(8)).expect("valid task")
}

/// Polls the transport counters until `pred` holds or five seconds pass.
fn wait_for(counters: &TransportCounters, pred: impl Fn(&TransportStats) -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if pred(&counters.snapshot()) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn slowloris_clients_strike_out_and_cannot_starve_admissions() {
    let handle = start_server(ConnectionLimits {
        io_timeout: Some(Duration::from_millis(150)),
        idle_strikes: 2,
        ..ConnectionLimits::default()
    });
    let addr = handle.local_addr();
    let counters = handle.transport();

    // Four attackers trickle bytes with pauses beyond the read deadline,
    // never completing a request line.
    let attackers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut chaos = ChaosClient::connect(addr).expect("attacker connect");
                chaos.trickle(b"{\"Admit\":{\"task\":", Duration::from_millis(400));
            })
        })
        .collect();

    // While the attack runs, a well-formed client's admissions go through.
    let mut client = Client::connect(addr).expect("client connect");
    for _ in 0..10 {
        assert!(
            matches!(client.admit(&task()).unwrap(), Response::Admitted { .. }),
            "admissions must not starve under slowloris load"
        );
    }

    // Every attacker eventually times out repeatedly and is dropped.
    assert!(
        wait_for(&counters, |t| t.read_timeouts >= 1),
        "trickle pauses beyond the deadline must register as read timeouts"
    );
    assert!(
        wait_for(&counters, |t| t.connections_timed_out >= 4),
        "all four slowloris connections must strike out, got {:?}",
        counters.snapshot()
    );
    for attacker in attackers {
        attacker.join().expect("attacker thread");
    }
    drop(client);
    handle.shutdown();
}

#[test]
fn newline_free_floods_are_rejected_with_bounded_memory() {
    let handle = start_server(ConnectionLimits {
        max_frame_bytes: 64 * 1024,
        ..ConnectionLimits::default()
    });
    let addr = handle.local_addr();
    let counters = handle.transport();

    // A 10 MiB stream with no newline: the server must give up after the
    // 64 KiB frame cap, not buffer the flood.
    let mut chaos = ChaosClient::connect(addr).expect("flood connect");
    chaos
        .set_io_timeout(Some(Duration::from_millis(500)))
        .expect("set deadline");
    let written = chaos.flood(b'a', 10 * 1024 * 1024);
    assert!(written > 64 * 1024, "the flood outran the frame cap");
    assert!(
        wait_for(&counters, |t| t.oversized_requests == 1),
        "the flood must register exactly one oversized rejection, got {:?}",
        counters.snapshot()
    );
    // Best-effort: the framed Error may be lost to the connection reset,
    // but the drain must terminate either way.
    let _ = chaos.drain_within(Duration::from_millis(500));
    drop(chaos);

    // The server survives with memory to spare: normal service continues.
    let mut client = Client::connect(addr).expect("client connect");
    assert!(matches!(
        client.admit(&task()).unwrap(),
        Response::Admitted { .. }
    ));
    drop(client);
    handle.shutdown();
}

#[test]
fn shutdown_returns_promptly_with_silent_clients_connected() {
    let handle = start_server(ConnectionLimits {
        io_timeout: Some(Duration::from_millis(200)),
        idle_strikes: 50, // never strike out during the test
        ..ConnectionLimits::default()
    });
    let addr = handle.local_addr();
    let counters = handle.transport();

    // Three clients connect and go silent; a fourth stalls mid-request.
    let silent: Vec<_> = (0..3)
        .map(|_| ChaosClient::connect(addr).expect("silent connect"))
        .collect();
    let mut partial = ChaosClient::connect(addr).expect("partial connect");
    partial.send(b"{\"Admit\"").expect("partial write");
    assert!(
        wait_for(&counters, |t| t.connections_served == 4),
        "all four connections must reach their handlers"
    );

    // Shutdown must terminate despite the held-open connections: every
    // handler wakes within one read deadline, observes the flag, exits.
    let (tx, rx) = mpsc::channel();
    let shutdown = std::thread::spawn(move || {
        let started = Instant::now();
        handle.shutdown();
        tx.send(started.elapsed()).expect("report elapsed");
    });
    let elapsed = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown() must return with silent clients connected");
    assert!(
        elapsed < Duration::from_secs(6),
        "drain took {elapsed:?}, beyond the deadline bound"
    );
    shutdown.join().expect("shutdown thread");
    assert!(
        counters.snapshot().drained_connections >= 3,
        "the drain must be visible in the counters, got {:?}",
        counters.snapshot()
    );
    drop(silent);
    drop(partial);
}

#[test]
fn over_capacity_connections_get_a_fast_busy_and_clients_retry_through() {
    let handle = start_server(ConnectionLimits {
        max_connections: 1,
        ..ConnectionLimits::default()
    });
    let addr = handle.local_addr();
    let counters = handle.transport();

    // The hog occupies the only permit; a completed request/response pair
    // proves its handler is live before we probe.
    let mut hog = ChaosClient::connect(addr).expect("hog connect");
    hog.send(b"\"Stats\"\n").expect("hog request");
    assert!(
        hog.read_line_within(Duration::from_secs(2))
            .expect("hog read")
            .is_some(),
        "the hog's handler must be serving"
    );

    // A raw probe is turned away with a framed Busy, fast — no deadline
    // expiry involved.
    let mut probe = ChaosClient::connect(addr).expect("probe connect");
    let started = Instant::now();
    let line = probe
        .read_line_within(Duration::from_secs(2))
        .expect("probe read")
        .expect("probe must get a response, not silence");
    assert!(line.contains("Busy"), "expected a Busy line, got {line:?}");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "Busy must be fast, took {:?}",
        started.elapsed()
    );

    // A hardened client retries through the saturation once the hog leaves.
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        drop(hog);
    });
    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            busy_retries: 20,
            backoff_base: Duration::from_millis(30),
            ..ClientConfig::default()
        },
    )
    .expect("client connect");
    assert!(
        matches!(client.admit(&task()).unwrap(), Response::Admitted { .. }),
        "the Busy retry must land once capacity frees up"
    );
    assert!(
        counters.snapshot().busy_rejections >= 1,
        "rejections must be counted, got {:?}",
        counters.snapshot()
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn a_saturated_shard_lends_its_sibling_a_permit_before_anyone_hears_busy() {
    // Two shards, one permit each. Round-robin homing sends consecutive
    // connections to alternating home shards; when a connection's home
    // is saturated it must be served on a *stolen* sibling permit, and
    // only a genuinely full server — every shard saturated — answers
    // Busy. Nothing ever queues behind the saturated shard.
    let handle = start_sharded_server(
        ConnectionLimits {
            io_timeout: Some(Duration::from_secs(2)),
            max_connections: 2,
            ..ConnectionLimits::default()
        },
        2,
    );
    let addr = handle.local_addr();
    let counters = handle.transport();

    // Connections 0 and 1 home to shards 0 and 1 and occupy both permits.
    let mut hogs = Vec::new();
    for i in 0..2 {
        let mut hog = ChaosClient::connect(addr).expect("hog connect");
        hog.send(b"\"Stats\"\n").expect("hog request");
        assert!(
            hog.read_line_within(Duration::from_secs(2))
                .expect("hog read")
                .is_some(),
            "hog {i} must be serving"
        );
        hogs.push(hog);
    }
    let shards = handle.shard_stats();
    assert_eq!(shards.len(), 2);
    assert_eq!(
        shards.iter().map(|s| s.permits).sum::<u64>(),
        2,
        "every permit is owned by exactly one shard"
    );
    assert!(
        shards.iter().all(|s| s.active_connections == 1),
        "round-robin homing fills both shards, got {shards:?}"
    );

    // Drop the shard-1 hog and wait for its permit to come home.
    drop(hogs.pop());
    let drained = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let active: u64 = handle
                .shard_stats()
                .iter()
                .map(|s| s.active_connections)
                .sum();
            if active == 1 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    assert!(drained, "the dropped hog must release its permit");

    // Connection 2 homes to shard 0 — still saturated — and must be
    // served immediately on shard 1's free permit: a steal, not a Busy,
    // and certainly not a queue.
    let mut stealer = ChaosClient::connect(addr).expect("stealer connect");
    stealer.send(b"\"Stats\"\n").expect("stealer request");
    assert!(
        stealer
            .read_line_within(Duration::from_secs(2))
            .expect("stealer read")
            .is_some(),
        "a full home shard must borrow from its sibling, not refuse"
    );
    let shards = handle.shard_stats();
    assert!(
        shards.iter().map(|s| s.permit_steals).sum::<u64>() >= 1,
        "the borrowed permit must be counted as a steal, got {shards:?}"
    );

    // Connection 3: every shard saturated again — a fast framed Busy.
    let mut probe = ChaosClient::connect(addr).expect("probe connect");
    let line = probe
        .read_line_within(Duration::from_secs(2))
        .expect("probe read")
        .expect("a full server must answer, not hang");
    assert!(line.contains("Busy"), "expected Busy, got {line:?}");
    let shards = handle.shard_stats();
    assert_eq!(
        shards.iter().map(|s| s.busy_rejections).sum::<u64>(),
        counters.snapshot().busy_rejections,
        "shard busy tallies must sum to the transport counter"
    );
    assert!(
        counters.snapshot().busy_rejections >= 1,
        "the full-capacity rejection must be counted"
    );

    drop(stealer);
    drop(hogs);
    drop(probe);
    handle.shutdown();
}

#[test]
fn garbage_partial_writes_and_disconnects_leave_the_server_serving() {
    let handle = start_server(ConnectionLimits::default());
    let addr = handle.local_addr();
    let counters = handle.transport();

    // Garbage bytes (not even UTF-8) on a complete line: framed Error.
    let mut garbage = ChaosClient::connect(addr).expect("garbage connect");
    garbage
        .send(b"\x00\xff\xfe total garbage\n")
        .expect("garbage send");
    let line = garbage
        .read_line_within(Duration::from_secs(2))
        .expect("garbage read")
        .expect("garbage must be answered before the drop");
    assert!(line.contains("Error"), "expected Error, got {line:?}");

    // Valid UTF-8, invalid JSON: also a framed Error.
    let mut notjson = ChaosClient::connect(addr).expect("notjson connect");
    notjson.send(b"{this is not json\n").expect("notjson send");
    let line = notjson
        .read_line_within(Duration::from_secs(2))
        .expect("notjson read")
        .expect("malformed JSON must be answered");
    assert!(line.contains("Error"), "expected Error, got {line:?}");

    // A mid-request disconnect (partial line, then write-side close) is
    // dropped quietly — no response, no handler wedge.
    let mut dropped = ChaosClient::connect(addr).expect("dropped connect");
    dropped.send(b"{\"Admit\":{\"task\"").expect("partial send");
    dropped.disconnect_write().expect("half close");
    assert_eq!(
        dropped
            .read_line_within(Duration::from_secs(2))
            .expect("dropped read"),
        None,
        "a mid-request disconnect gets EOF, not a response"
    );

    assert!(
        wait_for(&counters, |t| t.malformed_requests >= 2),
        "both malformed requests must be counted, got {:?}",
        counters.snapshot()
    );

    // After all of it, a well-formed client is served normally.
    let mut client = Client::connect(addr).expect("client connect");
    assert!(matches!(
        client.admit(&task()).unwrap(),
        Response::Admitted { .. }
    ));
    drop(client);
    handle.shutdown();
}

#[test]
fn client_calls_fail_within_the_deadline_against_a_stalled_server() {
    // A listener that accepts nothing: connections sit in the backlog and
    // no byte is ever answered.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind stall");
    let addr = listener.local_addr().expect("stall addr");

    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            io_timeout: Some(Duration::from_millis(300)),
            ..ClientConfig::default()
        },
    )
    .expect("connect lands in the backlog");
    let started = Instant::now();
    let err = client.stats().expect_err("the call must not hang");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "expected a deadline error, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the deadline must bound the call, took {:?}",
        started.elapsed()
    );
    drop(listener);
}

#[test]
fn per_connection_request_budgets_force_reconnection() {
    let handle = start_server(ConnectionLimits {
        max_requests_per_connection: 3,
        ..ConnectionLimits::default()
    });
    let addr = handle.local_addr();
    let counters = handle.transport();

    let mut client = Client::connect(addr).expect("client connect");
    for _ in 0..3 {
        assert!(matches!(client.stats().unwrap(), Response::Stats { .. }));
    }
    // The budget notice was framed after the third response and the
    // connection closed; depending on buffering the fourth call sees the
    // Error line or the closed stream. Either way it terminates.
    match client.stats() {
        Ok(Response::Error { message }) => {
            assert!(message.contains("budget"), "unexpected error: {message}");
        }
        Ok(other) => panic!("the fourth call cannot succeed, got {other:?}"),
        Err(_) => {}
    }
    assert!(
        wait_for(&counters, |t| t.budget_exhausted == 1),
        "the exhausted budget must be counted, got {:?}",
        counters.snapshot()
    );
    // The client reconnects transparently and service continues.
    assert!(matches!(client.stats().unwrap(), Response::Stats { .. }));
    drop(client);
    handle.shutdown();
}

#[test]
fn every_chaos_counter_surfaces_in_the_live_prometheus_exposition() {
    let handle = start_server(ConnectionLimits {
        max_frame_bytes: 1024,
        ..ConnectionLimits::default()
    });
    let addr = handle.local_addr();
    let counters = handle.transport();

    // One oversized flood and one malformed line.
    let mut flood = ChaosClient::connect(addr).expect("flood connect");
    flood
        .set_io_timeout(Some(Duration::from_millis(500)))
        .expect("set deadline");
    flood.flood(b'x', 8 * 1024);
    let mut garbage = ChaosClient::connect(addr).expect("garbage connect");
    garbage.send(b"nonsense\n").expect("garbage send");
    assert!(
        wait_for(&counters, |t| t.oversized_requests == 1
            && t.malformed_requests == 1),
        "both incidents must be counted, got {:?}",
        counters.snapshot()
    );

    let mut client = Client::connect(addr).expect("client connect");
    let Response::Metrics { text } = client.stats_prometheus().expect("scrape") else {
        panic!("StatsPrometheus answered something else");
    };
    fedsched_telemetry::validate_exposition(&text).expect("exposition parses");
    for line in [
        "fedsched_oversized_requests_total 1",
        "fedsched_malformed_requests_total 1",
    ] {
        assert!(
            text.lines().any(|l| l == line),
            "expected {line:?} in the exposition:\n{text}"
        );
    }
    assert!(
        text.lines()
            .any(|l| l.starts_with("fedsched_connections_served_total ")),
        "served connections render:\n{text}"
    );
    drop(client);
    drop(flood);
    drop(garbage);
    handle.shutdown();
}

#[test]
fn a_durable_server_under_hostile_traffic_recovers_to_its_exact_final_state() {
    let dir = scratch_dir("hostile");
    let handle = start_durable_server(&dir);
    let addr = handle.local_addr();

    // Hostile traffic interleaved with real decisions: garbage lines and a
    // mid-request disconnect must not leave half-written journal entries.
    let mut garbage = ChaosClient::connect(addr).expect("garbage connect");
    garbage.send(b"\x00\xff not json\n").expect("garbage send");
    let mut client = Client::connect(addr).expect("client connect");
    let mut placements: Vec<(u64, Placement)> = Vec::new();
    for i in 0..6 {
        let Response::Admitted {
            token, placement, ..
        } = client.admit(&task()).unwrap()
        else {
            panic!("admission {i} must land");
        };
        placements.push((token, placement));
    }
    let mut dropped = ChaosClient::connect(addr).expect("dropped connect");
    dropped.send(b"{\"Admit\":{\"task\"").expect("partial send");
    dropped.disconnect_write().expect("half close");
    let (removed_token, _) = placements.remove(2);
    assert!(matches!(
        client.remove(removed_token).unwrap(),
        Response::Removed { .. }
    ));
    // The removal replays the shared pool and may migrate survivors:
    // re-query for the placements actually in force at shutdown.
    for (token, placement) in &mut placements {
        let Response::TaskInfo { placement: now, .. } = client.query(*token).unwrap() else {
            panic!("token {token} must still be resident");
        };
        *placement = now;
    }
    let Response::Stats { snapshot: live } = client.stats().unwrap() else {
        panic!("stats answered something else");
    };
    assert!(live.durability.enabled, "journaling must be on");
    assert!(
        live.durability.wal_records_appended >= 7,
        "6 admits + 1 depart"
    );
    assert!(live.durability.wal_len_bytes > 0);
    assert!(live.durability.wal_fsyncs >= live.durability.wal_records_appended);
    drop(client);
    drop(garbage);
    drop(dropped);
    handle.shutdown();

    // Offline recovery must reproduce the exact final state: same
    // decision counters, same resident placements, token for token.
    let (_store, recovered) = DurableStore::open(StoreConfig::new(&dir)).expect("reopen journal");
    let (state, report) = recover_state(AdmissionConfig::new(16).with_telemetry(256), &recovered)
        .expect("journal replays cleanly");
    assert_eq!(report.replayed_records, recovered.suffix.len() as u64);
    let rec = state.snapshot();
    assert_eq!(rec.admitted_high + rec.admitted_low, 6);
    assert_eq!(rec.removed, 1);
    assert_eq!(
        (rec.cache_hits, rec.cache_misses),
        (live.cache_hits, live.cache_misses)
    );
    assert_eq!(state.resident_tasks(), placements.len());
    for (token, placement) in &placements {
        assert_eq!(
            state.query(*token).as_ref(),
            Some(placement),
            "placement for token {token} must survive recovery"
        );
    }
    assert_eq!(state.query(removed_token), None, "the removal must survive");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_wal_tail_is_truncated_and_the_server_restarts_serving() {
    let dir = scratch_dir("torn-tail");
    let handle = start_durable_server(&dir);
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).expect("client connect");
    let Response::Admitted {
        token, placement, ..
    } = client.admit(&task()).unwrap()
    else {
        panic!("seed admission must land");
    };
    drop(client);
    handle.shutdown();

    // A crash mid-append leaves a torn frame: a header promising more
    // payload than ever reached the disk.
    let wal = dir.join(fedsched_durable::WAL_FILE);
    let clean_len = std::fs::metadata(&wal).expect("wal exists").len();
    let mut torn = std::fs::read(&wal).expect("read wal");
    torn.extend_from_slice(&100u32.to_le_bytes()); // len: 100 bytes promised
    torn.extend_from_slice(&0u32.to_le_bytes()); // crc (never checked: torn first)
    torn.extend_from_slice(b"half"); // 4 of 100 payload bytes
    std::fs::write(&wal, &torn).expect("tear the tail");

    // Restart on the same directory: the torn tail is truncated, every
    // complete frame survives, and the server picks up where it left off.
    let handle = start_durable_server(&dir);
    let boot = handle.boot_report().expect("durability enabled");
    assert_eq!(boot.truncated_bytes, 12, "exactly the torn frame goes");
    assert_eq!(
        std::fs::metadata(&wal).expect("wal exists").len(),
        clean_len,
        "truncation restores the last clean length"
    );
    let mut client = Client::connect(handle.local_addr()).expect("reconnect");
    let Response::TaskInfo {
        placement: survived,
        ..
    } = client.query(token).unwrap()
    else {
        panic!("the pre-crash admission must still be resident");
    };
    assert_eq!(survived, placement);
    assert!(
        matches!(client.admit(&task()).unwrap(), Response::Admitted { .. }),
        "new admissions must proceed after recovery"
    );
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_thousand_slowloris_connections_cannot_wedge_the_reactor() {
    // The C10k-style attack the reactor exists for: 1,000 connections
    // held open mid-frame at once. Thread-per-connection would burn a
    // thousand stacks on this; the reactor must hold every socket on its
    // shard loops without spawning anything, answer a healthy client
    // within one io-timeout while the attack is live, and strike every
    // attacker out on schedule. Pinned to `ConnModel::Reactor` — the
    // threaded plane is exercised by the rest of the suite.
    const ATTACKERS: usize = 1000;
    let io_timeout = Duration::from_secs(1);
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 2,
        conn_model: ConnModel::Reactor,
        admission: AdmissionConfig::new(16).with_telemetry(256),
        limits: ConnectionLimits {
            io_timeout: Some(io_timeout),
            idle_strikes: 3,
            max_connections: ATTACKERS + 8,
            ..ConnectionLimits::default()
        },
        durability: None,
        handoff_from: None,
    })
    .expect("bind loopback");
    let addr = handle.local_addr();
    let counters = handle.transport();

    let threads_before = std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0);

    // Every attacker opens a socket and stalls mid-frame, keeping the
    // connection (and its server-side buffer) alive until it strikes out.
    let mut attackers = Vec::with_capacity(ATTACKERS);
    for _ in 0..ATTACKERS {
        let mut s = std::net::TcpStream::connect(addr).expect("attacker connect");
        use std::io::Write as _;
        s.write_all(b"{\"Admit\":{")
            .expect("attacker partial frame");
        attackers.push(s);
    }

    // Every attacker lands on a shard reactor. The registered-fd gauge
    // alone is racy here: on a loaded machine the connect loop above can
    // outlast the strike-out window, so early attackers may already be
    // reaped while late ones are still registering. Parked + reaped is
    // monotone and proves each of the 1,000 sockets was held by a
    // reactor (the plane is pinned, so every timeout is a reactor's).
    let parked = {
        let deadline = Instant::now() + io_timeout * 3 + Duration::from_secs(10);
        loop {
            let fds: u64 = handle
                .shard_stats()
                .iter()
                .map(|s| s.reactor_registered_fds)
                .sum();
            let reaped = counters.snapshot().connections_timed_out;
            if fds + reaped >= ATTACKERS as u64 || Instant::now() >= deadline {
                break fds + reaped;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    assert!(
        parked >= ATTACKERS as u64,
        "every attacker must be parked on a reactor, saw {parked}"
    );
    // Bounded resources: the attack adds sockets, never threads. The
    // server runs a fixed crew (acceptors, reactors, dispatchers); even
    // with generous slack for the test harness, a thread-per-connection
    // plane would blow far past this.
    let threads_during = std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(usize::MAX);
    assert!(
        threads_during < threads_before + 64,
        "the reactor must not spawn per-connection threads: \
         {threads_before} before, {threads_during} during"
    );

    // A healthy client is answered while the attack is at full strength.
    let mut client = Client::connect(addr).expect("healthy connect");
    let started = Instant::now();
    assert!(
        matches!(client.admit(&task()).unwrap(), Response::Admitted { .. }),
        "admissions must go through mid-attack"
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed < io_timeout,
        "a healthy request must be answered within one io-timeout, took {elapsed:?}"
    );
    drop(client);

    // Every attacker strikes out on the idle deadline and is dropped;
    // the registered-fd gauges drain back down with them.
    let deadline = Instant::now() + io_timeout * 3 + Duration::from_secs(10);
    loop {
        let timed_out = counters.snapshot().connections_timed_out;
        if timed_out >= ATTACKERS as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {timed_out}/{ATTACKERS} attackers struck out in time"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        wait_for(&counters, |t| t.read_timeouts >= ATTACKERS as u64),
        "every strike-out implies at least one read timeout, got {:?}",
        counters.snapshot()
    );
    let fds: u64 = handle
        .shard_stats()
        .iter()
        .map(|s| s.reactor_registered_fds)
        .sum();
    assert_eq!(fds, 0, "dropped attackers must leave no registered fds");

    drop(attackers);
    handle.shutdown();
}

#[test]
fn stage_histogram_counts_equal_the_request_total_under_fault_injection() {
    // The per-stage decomposition's core invariant: every *fully
    // answered* request lands exactly once in each of the six stage
    // histograms — and aborted paths (garbage frames, floods, slowloris
    // strike-outs) land in none of them. Fault traffic must not be able
    // to desynchronize the columns.
    let handle = start_server(ConnectionLimits {
        io_timeout: Some(Duration::from_millis(150)),
        idle_strikes: 2,
        max_frame_bytes: 4 * 1024,
        ..ConnectionLimits::default()
    });
    let addr = handle.local_addr();
    let counters = handle.transport();

    // Fault injection: a garbage line (malformed → answered but aborted
    // before dispatch), a newline-free flood (oversized), and a slowloris
    // trickle (strikes out without ever completing a frame).
    let mut garbage = ChaosClient::connect(addr).expect("garbage connect");
    garbage.send(b"\x00\xffnot json at all\n").expect("send");
    let mut flood = ChaosClient::connect(addr).expect("flood connect");
    flood
        .set_io_timeout(Some(Duration::from_millis(500)))
        .expect("set deadline");
    let _ = flood.flood(b'a', 64 * 1024);
    let trickler = std::thread::spawn(move || {
        let mut chaos = ChaosClient::connect(addr).expect("trickle connect");
        chaos.trickle(b"{\"Admit\":{", Duration::from_millis(400));
    });

    // Interleaved real traffic: admissions, queries (hit and miss),
    // stats, and a Prometheus fetch — every one a fully answered request.
    let mut client = Client::connect(addr).expect("client connect");
    let mut answered = 0u64;
    let mut tokens = Vec::new();
    for _ in 0..5 {
        match client.admit(&task()).unwrap() {
            Response::Admitted { token, .. } => tokens.push(token),
            other => panic!("admit answered {other:?}"),
        }
        answered += 1;
    }
    for token in &tokens {
        assert!(matches!(
            client.query(*token).unwrap(),
            Response::TaskInfo { .. }
        ));
        answered += 1;
    }
    assert!(matches!(
        client.query(u64::MAX).unwrap(),
        Response::NotFound { .. }
    ));
    answered += 1;
    assert!(matches!(
        client.stats_prometheus().unwrap(),
        Response::Metrics { .. }
    ));
    answered += 1;

    // Let the fault traffic finish registering before the final readout.
    assert!(
        wait_for(&counters, |t| {
            t.oversized_requests >= 1 && t.malformed_requests >= 1 && t.connections_timed_out >= 1
        }),
        "all three fault modes must register, got {:?}",
        counters.snapshot()
    );
    trickler.join().expect("trickle thread");
    drop(client);

    // The first client sat idle while the fault traffic drained, so the
    // server may have struck it out — read the totals over a fresh
    // connection. The snapshot is assembled before the Stats request
    // itself is recorded, so it is not part of its own count.
    let mut reader = Client::connect(addr).expect("reader connect");
    let Response::Stats { snapshot } = reader.stats().unwrap() else {
        panic!("stats answered something else");
    };
    assert_eq!(
        snapshot.stages.requests_total, answered,
        "only fully answered requests count"
    );
    for stage in fedsched_service::stats::RequestStage::ALL {
        let total: u64 = snapshot.stages.buckets(stage).iter().sum();
        assert_eq!(
            total,
            answered,
            "stage {} histogram must count each answered request exactly once",
            stage.name()
        );
    }
    drop(reader);
    drop(garbage);
    drop(flood);
    handle.shutdown();
}
