//! Smoke test for the metrics surface: start a real server, admit a task,
//! and assert the Prometheus exposition parses — every non-comment line
//! matches `name{labels} value` — over both transports (the
//! `StatsPrometheus` protocol request and a raw HTTP `GET /metrics`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_service::client::Client;
use fedsched_service::protocol::Response;
use fedsched_service::server::{serve, ConnectionLimits, ServerConfig, ServerHandle};
use fedsched_service::state::AdmissionConfig;

fn start_server() -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 1,
        conn_model: Default::default(),
        admission: AdmissionConfig::new(8).with_telemetry(256),
        limits: ConnectionLimits::default(),
        durability: None,
        handoff_from: None,
    })
    .expect("bind loopback")
}

fn task() -> DagTask {
    DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8)).expect("valid task")
}

#[test]
fn exposition_parses_after_an_admission() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let admitted = client.admit_traced(&task(), 7).expect("admit call");
    let Response::Admitted { trace_id, .. } = admitted else {
        panic!("admit answered {admitted:?}");
    };
    assert_eq!(trace_id, Some(7), "server echoes the trace id");

    let Response::Metrics { text } = client.stats_prometheus().expect("stats call") else {
        panic!("StatsPrometheus answered something else");
    };
    fedsched_telemetry::validate_exposition(&text).expect("exposition parses");
    assert!(
        text.lines()
            .any(|l| l == "fedsched_admitted_total{density=\"low\"} 1"),
        "admission shows up in the counters:\n{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("fedsched_admit_latency_us_count 1")),
        "latency histogram counted the decision:\n{text}"
    );
    // Transport-hardening counters ride along in the same exposition.
    assert!(
        text.lines()
            .any(|l| l.starts_with("fedsched_connections_served_total ")),
        "connection counter is exposed:\n{text}"
    );
    for name in [
        "fedsched_busy_rejections_total 0",
        "fedsched_read_timeouts_total 0",
        "fedsched_oversized_requests_total 0",
        "fedsched_drained_connections_total 0",
    ] {
        assert!(
            text.lines().any(|l| l == name),
            "quiet counter {name:?} renders as zero:\n{text}"
        );
    }

    // The server state retained the admission's telemetry, stamped with
    // the request's trace id.
    {
        let state = handle.state();
        let state = state.lock().expect("state lock");
        assert!(state
            .telemetry_events()
            .iter()
            .any(|e| e.trace_id() == Some(fedsched_telemetry::TraceId(7))));
    }

    client.shutdown().expect("shutdown call");
    handle.join();
}

#[test]
fn raw_http_get_metrics_scrape_works() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.admit(&task()).expect("admit");

    // Scrape exactly as a Prometheus server would: plain HTTP/1.1.
    let mut scrape = TcpStream::connect(handle.local_addr()).expect("connect scrape");
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send request");
    let mut reader = BufReader::new(scrape);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    assert!(
        status.starts_with("HTTP/1.0 200 OK"),
        "unexpected status {status:?}"
    );
    let mut body = String::new();
    let mut in_body = false;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read") == 0 {
            break;
        }
        if in_body {
            body.push_str(&line);
        } else if line.trim_end().is_empty() {
            in_body = true;
        }
    }
    fedsched_telemetry::validate_exposition(&body).expect("scraped body parses");
    assert!(body.contains("fedsched_processors 8"), "{body}");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn stage_histogram_counts_match_requests_total_over_a_live_scrape() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Drive a mix of fully answered requests: admissions, a query hit, a
    // query miss, and a protocol-level Prometheus fetch (which, unlike an
    // HTTP scrape, is itself a recorded NDJSON request).
    let mut token = None;
    for _ in 0..3 {
        let Response::Admitted { token: t, .. } = client.admit(&task()).expect("admit") else {
            panic!("admit rejected the sequential task");
        };
        token = Some(t);
    }
    assert!(matches!(
        client.query(token.expect("admitted")).expect("query"),
        Response::TaskInfo { .. }
    ));
    assert!(matches!(
        client.query(u64::MAX).expect("query miss"),
        Response::NotFound { .. }
    ));
    assert!(matches!(
        client.stats_prometheus().expect("metrics"),
        Response::Metrics { .. }
    ));
    let answered = 6u64;

    // Scrape over HTTP — the scrape itself bypasses the NDJSON pipeline
    // and must not bump the totals it reports.
    let mut scrape = TcpStream::connect(handle.local_addr()).expect("connect scrape");
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send request");
    let mut reader = BufReader::new(scrape);
    let mut body = String::new();
    let mut in_body = false;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read") == 0 {
            break;
        }
        if in_body {
            body.push_str(&line);
        } else if line.trim_end().is_empty() {
            in_body = true;
        }
    }
    fedsched_telemetry::validate_exposition(&body).expect("scraped body parses");

    assert!(
        body.lines()
            .any(|l| l == format!("fedsched_requests_total {answered}")),
        "request total counts every answered NDJSON request:\n{body}"
    );
    // Every stage histogram's _count column agrees with the request
    // total — the decomposition never drops or double-counts a stage.
    let mut stages_seen = 0;
    for l in body.lines() {
        let Some(rest) = l.strip_prefix("fedsched_stage_duration_") else {
            continue;
        };
        let Some((name, value)) = rest.split_once("_us_count ") else {
            continue;
        };
        assert_eq!(
            value.trim(),
            answered.to_string(),
            "stage {name} _count must equal fedsched_requests_total:\n{body}"
        );
        stages_seen += 1;
    }
    assert_eq!(
        stages_seen,
        fedsched_service::stats::RequestStage::ALL.len(),
        "every stage exports a histogram:\n{body}"
    );

    client.shutdown().expect("shutdown");
    handle.join();
}
