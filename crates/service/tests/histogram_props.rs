//! Property-based coverage for [`LatencyHistogram`]: the bucket export
//! and import must be lossless inverses, and derived quantiles must
//! behave like quantiles — monotone in the probability, bounded by the
//! bucket edges, and never below the true value.

use std::time::Duration;

use fedsched_service::stats::{LatencyHistogram, LATENCY_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// `from_buckets` ∘ `buckets` is the identity: a histogram exported
    /// over the wire (stats snapshots ship raw bucket arrays) rebuilds
    /// into an equal histogram, quantiles included.
    #[test]
    fn buckets_roundtrip_through_from_buckets(
        counts in prop::collection::vec(0u64..=1_000, LATENCY_BUCKETS)
    ) {
        let original = LatencyHistogram::from_buckets(&counts);
        let rebuilt = LatencyHistogram::from_buckets(original.buckets());
        prop_assert_eq!(rebuilt.buckets(), original.buckets());
        prop_assert_eq!(rebuilt.total(), counts.iter().sum::<u64>());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(rebuilt.quantile(q), original.quantile(q));
        }
    }

    /// A short export (older peer) zero-fills and a long one (newer peer)
    /// saturates into the last open-ended bucket — either way the total
    /// count survives.
    #[test]
    fn from_buckets_tolerates_foreign_lengths(
        counts in prop::collection::vec(0u64..=1_000, 0..LATENCY_BUCKETS + 8)
    ) {
        let h = LatencyHistogram::from_buckets(&counts);
        prop_assert_eq!(h.total(), counts.iter().sum::<u64>());
        for (i, &c) in counts.iter().take(LATENCY_BUCKETS - 1).enumerate() {
            prop_assert_eq!(h.buckets()[i], c);
        }
    }

    /// Quantiles are monotone in the probability: for q ≤ r, the q-th
    /// bucket edge never exceeds the r-th.
    #[test]
    fn quantiles_are_monotone_in_q(
        counts in prop::collection::vec(0u64..=1_000, LATENCY_BUCKETS),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = LatencyHistogram::from_buckets(&counts);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        match (h.quantile(lo), h.quantile(hi)) {
            (Some(a), Some(b)) => prop_assert!(a <= b, "q{lo} = {a} > q{hi} = {b}"),
            (None, None) => prop_assert_eq!(h.total(), 0),
            (a, b) => prop_assert!(false, "one quantile empty: {a:?} vs {b:?}"),
        }
    }

    /// The derived quantile is an upper bound on every recorded sample
    /// (the HELP text's promise): recording any set of durations, the
    /// 1.0-quantile edge is at least the largest recorded microsecond
    /// value, and at most 2x above it (power-of-two buckets).
    /// Samples stay below 2^21 µs: anything larger lands in the final
    /// open-ended bucket, whose "edge" is u64::MAX by design.
    #[test]
    fn quantile_upper_bounds_recorded_samples(
        micros in prop::collection::vec(0u64..=2_000_000, 1..50)
    ) {
        let mut h = LatencyHistogram::new();
        for &us in &micros {
            h.record(Duration::from_micros(us));
        }
        let max_us = *micros.iter().max().expect("non-empty");
        let edge = h.quantile(1.0).expect("samples were recorded");
        prop_assert!(edge >= max_us, "edge {edge} below the sample {max_us}");
        // Within 2x of the true value (exclusive power-of-two edges),
        // except in the tiny first bucket where the edge is fixed at 2.
        prop_assert!(
            edge <= (max_us.max(1)).saturating_mul(2),
            "edge {edge} more than 2x above the sample {max_us}"
        );
    }
}

/// Zero everywhere means no quantile at all, not a zero quantile.
#[test]
fn empty_histogram_has_no_quantiles() {
    let h = LatencyHistogram::from_buckets(&[]);
    assert_eq!(h.total(), 0);
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(h.quantile(q), None);
    }
}
