//! Blue/green warm restarts: `handoff_from` imports the template-cache
//! section of another server's snapshot directory. These tests drive a
//! real donor server to produce snapshots, then boot receivers against
//! that directory and check what was (and was not) absorbed.

use std::path::{Path, PathBuf};

use fedsched_dag::graph::DagBuilder;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration as Ticks;
use fedsched_durable::{list_snapshots, snapshot_file_name, FsyncPolicy, StoreConfig};
use fedsched_service::client::Client;
use fedsched_service::protocol::Response;
use fedsched_service::server::{serve, ConnectionLimits, ServerConfig, ServerHandle};
use fedsched_service::state::AdmissionConfig;

/// A fresh scratch directory for one handoff test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedsched-handoff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable donor that snapshots after every record, so the directory
/// always holds a snapshot covering everything the donor has decided.
fn start_donor(dir: &Path) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 1,
        conn_model: Default::default(),
        admission: AdmissionConfig::new(16),
        limits: ConnectionLimits::default(),
        durability: Some(StoreConfig {
            fsync: FsyncPolicy::Every,
            snapshot_every_records: 1,
            ..StoreConfig::new(dir)
        }),
        handoff_from: None,
    })
    .expect("bind donor")
}

fn start_receiver(handoff_from: Option<PathBuf>, durability: Option<StoreConfig>) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 1,
        conn_model: Default::default(),
        admission: AdmissionConfig::new(16),
        limits: ConnectionLimits::default(),
        durability,
        handoff_from,
    })
    .expect("bind receiver")
}

/// A high-density shape (6 unit jobs due in 2 ticks, μ* = 3): only these
/// run `MINPROCS`, so only these populate the template cache.
fn wide_task() -> DagTask {
    let mut b = DagBuilder::new();
    b.add_vertices([1, 1, 1, 1, 1, 1].map(Ticks::new));
    DagTask::new(b.build().unwrap(), Ticks::new(2), Ticks::new(10)).unwrap()
}

/// A second, distinct high-density shape (8 unit jobs due in 2 ticks).
fn wider_task() -> DagTask {
    let mut b = DagBuilder::new();
    b.add_vertices([1, 1, 1, 1, 1, 1, 1, 1].map(Ticks::new));
    DagTask::new(b.build().unwrap(), Ticks::new(2), Ticks::new(10)).unwrap()
}

fn admit(client: &mut Client, task: &DagTask) -> u64 {
    match client.admit(task).expect("admit transport") {
        Response::Admitted { token, .. } => token,
        other => panic!("admit answered {other:?}"),
    }
}

fn stats(client: &mut Client) -> fedsched_service::stats::StatsSnapshot {
    match client.stats().expect("stats transport") {
        Response::Stats { snapshot } => snapshot,
        other => panic!("stats answered {other:?}"),
    }
}

/// Drives `task` through a donor on `dir` so its sizing lands in a
/// snapshot, then shuts the donor down.
fn seed_donor(dir: &Path, tasks: &[DagTask]) {
    let donor = start_donor(dir);
    let mut client = Client::connect(donor.local_addr()).expect("connect donor");
    for task in tasks {
        admit(&mut client, task);
    }
    drop(client);
    donor.shutdown();
    assert!(
        !list_snapshots(dir)
            .expect("list donor snapshots")
            .is_empty(),
        "donor must leave at least one snapshot behind"
    );
}

#[test]
fn handoff_imports_the_donor_template_cache() {
    let dir = scratch_dir("import");
    seed_donor(&dir, &[wide_task()]);

    let handle = start_receiver(Some(dir.clone()), None);
    assert_eq!(
        handle.handoff_absorbed(),
        Some(1),
        "the donor sized exactly one shape"
    );

    // First sight of the donor's shape on the receiver must already hit.
    let mut client = Client::connect(handle.local_addr()).expect("connect receiver");
    admit(&mut client, &wide_task());
    let snap = stats(&mut client);
    assert_eq!((snap.cache_hits, snap.cache_misses), (1, 0));
    assert_eq!(snap.cache_entries, 1);
    // Imported warmth is cache-only: no placements or tokens came along.
    assert_eq!(snap.resident_tasks, 1);
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_donor_directory_imports_nothing() {
    let dir = scratch_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let handle = start_receiver(Some(dir.clone()), None);
    assert_eq!(handle.handoff_absorbed(), Some(0));

    // The receiver still works from cold.
    let mut client = Client::connect(handle.local_addr()).expect("connect receiver");
    admit(&mut client, &wide_task());
    let snap = stats(&mut client);
    assert_eq!((snap.cache_hits, snap.cache_misses), (0, 1));
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_donor_directory_is_a_boot_error() {
    let dir = scratch_dir("missing"); // never created
    let err = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 1,
        conn_model: Default::default(),
        admission: AdmissionConfig::new(16),
        limits: ConnectionLimits::default(),
        durability: None,
        handoff_from: Some(dir),
    });
    assert!(err.is_err(), "a nonexistent handoff dir must fail loudly");
}

#[test]
fn damaged_newest_snapshot_falls_back_to_an_older_one() {
    let dir = scratch_dir("damaged");
    seed_donor(&dir, &[wide_task()]);

    // Plant a damaged snapshot *newer* than the donor's real one; the
    // import must skip it and fall back to the older, loadable snapshot.
    let seqs = list_snapshots(&dir).expect("list donor snapshots");
    let newest = *seqs.last().unwrap();
    std::fs::write(dir.join(snapshot_file_name(newest + 1)), b"garbage").unwrap();

    let handle = start_receiver(Some(dir.clone()), None);
    assert_eq!(
        handle.handoff_absorbed(),
        Some(1),
        "the older snapshot must still supply the donor's shape"
    );

    let mut client = Client::connect(handle.local_addr()).expect("connect receiver");
    admit(&mut client, &wide_task());
    let snap = stats(&mut client);
    assert_eq!(
        (snap.cache_hits, snap.cache_misses),
        (1, 0),
        "the first donor shape must have survived the fallback"
    );
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_receiver_restarts_cleanly_after_a_handoff() {
    let donor_dir = scratch_dir("durable-donor");
    let recv_dir = scratch_dir("durable-recv");
    seed_donor(&donor_dir, &[wide_task()]);

    // A durable receiver warm-starts from the donor, then takes decisions
    // whose logged `cache_hit` flags depend on the imported warmth. The
    // handoff path compacts immediately after absorbing, so a crash
    // recovery replays from a snapshot that already contains the import —
    // without that, replaying the hit-flagged decision from a cold cache
    // would be detected as divergence and refuse to boot.
    let token;
    {
        let handle = start_receiver(
            Some(donor_dir.clone()),
            Some(StoreConfig {
                fsync: FsyncPolicy::Every,
                ..StoreConfig::new(&recv_dir)
            }),
        );
        assert_eq!(handle.handoff_absorbed(), Some(1));
        let mut client = Client::connect(handle.local_addr()).expect("connect receiver");
        token = admit(&mut client, &wide_task()); // a hit only thanks to the import
        admit(&mut client, &wider_task()); // a genuine miss, logged as such
        let snap = stats(&mut client);
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        drop(client);
        handle.shutdown();
    }

    // Restart on the same data directory, no handoff this time: replay
    // must accept the logged decisions and reproduce the exact state.
    let handle = start_receiver(None, Some(StoreConfig::new(&recv_dir)));
    assert_eq!(handle.handoff_absorbed(), None);
    let mut client = Client::connect(handle.local_addr()).expect("reconnect receiver");
    match client.query(token).expect("query transport") {
        Response::TaskInfo { token: t, .. } => assert_eq!(t, token),
        other => panic!("query answered {other:?}"),
    }
    let snap = stats(&mut client);
    assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
    assert_eq!(snap.cache_entries, 2);
    assert_eq!(snap.resident_tasks, 2);
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&donor_dir);
    let _ = std::fs::remove_dir_all(&recv_dir);
}
