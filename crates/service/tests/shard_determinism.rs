//! Cross-shard determinism: the sharded connection plane is a pure
//! concurrency structure, so the *decisions* it produces must be
//! byte-identical at any shard count.
//!
//! Randomized (seeded, proptest-style) admit/remove interleavings are
//! driven sequentially — one connection, one in-flight request — against
//! servers running `--shards 1`, `2`, and `8`, and the suite asserts
//! three layers of identity:
//!
//! * the raw NDJSON response bytes, request for request;
//! * the deterministic slice of the stats snapshot (decision counters,
//!   cache traffic, the analysis probe's deterministic view);
//! * the write-ahead-log bytes on disk after shutdown.
//!
//! Sequential driving matters: pipelined batches are committed
//! atomically per batch, so concurrent clients could interleave
//! differently per run — but then the *inputs* differ, which is outside
//! this suite's claim. Same input order in, same bytes out.
//!
//! A churn soak rides along for the bounded template cache: admissions
//! over more distinct shapes than the cap must pin `cache_entries` to
//! the cap and surface the overflow in `cache_evictions`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use fedsched_dag::graph::DagBuilder;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration as Ticks;
use fedsched_durable::{FsyncPolicy, StoreConfig};
use fedsched_service::protocol::{Request, Response};
use fedsched_service::{
    serve, AdmissionConfig, ConnModel, ConnectionLimits, ServerConfig, ServerHandle, StatsSnapshot,
};

/// A fresh scratch directory for one durable run.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedsched-shard-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The connection plane the shard sweep runs under:
/// `FEDSCHED_CONN_MODEL=threads|reactor` reruns the suite against either
/// plane (CI runs both); unset falls back to the server default.
fn conn_model() -> ConnModel {
    match std::env::var("FEDSCHED_CONN_MODEL") {
        Ok(v) => v
            .parse()
            .expect("FEDSCHED_CONN_MODEL must be threads|reactor"),
        Err(_) => ConnModel::default(),
    }
}

fn start(shards: usize, cache_cap: usize, dir: Option<&PathBuf>) -> ServerHandle {
    start_with_model(shards, cache_cap, dir, conn_model())
}

fn start_with_model(
    shards: usize,
    cache_cap: usize,
    dir: Option<&PathBuf>,
    conn_model: ConnModel,
) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards,
        conn_model,
        admission: AdmissionConfig::new(16).with_cache_cap(cache_cap),
        limits: ConnectionLimits::default(),
        durability: dir.map(|dir| StoreConfig {
            fsync: FsyncPolicy::Every,
            ..StoreConfig::new(dir)
        }),
        handoff_from: None,
    })
    .expect("bind loopback")
}

/// Deterministic xorshift64 — the suite's own RNG so the interleaving
/// is stable across toolchains (no external RNG semantics involved).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A pool of distinct task shapes: sequential chains (always low
/// density), wide parallel tasks (high density when the deadline sits
/// under the volume — these claim dedicated clusters), and one
/// always-rejected arbitrary-deadline shape.
fn shape_pool(variants: usize) -> Vec<DagTask> {
    let mut pool = Vec::new();
    for i in 0..variants as u64 {
        let exec = 1 + i % 3;
        let deadline = exec + 3 + i % 5;
        let period = deadline + 2 + i % 7;
        pool.push(
            DagTask::sequential(Ticks::new(exec), Ticks::new(deadline), Ticks::new(period))
                .expect("chain shape is valid"),
        );
        let width = 2 + (i as usize) % 4;
        let mut b = DagBuilder::new();
        for v in 0..width as u64 {
            b.add_vertex(Ticks::new(2 + (i + v) % 3));
        }
        let volume: u64 = (0..width as u64).map(|v| 2 + (i + v) % 3).sum();
        // Deadline below the volume but at/above the longest vertex:
        // chain-feasible, dense enough for a dedicated cluster.
        let deadline = (volume - 1).max(4);
        pool.push(
            DagTask::new(
                b.build().expect("parallel shape builds"),
                Ticks::new(deadline),
                Ticks::new(deadline + 4 + i % 5),
            )
            .expect("parallel shape is valid"),
        );
    }
    // D > T: FEDCONS refuses outright, exercising the rejected path.
    pool.push(
        DagTask::sequential(Ticks::new(1), Ticks::new(9), Ticks::new(4))
            .expect("arbitrary-deadline shape is valid"),
    );
    pool
}

/// One sequential client run: a seeded interleaving of admits and
/// removes over the shape pool, one request in flight at a time.
/// Returns the raw response line per request plus the final snapshot.
fn drive(addr: std::net::SocketAddr, seed: u64, operations: usize) -> (Vec<String>, StatsSnapshot) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut call = |request: &Request| -> String {
        let mut line = serde_json::to_string(request).expect("serialize request");
        line.push('\n');
        reader
            .get_ref()
            .write_all(line.as_bytes())
            .expect("send request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        assert!(response.ends_with('\n'), "truncated response");
        response
    };

    let pool = shape_pool(6);
    let mut rng = XorShift::new(seed);
    let mut tokens: Vec<u64> = Vec::new();
    let mut responses = Vec::with_capacity(operations);
    for step in 0..operations {
        let roll = rng.next();
        let line = if !tokens.is_empty() && roll.is_multiple_of(4) {
            let token = tokens.remove((roll >> 32) as usize % tokens.len());
            call(&Request::Remove { token })
        } else {
            let task = pool[(roll >> 16) as usize % pool.len()].clone();
            let line = call(&Request::Admit {
                task,
                trace_id: Some(step as u64),
                echo_timing: false,
            });
            if let Response::Admitted { token, .. } =
                serde_json::from_str(&line).expect("parse response")
            {
                tokens.push(token);
            }
            line
        };
        responses.push(line);
    }
    let stats = call(&Request::Stats);
    let Response::Stats { snapshot } = serde_json::from_str(&stats).expect("parse stats") else {
        panic!("stats request answered {stats:?}");
    };
    (responses, snapshot)
}

/// The snapshot fields that must not depend on the shard count. Wall
/// times, latency buckets, and the per-shard section are legitimately
/// run- and topology-dependent; everything decision-shaped is not.
fn deterministic_view(snapshot: &StatsSnapshot) -> impl PartialEq + std::fmt::Debug {
    (
        (
            snapshot.processors,
            snapshot.dedicated_processors,
            snapshot.shared_processors,
            snapshot.resident_tasks,
        ),
        (
            snapshot.admitted_high,
            snapshot.admitted_low,
            snapshot.rejected_high,
            snapshot.rejected_low,
            snapshot.removed,
            snapshot.remove_anomalies,
        ),
        (
            snapshot.cache_hits,
            snapshot.cache_misses,
            snapshot.cache_entries,
            snapshot.cache_evictions,
        ),
        snapshot.probe.deterministic(),
        (
            snapshot.durability.wal_records_appended,
            snapshot.durability.wal_bytes_appended,
        ),
    )
}

fn shutdown(addr: std::net::SocketAddr, handle: ServerHandle) {
    let mut client = fedsched_service::Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn decisions_and_wal_bytes_are_identical_across_shard_counts() {
    // (responses, deterministic stats view, WAL bytes) of the first run.
    type Baseline = (Vec<String>, Box<dyn std::fmt::Debug>, Vec<u8>);
    for seed in [0x0D5E_ED01_u64, 0x0D5E_ED02, 0x0D5E_ED03] {
        let mut baseline: Option<Baseline> = None;
        for shards in [1usize, 2, 8] {
            let dir = scratch_dir(&format!("{seed:x}-{shards}"));
            let handle = start(shards, 8, Some(&dir));
            let addr = handle.local_addr();
            let (responses, snapshot) = drive(addr, seed, 120);
            shutdown(addr, handle);
            let wal = std::fs::read(dir.join("wal.log")).expect("read wal");
            let _ = std::fs::remove_dir_all(&dir);

            // Sanity: the interleaving exercised real traffic.
            assert!(snapshot.admitted_high + snapshot.admitted_low > 0);
            assert!(snapshot.rejected_high + snapshot.rejected_low > 0);
            assert!(snapshot.removed > 0);
            assert!(snapshot.cache_hits > 0 && snapshot.cache_misses > 0);

            let view = deterministic_view(&snapshot);
            match &baseline {
                None => {
                    baseline = Some((responses, Box::new(view), wal));
                }
                Some((first_responses, first_view, first_wal)) => {
                    assert_eq!(
                        first_responses, &responses,
                        "seed {seed:#x}: responses diverged at {shards} shard(s)"
                    );
                    assert_eq!(
                        format!("{first_view:?}"),
                        format!("{view:?}"),
                        "seed {seed:#x}: stats diverged at {shards} shard(s)"
                    );
                    assert_eq!(
                        first_wal, &wal,
                        "seed {seed:#x}: WAL bytes diverged at {shards} shard(s)"
                    );
                }
            }
        }
    }
}

#[test]
fn reactor_and_threaded_planes_produce_identical_bytes() {
    // The reactor is a transport rewrite, not a semantic one: at every
    // shard count the same seeded interleaving must yield the same
    // response bytes, the same deterministic stats view, and the same
    // WAL bytes on disk under `--conn-model reactor` as under
    // `--conn-model threads`.
    type Baseline = (Vec<String>, Box<dyn std::fmt::Debug>, Vec<u8>);
    let seed = 0x0D5E_ED0C_u64;
    for shards in [1usize, 2, 8] {
        let mut baseline: Option<Baseline> = None;
        for model in [ConnModel::Threads, ConnModel::Reactor] {
            let dir = scratch_dir(&format!("model-{shards}-{model:?}"));
            let handle = start_with_model(shards, 8, Some(&dir), model);
            let addr = handle.local_addr();
            let (responses, snapshot) = drive(addr, seed, 120);
            shutdown(addr, handle);
            let wal = std::fs::read(dir.join("wal.log")).expect("read wal");
            let _ = std::fs::remove_dir_all(&dir);

            assert!(snapshot.admitted_high + snapshot.admitted_low > 0);
            assert!(snapshot.removed > 0);

            let view = deterministic_view(&snapshot);
            match &baseline {
                None => {
                    baseline = Some((responses, Box::new(view), wal));
                }
                Some((threaded_responses, threaded_view, threaded_wal)) => {
                    assert_eq!(
                        threaded_responses, &responses,
                        "responses diverged between planes at {shards} shard(s)"
                    );
                    assert_eq!(
                        format!("{threaded_view:?}"),
                        format!("{view:?}"),
                        "stats diverged between planes at {shards} shard(s)"
                    );
                    assert_eq!(
                        threaded_wal, &wal,
                        "WAL bytes diverged between planes at {shards} shard(s)"
                    );
                }
            }
        }
    }
}

#[test]
fn churn_soak_pins_the_template_cache_to_its_cap() {
    let cap = 4usize;
    let handle = start(2, cap, None);
    let addr = handle.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let pool = shape_pool(10);
    assert!(pool.len() > cap, "soak needs more shapes than the cap");
    let mut rng = XorShift::new(0x50AC);
    let mut tokens: Vec<u64> = Vec::new();
    for round in 0..300usize {
        let line = if tokens.len() > 8 {
            let token = tokens.remove(rng.next() as usize % tokens.len());
            serde_json::to_string(&Request::Remove { token })
        } else {
            let task = pool[(rng.next() >> 8) as usize % pool.len()].clone();
            serde_json::to_string(&Request::Admit {
                task,
                trace_id: Some(round as u64),
                echo_timing: false,
            })
        }
        .expect("serialize");
        reader
            .get_ref()
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        if let Ok(Response::Admitted { token, .. }) = serde_json::from_str(&response) {
            tokens.push(token);
        }
    }

    let mut client = fedsched_service::Client::connect(addr).expect("connect for stats");
    let Ok(Response::Stats { snapshot }) = client.stats() else {
        panic!("stats failed");
    };
    assert!(
        snapshot.cache_entries <= cap as u64,
        "cache grew past its cap: {} > {cap}",
        snapshot.cache_entries
    );
    assert!(
        snapshot.cache_evictions > 0,
        "churn over {} shapes never evicted",
        pool.len()
    );
    // Memory stays pinned under churn: entries + evictions account for
    // every distinct shape that ever missed.
    assert!(snapshot.cache_misses >= snapshot.cache_evictions);
    client.shutdown().expect("shutdown");
    handle.join();
}
