//! `fedsched-service` — an online admission-control server for federated
//! scheduling of constrained-deadline sporadic DAG tasks (Baruah,
//! DATE 2015), with incremental FEDCONS and analysis caching.
//!
//! Batch [`fedcons`](fedsched_core::fedcons::fedcons) answers "is this task
//! *set* schedulable on `m` processors?" once, offline. A long-running
//! system instead sees tasks arrive and depart one at a time and must
//! answer per task, online, without re-analysing the world. This crate
//! provides that service:
//!
//! * [`state`] — [`AdmissionState`]: the live
//!   platform (dedicated clusters plus the shared EDF pool) with
//!   incremental `admit`/`remove` operations whose decisions provably
//!   coincide with a batch FEDCONS run over the resident set;
//! * [`cache`] — memoized `MINPROCS` sizings and frozen LS templates,
//!   keyed by a canonical DAG encoding, so repeated shapes skip the
//!   expensive List-Scheduling search entirely;
//! * [`protocol`] — newline-delimited JSON requests and responses;
//! * [`server`] — acceptor threads sharing one `TcpListener`, a bounded
//!   pool of per-connection handlers, and the [`ConnectionLimits`]
//!   hardening knobs (IO deadlines, frame caps, backpressure);
//! * [`client`] — a blocking client speaking the same protocol, with
//!   deadlines and an automatic `Busy` retry ([`ClientConfig`]);
//! * [`chaos`] — a fault-injection client ([`ChaosClient`]) for driving
//!   hostile traffic against the server in tests;
//! * [`stats`] — per-phase admission counters, cache hit rates,
//!   transport-hardening counters, durability counters, and a log-scale
//!   decision-latency histogram;
//! * [`recovery`] — rebuilding the admission state from a
//!   `fedsched-durable` snapshot plus write-ahead-log suffix: snapshots
//!   restore structurally, the log suffix replays by verified
//!   re-execution through the real engine.
//!
//! # Examples
//!
//! An in-process round trip over a loopback socket:
//!
//! ```
//! use fedsched_dag::task::DagTask;
//! use fedsched_dag::time::Duration;
//! use fedsched_service::client::Client;
//! use fedsched_service::protocol::Response;
//! use fedsched_service::server::{serve, ConnectionLimits, ServerConfig};
//! use fedsched_service::state::AdmissionConfig;
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = serve(&ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 2,
//!     shards: 1,
//!     conn_model: Default::default(),
//!     admission: AdmissionConfig::new(4),
//!     limits: ConnectionLimits::default(),
//!     durability: None,
//!     handoff_from: None,
//! })?;
//! let mut client = Client::connect(handle.local_addr())?;
//! let task = DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8))
//!     .expect("valid task");
//! assert!(matches!(client.admit(&task)?, Response::Admitted { .. }));
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod protocol;
mod reactor;
pub mod recovery;
pub mod server;
pub mod state;
pub mod stats;

pub use cache::TemplateCache;
pub use chaos::ChaosClient;
pub use client::{Client, ClientConfig};
pub use protocol::{Placement, Request, RequestTiming, Response};
pub use recovery::{recover_state, RecoverError, ReplayReport};
pub use server::{
    serve, ConnModel, ConnectionLimits, ServerConfig, ServerHandle, StageCounters, StageTimer,
    TransportCounters,
};
pub use state::{AdmissionConfig, AdmissionState, Admitted, RejectReason, Removed, UnknownToken};
pub use stats::{
    render_prometheus, DurabilityStats, LatencyHistogram, RequestStage, ShardStatsSnapshot,
    StageStats, Stats, StatsSnapshot, TransportStats,
};
