//! Boot recovery: rebuilding an [`AdmissionState`] from a durable snapshot
//! plus a write-ahead-log suffix, with verification.
//!
//! The division of labour with `fedsched-durable` is deliberate: the
//! storage crate knows frames, fsync, and recovery-point selection but
//! nothing about admission; this module knows how to turn persisted bytes
//! back into live state. Two different mechanisms are combined:
//!
//! * **Snapshots restore structurally.** First-fit removal anomalies make
//!   the live partition history-dependent, so a snapshot's placements are
//!   installed as-is — *not* re-derived by re-admitting the resident set,
//!   which could legally produce a different (and promise-breaking)
//!   partition.
//! * **The WAL suffix replays by re-execution.** Every admission algorithm
//!   is deterministic, so re-running each logged decision through the real
//!   engine reproduces every deterministic counter — stats, cache traffic,
//!   probe work counts — exactly. The outcomes recorded in the log (token,
//!   placement, cache hit, the frozen σ template) are treated as
//!   *assertions*: any mismatch between the re-derived and the logged
//!   outcome aborts recovery with [`RecoverError::Divergence`] instead of
//!   silently serving promises the pre-crash server never made.
//!
//! What recovery deliberately does **not** reproduce: admission-latency
//! histogram entries for replayed records (replay latency is not decision
//! latency) and the wall-time fields of the analysis probe (they are
//! re-measured, not restored — compare probes through
//! [`fedsched_analysis::probe::AnalysisProbe::deterministic`]).

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::partition::PartitionTest;
use fedsched_durable::{
    LogRecord, PersistedCacheEntry, PersistedCluster, PersistedConfig, PersistedShared,
    PersistedSizing, PersistedState, PersistedStats, PoolAssignment, RecoveredLog, FORMAT_VERSION,
};
use fedsched_telemetry::EventSink;

use crate::cache::{CachedSizing, TemplateCache};
use crate::protocol::Placement;
use crate::state::{
    AdmissionConfig, AdmissionState, Admitted, LiveCluster, LowEntry, RejectReason,
};
use crate::stats::{LatencyHistogram, Stats};

/// What boot recovery did, for telemetry and the `recover` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Sequence number of the snapshot recovery started from, if any.
    pub snapshot_seq: Option<u64>,
    /// Logged decisions re-executed (snapshot markers excluded).
    pub replayed_records: u64,
    /// Bytes of torn or corrupt WAL tail truncated on open.
    pub truncated_bytes: u64,
    /// Damaged snapshot files skipped in favour of an older recovery
    /// point.
    pub snapshots_skipped: u64,
    /// Wall time the replay took, nanoseconds.
    pub replay_nanos: u64,
}

/// Why a snapshot or log could not be turned back into live state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The snapshot's on-disk format version is not this build's.
    Version {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The data directory was produced under a different server
    /// configuration (platform size, policy, or partition test). A
    /// partition computed for one configuration is meaningless under
    /// another, so recovery refuses rather than guessing.
    ConfigMismatch {
        /// The configuration the data directory was written under.
        persisted: String,
        /// The configuration the server was started with.
        requested: String,
    },
    /// The snapshot is internally inconsistent (a cluster without its
    /// cached sizing, a shared placement outside the pool, unsorted
    /// entries).
    Corrupt(String),
    /// Re-executing a logged decision produced a different outcome than
    /// the log recorded — version drift or nondeterminism. Serving would
    /// break promises clients already hold, so recovery aborts.
    Divergence(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Version { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported version {expected}"
            ),
            RecoverError::ConfigMismatch {
                persisted,
                requested,
            } => write!(
                f,
                "data directory was written under {persisted} but the server was started with {requested}"
            ),
            RecoverError::Corrupt(detail) => write!(f, "snapshot is inconsistent: {detail}"),
            RecoverError::Divergence(detail) => {
                write!(f, "replay diverged from the logged outcome: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// The [`PersistedConfig`] equivalent of a live [`AdmissionConfig`]
/// (telemetry capacity is runtime-only and deliberately not persisted).
#[must_use]
pub fn persisted_config(config: &AdmissionConfig) -> PersistedConfig {
    PersistedConfig {
        processors: config.processors,
        policy: config.fedcons.policy,
        utilization_check: config.fedcons.partition.utilization_check,
        exact_budget: match config.fedcons.partition.test {
            PartitionTest::ApproxDbf => None,
            PartitionTest::ExactEdf { budget } => Some(budget as u64),
        },
        template_cache_cap: config.template_cache_cap as u64,
    }
}

/// The log-side mirror of a protocol [`Placement`]. Shared placements keep
/// the *platform* processor index the client was told, pinned at decision
/// time.
fn assignment_of(placement: Placement) -> PoolAssignment {
    match placement {
        Placement::Dedicated {
            first_processor,
            processors,
        } => PoolAssignment::Dedicated {
            first_processor,
            processors,
        },
        Placement::Shared { processor } => PoolAssignment::Shared {
            processor: u64::from(processor),
        },
    }
}

fn persist_sizing(sizing: &CachedSizing) -> PersistedSizing {
    PersistedSizing {
        processors: sizing.processors,
        template: (*sizing.template).clone(),
    }
}

/// The WAL records one admission decision produces: the `Admit`/`Reject`
/// itself, plus a `CacheInsert` when the decision computed a fresh
/// `MINPROCS` entry. Call with the cache miss and hit counts sampled
/// *before* the decision, while still holding the state lock, so log order
/// equals decision order. (A miss — not cache growth — is the insert
/// signal: under the capacity bound an insert that evicts leaves the
/// length unchanged.)
#[must_use]
pub(crate) fn admit_records(
    state: &AdmissionState,
    task: &fedsched_dag::task::DagTask,
    result: &Result<Admitted, RejectReason>,
    cache_misses_before: u64,
    cache_hits_before: u64,
) -> Vec<LogRecord> {
    let mut records = Vec::with_capacity(2);
    match result {
        Ok(admitted) => {
            let sizing = match admitted.placement {
                Placement::Dedicated { .. } => {
                    state
                        .template_of(admitted.token)
                        .map(|template| PersistedSizing {
                            processors: match admitted.placement {
                                Placement::Dedicated { processors, .. } => processors,
                                Placement::Shared { .. } => unreachable!("dedicated arm"),
                            },
                            template: (*template).clone(),
                        })
                }
                Placement::Shared { .. } => None,
            };
            records.push(LogRecord::Admit {
                token: admitted.token,
                task: task.clone(),
                placement: assignment_of(admitted.placement),
                cache_hit: admitted.cache_hit,
                sizing,
            });
        }
        Err(_) => {
            records.push(LogRecord::Reject {
                task: task.clone(),
                high_density: task.is_high_density(),
                cache_hit: state.cache.hits() > cache_hits_before,
            });
        }
    }
    if state.cache.misses() > cache_misses_before {
        let entry = state
            .cache
            .peek(task, state.config.fedcons.policy)
            .expect("a decision that missed the cache memoized this shape");
        records.push(LogRecord::CacheInsert {
            task: task.clone(),
            sizing: entry.as_ref().map(persist_sizing),
        });
    }
    records
}

/// The WAL record one successful removal produces. Call with the anomaly
/// count sampled before the removal, under the state lock.
#[must_use]
pub(crate) fn remove_record(
    state: &AdmissionState,
    token: u64,
    anomalies_before: u64,
) -> LogRecord {
    LogRecord::Depart {
        token,
        anomaly: state.stats.remove_anomalies > anomalies_before,
    }
}

impl AdmissionState {
    /// A structural [`PersistedState`] of everything a restarted server
    /// needs: configuration, placements exactly as promised, the full
    /// template cache under its canonical keys, counters, and the analysis
    /// probe. Snapshot this under the same lock as the decisions it covers.
    #[must_use]
    pub fn export(&self) -> PersistedState {
        PersistedState {
            version: FORMAT_VERSION,
            config: persisted_config(&self.config),
            next_token: self.next_token,
            clusters: self
                .clusters
                .iter()
                .map(|c| PersistedCluster {
                    token: c.token,
                    task: c.task.clone(),
                    processors: c.sizing.processors,
                    // Carried inline only when the bounded cache evicted
                    // the cluster's shape: the cache section is the normal
                    // (and deduplicated) template store.
                    sizing: if self
                        .cache
                        .peek(&c.task, self.config.fedcons.policy)
                        .is_some()
                    {
                        None
                    } else {
                        Some(persist_sizing(&c.sizing))
                    },
                })
                .collect(),
            shared: self
                .low
                .iter()
                .map(|e| PersistedShared {
                    token: e.token,
                    task: e.task.clone(),
                    processor: e.processor as u64,
                })
                .collect(),
            cache: self
                .cache
                .export_entries()
                .into_iter()
                .map(|(key, sizing, referenced)| PersistedCacheEntry {
                    key,
                    sizing: sizing.as_ref().map(persist_sizing),
                    referenced,
                })
                .collect(),
            stats: PersistedStats {
                admitted_high: self.stats.admitted_high,
                admitted_low: self.stats.admitted_low,
                rejected_high: self.stats.rejected_high,
                rejected_low: self.stats.rejected_low,
                removed: self.stats.removed,
                remove_anomalies: self.stats.remove_anomalies,
                cache_hits: self.cache.hits(),
                cache_misses: self.cache.misses(),
                cache_evictions: self.cache.evictions(),
                latency_buckets_us: self.stats.latency.buckets().to_vec(),
            },
            probe: self.probe,
        }
    }

    /// Rebuilds a state structurally from a snapshot, verifying the format
    /// version, the configuration, and the snapshot's internal invariants.
    ///
    /// Every cluster's frozen σ template is recovered from the snapshot's
    /// own cache section when it still covers the shape, and from the
    /// cluster's inline `sizing` when the bounded cache evicted it before
    /// the snapshot; a cluster with neither is corruption, not a condition
    /// to paper over with a recompute.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Version`], [`RecoverError::ConfigMismatch`], or
    /// [`RecoverError::Corrupt`].
    pub fn restore(
        config: AdmissionConfig,
        persisted: &PersistedState,
    ) -> Result<AdmissionState, RecoverError> {
        if persisted.version != FORMAT_VERSION {
            return Err(RecoverError::Version {
                found: persisted.version,
                expected: FORMAT_VERSION,
            });
        }
        let requested = persisted_config(&config);
        if requested != persisted.config {
            return Err(RecoverError::ConfigMismatch {
                persisted: format!("{:?}", persisted.config),
                requested: format!("{requested:?}"),
            });
        }
        let cache = TemplateCache::restore(
            persisted
                .cache
                .iter()
                .map(|e| {
                    (
                        e.key.clone(),
                        e.sizing.as_ref().map(|s| CachedSizing {
                            processors: s.processors,
                            template: Arc::new(s.template.clone()),
                        }),
                        e.referenced,
                    )
                })
                .collect(),
            config.template_cache_cap,
            persisted.stats.cache_hits,
            persisted.stats.cache_misses,
            persisted.stats.cache_evictions,
        );
        let mut clusters = Vec::with_capacity(persisted.clusters.len());
        let mut dedicated = 0u32;
        for c in &persisted.clusters {
            let sizing = cache
                .peek(&c.task, config.fedcons.policy)
                .and_then(Clone::clone)
                .or_else(|| {
                    c.sizing.as_ref().map(|s| CachedSizing {
                        processors: s.processors,
                        template: Arc::new(s.template.clone()),
                    })
                })
                .ok_or_else(|| {
                    RecoverError::Corrupt(format!(
                        "cluster token {} has no cached or inline sizing for its shape",
                        c.token
                    ))
                })?;
            if sizing.processors != c.processors {
                return Err(RecoverError::Corrupt(format!(
                    "cluster token {} records width {} but its cached sizing says {}",
                    c.token, c.processors, sizing.processors
                )));
            }
            dedicated = dedicated.checked_add(sizing.processors).ok_or_else(|| {
                RecoverError::Corrupt("dedicated processor count overflows".to_owned())
            })?;
            clusters.push(LiveCluster {
                token: c.token,
                task: c.task.clone(),
                sizing,
            });
        }
        if dedicated > config.processors {
            return Err(RecoverError::Corrupt(format!(
                "clusters bind {dedicated} processors on a {}-processor platform",
                config.processors
            )));
        }
        let pool = (config.processors - dedicated) as usize;
        let mut low = Vec::with_capacity(persisted.shared.len());
        for e in &persisted.shared {
            let processor = usize::try_from(e.processor)
                .ok()
                .filter(|&p| p < pool)
                .ok_or_else(|| {
                    RecoverError::Corrupt(format!(
                        "shared token {} sits on pool processor {} of a {pool}-processor pool",
                        e.token, e.processor
                    ))
                })?;
            low.push(LowEntry {
                token: e.token,
                task: e.task.clone(),
                view: SequentialView::of(&e.task),
                processor,
            });
        }
        if low
            .windows(2)
            .any(|w| (w[0].view.deadline, w[0].token) > (w[1].view.deadline, w[1].token))
        {
            return Err(RecoverError::Corrupt(
                "shared entries are not in EDF (deadline, token) order".to_owned(),
            ));
        }
        let max_token = clusters
            .iter()
            .map(|c| c.token)
            .chain(low.iter().map(|e| e.token))
            .max();
        if max_token.is_some_and(|t| t >= persisted.next_token) {
            return Err(RecoverError::Corrupt(format!(
                "next_token {} is not past the largest resident token {}",
                persisted.next_token,
                max_token.unwrap_or(0)
            )));
        }
        Ok(AdmissionState {
            config,
            next_token: persisted.next_token,
            clusters,
            dedicated,
            low,
            cache,
            stats: Stats {
                admitted_high: persisted.stats.admitted_high,
                admitted_low: persisted.stats.admitted_low,
                rejected_high: persisted.stats.rejected_high,
                rejected_low: persisted.stats.rejected_low,
                removed: persisted.stats.removed,
                remove_anomalies: persisted.stats.remove_anomalies,
                latency: LatencyHistogram::from_buckets(&persisted.stats.latency_buckets_us),
            },
            probe: persisted.probe,
            sink: EventSink::ring(config.telemetry_events),
        })
    }

    /// Re-executes a WAL suffix through the real engine, verifying each
    /// logged outcome, and returns the number of decisions replayed.
    ///
    /// Replayed admissions do not enter the latency histogram (replay
    /// speed is not decision latency); every deterministic counter follows
    /// from the re-execution itself.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Divergence`] when a re-derived outcome differs from
    /// the logged one. The state is not usable afterwards.
    pub fn replay(&mut self, records: &[LogRecord]) -> Result<u64, RecoverError> {
        let mut applied = 0u64;
        for record in records {
            match record {
                LogRecord::SnapshotMarker { .. } => continue,
                LogRecord::Admit {
                    token,
                    task,
                    placement,
                    cache_hit,
                    sizing,
                } => {
                    if *token < self.next_token {
                        return Err(RecoverError::Divergence(format!(
                            "logged admit token {token} is below the replay cursor {}",
                            self.next_token
                        )));
                    }
                    self.next_token = *token;
                    let high = task.is_high_density();
                    match self.admit_inner(task.clone(), None) {
                        Ok(admitted) => {
                            if high {
                                self.stats.admitted_high += 1;
                            } else {
                                self.stats.admitted_low += 1;
                            }
                            if assignment_of(admitted.placement) != *placement {
                                return Err(RecoverError::Divergence(format!(
                                    "admit token {token}: re-derived placement {:?} != logged {placement:?}",
                                    assignment_of(admitted.placement)
                                )));
                            }
                            if admitted.cache_hit != *cache_hit {
                                return Err(RecoverError::Divergence(format!(
                                    "admit token {token}: re-derived cache_hit {} != logged {cache_hit}",
                                    admitted.cache_hit
                                )));
                            }
                            let template = self.template_of(admitted.token);
                            let template_matches = match (template.as_deref(), sizing) {
                                (None, None) => true,
                                (Some(got), Some(want)) => *got == want.template,
                                _ => false,
                            };
                            if !template_matches {
                                return Err(RecoverError::Divergence(format!(
                                    "admit token {token}: re-derived σ template differs from the logged one"
                                )));
                            }
                        }
                        Err(reason) => {
                            return Err(RecoverError::Divergence(format!(
                                "logged admit token {token} was re-rejected: {reason}"
                            )));
                        }
                    }
                }
                LogRecord::Reject {
                    task,
                    high_density,
                    cache_hit,
                } => {
                    let high = task.is_high_density();
                    if high != *high_density {
                        return Err(RecoverError::Divergence(format!(
                            "logged rejection classed {} but the task is {}",
                            if *high_density { "high" } else { "low" },
                            if high { "high" } else { "low" }
                        )));
                    }
                    let hits_before = self.cache.hits();
                    match self.admit_inner(task.clone(), None) {
                        Ok(_) => {
                            return Err(RecoverError::Divergence(
                                "a logged rejection was re-admitted".to_owned(),
                            ));
                        }
                        Err(_) => {
                            if high {
                                self.stats.rejected_high += 1;
                            } else {
                                self.stats.rejected_low += 1;
                            }
                            let hit = self.cache.hits() > hits_before;
                            if hit != *cache_hit {
                                return Err(RecoverError::Divergence(format!(
                                    "rejection: re-derived cache_hit {hit} != logged {cache_hit}"
                                )));
                            }
                        }
                    }
                }
                LogRecord::Depart { token, anomaly } => {
                    let anomalies_before = self.stats.remove_anomalies;
                    if self.remove_inner(*token).is_err() {
                        return Err(RecoverError::Divergence(format!(
                            "logged departure of token {token}, which is not resident on replay"
                        )));
                    }
                    let hit_anomaly = self.stats.remove_anomalies > anomalies_before;
                    if hit_anomaly != *anomaly {
                        return Err(RecoverError::Divergence(format!(
                            "departure of token {token}: re-derived anomaly {hit_anomaly} != logged {anomaly}"
                        )));
                    }
                }
                LogRecord::CacheInsert { task, sizing } => {
                    let Some(entry) = self.cache.peek(task, self.config.fedcons.policy) else {
                        return Err(RecoverError::Divergence(
                            "a logged cache insert is absent after re-execution".to_owned(),
                        ));
                    };
                    let matches = match (entry, sizing) {
                        (None, None) => true,
                        (Some(got), Some(want)) => {
                            got.processors == want.processors && *got.template == want.template
                        }
                        _ => false,
                    };
                    if !matches {
                        return Err(RecoverError::Divergence(
                            "a re-derived cache entry differs from the logged one".to_owned(),
                        ));
                    }
                }
            }
            applied += 1;
        }
        Ok(applied)
    }
}

/// Recovers a full [`AdmissionState`] from what [`fedsched_durable`]'s
/// store found on disk: structural restore of the snapshot (if any), then
/// verified re-execution of the WAL suffix.
///
/// # Errors
///
/// Any [`RecoverError`] from [`AdmissionState::restore`] or
/// [`AdmissionState::replay`].
pub fn recover_state(
    config: AdmissionConfig,
    recovered: &RecoveredLog,
) -> Result<(AdmissionState, ReplayReport), RecoverError> {
    let start = Instant::now();
    let mut state = match &recovered.snapshot {
        Some(snapshot) => AdmissionState::restore(config, snapshot)?,
        None => AdmissionState::new(config),
    };
    let replayed = state.replay(&recovered.suffix)?;
    Ok((
        state,
        ReplayReport {
            snapshot_seq: recovered.snapshot_seq,
            replayed_records: replayed,
            truncated_bytes: recovered.wal_report.truncated_bytes,
            snapshots_skipped: recovered.snapshots_skipped,
            replay_nanos: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::task::DagTask;
    use fedsched_dag::time::Duration;

    fn wide(units: usize, deadline: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(1), units));
        DagTask::new(
            b.build().unwrap(),
            Duration::new(deadline),
            Duration::new(period),
        )
        .unwrap()
    }

    fn light(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    /// Runs `ops` through a state while journaling exactly as the server
    /// would, returning the state and the log.
    fn drive(config: AdmissionConfig, ops: &[Op]) -> (AdmissionState, Vec<LogRecord>) {
        let mut state = AdmissionState::new(config);
        let mut log = Vec::new();
        let mut tokens = Vec::new();
        for op in ops {
            match op {
                Op::Admit(task) => {
                    let misses_before = state.cache.misses();
                    let hits_before = state.cache.hits();
                    let result = state.admit(task.clone());
                    if let Ok(admitted) = &result {
                        tokens.push(admitted.token);
                    }
                    log.extend(admit_records(
                        &state,
                        task,
                        &result,
                        misses_before,
                        hits_before,
                    ));
                }
                Op::RemoveNth(i) => {
                    let token = tokens[*i];
                    let anomalies_before = state.stats.remove_anomalies;
                    state.remove(token).unwrap();
                    log.push(remove_record(&state, token, anomalies_before));
                }
            }
        }
        (state, log)
    }

    enum Op {
        Admit(DagTask),
        RemoveNth(usize),
    }

    fn ops() -> Vec<Op> {
        vec![
            Op::Admit(wide(6, 2, 10)),  // high, μ*=3, cache miss
            Op::Admit(light(3, 4, 16)), // low
            Op::Admit(wide(6, 2, 12)),  // high, cache hit, rejected (no room)
            Op::RemoveNth(0),           // free the cluster
            Op::Admit(wide(6, 2, 12)),  // high, cache hit, admitted
            Op::Admit(light(1, 8, 16)), // low
        ]
    }

    fn reference_config() -> AdmissionConfig {
        AdmissionConfig::new(4)
    }

    #[test]
    fn export_restore_roundtrips_the_whole_snapshot() {
        let (state, _) = drive(reference_config(), &ops());
        let persisted = state.export();
        let restored = AdmissionState::restore(reference_config(), &persisted).unwrap();
        // Structural restore reproduces every counter verbatim — the
        // latency histogram and probe included.
        assert_eq!(restored.snapshot(), state.snapshot());
        assert_eq!(restored.resident(), state.resident());
        // And the restored state keeps serving: re-export equals export.
        assert_eq!(restored.export(), persisted);
    }

    #[test]
    fn restore_refuses_other_configs_and_versions() {
        let (state, _) = drive(reference_config(), &ops());
        let persisted = state.export();
        let other = AdmissionConfig::new(8);
        assert!(matches!(
            AdmissionState::restore(other, &persisted),
            Err(RecoverError::ConfigMismatch { .. })
        ));
        let mut versioned = persisted.clone();
        versioned.version = FORMAT_VERSION + 1;
        assert!(matches!(
            AdmissionState::restore(reference_config(), &versioned),
            Err(RecoverError::Version { .. })
        ));
    }

    #[test]
    fn restore_rejects_a_cluster_without_its_sizing() {
        let (state, _) = drive(reference_config(), &ops());
        let mut persisted = state.export();
        persisted.cache.clear();
        assert!(matches!(
            AdmissionState::restore(reference_config(), &persisted),
            Err(RecoverError::Corrupt(_))
        ));
    }

    #[test]
    fn evicted_cluster_shapes_roundtrip_via_inline_sizing() {
        // A cap of 1 forces the cache to evict the resident cluster's
        // shape when a second distinct shape is sized.
        let config = AdmissionConfig::new(8).with_cache_cap(1);
        let (state, log) = drive(
            config,
            &[
                Op::Admit(wide(6, 2, 10)), // μ*=3, cached
                Op::Admit(wide(4, 2, 10)), // μ*=2, evicts the first shape
            ],
        );
        assert_eq!(state.cache.len(), 1);
        assert_eq!(state.cache.evictions(), 1);
        let persisted = state.export();
        // The evicted cluster carries its template inline; the resident
        // one stays deduplicated through the cache section.
        assert!(persisted.clusters[0].sizing.is_some());
        assert!(persisted.clusters[1].sizing.is_none());
        let restored = AdmissionState::restore(config, &persisted).unwrap();
        assert_eq!(restored.snapshot(), state.snapshot());
        assert_eq!(restored.export(), persisted);
        // And pure replay under the same cap reproduces the same state.
        let mut replayed = AdmissionState::new(config);
        replayed.replay(&log).unwrap();
        assert_eq!(replayed.resident(), state.resident());
        assert_eq!(replayed.cache.evictions(), 1);
    }

    #[test]
    fn replay_under_a_mismatched_cap_is_refused_by_config_identity() {
        let capped = AdmissionConfig::new(4).with_cache_cap(2);
        let (state, _) = drive(capped, &ops());
        let persisted = state.export();
        assert!(matches!(
            AdmissionState::restore(reference_config(), &persisted),
            Err(RecoverError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn replay_reproduces_the_full_decision_sequence() {
        let (reference, log) = drive(reference_config(), &ops());
        let mut replayed = AdmissionState::new(reference_config());
        let applied = replayed.replay(&log).unwrap();
        assert_eq!(applied, log.len() as u64);
        // Everything deterministic matches: placements, tokens, counters,
        // cache traffic, probe work counts.
        assert_eq!(replayed.resident(), reference.resident());
        let mut a = replayed.snapshot();
        let mut b = reference.snapshot();
        // Replay skips the latency histogram and wall time is re-measured.
        a.latency_buckets_us = Vec::new();
        b.latency_buckets_us = Vec::new();
        a.latency_p50_us = None;
        b.latency_p50_us = None;
        a.latency_p90_us = None;
        b.latency_p90_us = None;
        a.latency_p99_us = None;
        b.latency_p99_us = None;
        a.probe = a.probe.deterministic();
        b.probe = b.probe.deterministic();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_plus_suffix_equals_pure_replay() {
        let all = ops();
        let (mid_state, mid_log) = drive(reference_config(), &all[..3]);
        let persisted = mid_state.export();
        drop(mid_log);
        // Decisions after the snapshot point, journaled against the live
        // continuation of the same state.
        let (reference, full_log) = drive(reference_config(), &all);
        let suffix = &full_log[mid_suffix_start(&full_log)..];
        let mut state = AdmissionState::restore(reference_config(), &persisted).unwrap();
        state.replay(suffix).unwrap();
        assert_eq!(state.resident(), reference.resident());
        assert_eq!(
            state.snapshot().admitted_high,
            reference.snapshot().admitted_high
        );
        assert_eq!(state.snapshot().removed, reference.snapshot().removed);
    }

    /// Index in the full log where the suffix after `ops()[..3]` starts:
    /// the first three ops produce 2 + 1 + 1 records (admit+insert, admit,
    /// reject with a cache hit inserts nothing).
    fn mid_suffix_start(log: &[LogRecord]) -> usize {
        assert_eq!(log[0].kind(), "admit");
        assert_eq!(log[1].kind(), "cache_insert");
        assert_eq!(log[2].kind(), "admit");
        assert_eq!(log[3].kind(), "reject");
        4
    }

    #[test]
    fn replay_catches_a_tampered_outcome() {
        let (_, mut log) = drive(reference_config(), &ops());
        // Flip the logged cache_hit of the first admission.
        if let LogRecord::Admit { cache_hit, .. } = &mut log[0] {
            *cache_hit = !*cache_hit;
        } else {
            panic!("first record is the admit");
        }
        let mut state = AdmissionState::new(reference_config());
        assert!(matches!(
            state.replay(&log),
            Err(RecoverError::Divergence(_))
        ));
    }

    #[test]
    fn recover_state_from_empty_log_is_a_fresh_state() {
        let recovered = RecoveredLog {
            snapshot: None,
            snapshot_seq: None,
            suffix: Vec::new(),
            wal_report: fedsched_durable::WalOpenReport {
                records_recovered: 0,
                truncated_bytes: 0,
                tail_was_corrupt: false,
            },
            snapshots_skipped: 0,
        };
        let (state, report) = recover_state(reference_config(), &recovered).unwrap();
        assert_eq!(state.resident_tasks(), 0);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(report.snapshot_seq, None);
    }
}
