//! Operation counters and a log-scale latency histogram for the server.

use fedsched_analysis::probe::AnalysisProbe;
use serde::{Deserialize, Serialize};

/// Number of buckets in [`LatencyHistogram`]: bucket `i` counts operations
/// that took `[2^i, 2^{i+1})` microseconds (the last bucket is open-ended).
pub const LATENCY_BUCKETS: usize = 22;

/// A power-of-two histogram of admission-decision latencies, in
/// microseconds. Bucket `i` covers `[2^i, 2^{i+1})` µs; sub-microsecond
/// decisions land in bucket 0 and anything from about 35 minutes up
/// saturates the last bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one operation that took `elapsed`.
    pub fn record(&mut self, elapsed: std::time::Duration) {
        let us = elapsed.as_micros();
        let bucket = if us <= 1 {
            0
        } else {
            (127 - u128::leading_zeros(us) as usize).min(LATENCY_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
    }

    /// Total number of recorded operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts, index `i` covering `[2^i, 2^{i+1})` µs.
    #[must_use]
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }
}

/// Mutable operation counters kept by
/// [`AdmissionState`](crate::state::AdmissionState).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// High-density tasks admitted onto dedicated clusters.
    pub admitted_high: u64,
    /// Low-density tasks admitted into the shared pool.
    pub admitted_low: u64,
    /// Rejected tasks of high density (δ ≥ 1): chain-infeasible shapes and
    /// clusters that did not fit.
    pub rejected_high: u64,
    /// Rejected tasks of low density: shared-pool first-fit failures (and
    /// arbitrary-deadline submissions whose density is below one).
    pub rejected_low: u64,
    /// Tasks removed.
    pub removed: u64,
    /// Removals whose suffix replay failed (first-fit anomaly); the state
    /// keeps the previous — still sound — placements instead.
    pub remove_anomalies: u64,
    /// Latency of `admit` decisions (the hot path; removals are not timed).
    pub latency: LatencyHistogram,
}

/// A point-in-time, serializable view of the server's counters, returned by
/// the `Stats` request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Platform size `m` the server was started with.
    pub processors: u32,
    /// Processors currently bound to dedicated clusters.
    pub dedicated_processors: u32,
    /// Processors currently in the shared EDF pool.
    pub shared_processors: u32,
    /// Tasks currently resident (clusters plus shared).
    pub resident_tasks: u64,
    /// High-density tasks admitted since start.
    pub admitted_high: u64,
    /// Low-density tasks admitted since start.
    pub admitted_low: u64,
    /// High-density rejections since start.
    pub rejected_high: u64,
    /// Low-density rejections since start.
    pub rejected_low: u64,
    /// Removals since start.
    pub removed: u64,
    /// Removal replays that hit a first-fit anomaly.
    pub remove_anomalies: u64,
    /// Template-cache hits since start.
    pub cache_hits: u64,
    /// Template-cache misses since start.
    pub cache_misses: u64,
    /// Distinct DAG shapes the template cache holds.
    pub cache_entries: u64,
    /// Admission-latency histogram; index `i` counts decisions that took
    /// `[2^i, 2^{i+1})` microseconds.
    pub latency_buckets_us: Vec<u64>,
    /// Cumulative analysis cost of every operation since start: LS runs,
    /// demand-bound evaluations, first-fit probes, cache traffic, and
    /// per-phase wall time.
    pub probe: AnalysisProbe,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_by_power_of_two_microseconds() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100)); // sub-µs → bucket 0
        h.record(Duration::from_micros(1)); // → bucket 0
        h.record(Duration::from_micros(2)); // → bucket 1
        h.record(Duration::from_micros(3)); // → bucket 1
        h.record(Duration::from_micros(1024)); // → bucket 10
        h.record(Duration::from_secs(36_000)); // saturates the last bucket
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.total(), 6);
    }
}
