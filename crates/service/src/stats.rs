//! Operation counters and a log-scale latency histogram for the server.

use fedsched_analysis::probe::AnalysisProbe;
use serde::{Deserialize, Serialize};

/// Number of buckets in [`LatencyHistogram`]: bucket `i` counts operations
/// that took `[2^i, 2^{i+1})` microseconds (the last bucket is open-ended).
pub const LATENCY_BUCKETS: usize = 22;

/// Number of pipeline stages every served request is decomposed into.
pub const REQUEST_STAGES: usize = 7;

/// One stage of the server's request pipeline, in serving order.
///
/// Every request the server fully answers is recorded **exactly once** in
/// every stage's histogram — stages that did not apply (no cache lookup on
/// a `Stats` request, no WAL append without durability) record a zero
/// duration. That invariant makes the per-stage histogram `_count`s equal
/// `fedsched_requests_total`, so a dashboard can always divide by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestStage {
    /// Waiting for the first byte of the next request: pure client think
    /// time (open-loop pacing, interactive idle). Split out of the old
    /// `read_frame` stage so socket work is measurable on its own.
    IdleWait = 0,
    /// Reading and framing the request line off the socket once its first
    /// byte has arrived (mid-frame stalls — a trickling client — still
    /// land here).
    FrameRead = 1,
    /// UTF-8 validation plus JSON parsing of the framed line.
    Parse = 2,
    /// Template-cache lookup of a high-density admission (zero unless the
    /// sizing was served from the cache).
    CacheLookup = 3,
    /// The admission/removal/stats work itself: everything inside dispatch
    /// that is neither a cache hit nor the WAL append.
    Analysis = 4,
    /// Appending the decision's records to the write-ahead log, fsync and
    /// threshold snapshots included (zero without durability).
    WalAppend = 5,
    /// Serializing the response and writing it back to the client.
    Serialize = 6,
}

impl RequestStage {
    /// Every stage, in pipeline order.
    pub const ALL: [RequestStage; REQUEST_STAGES] = [
        RequestStage::IdleWait,
        RequestStage::FrameRead,
        RequestStage::Parse,
        RequestStage::CacheLookup,
        RequestStage::Analysis,
        RequestStage::WalAppend,
        RequestStage::Serialize,
    ];

    /// The stable lower-snake name used in metric names and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RequestStage::IdleWait => "idle_wait",
            RequestStage::FrameRead => "frame_read",
            RequestStage::Parse => "parse",
            RequestStage::CacheLookup => "cache_lookup",
            RequestStage::Analysis => "analysis",
            RequestStage::WalAppend => "wal_append",
            RequestStage::Serialize => "serialize",
        }
    }

    /// The stage's index into per-stage arrays (pipeline order).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// HELP text for the stage's Prometheus histogram.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            RequestStage::IdleWait => {
                "Time waiting for the first byte of the request — client think time, not server \
                 work, microseconds (power-of-two buckets: derived quantiles are bucket upper \
                 bounds)"
            }
            RequestStage::FrameRead => {
                "Time reading and framing the request line after its first byte arrived, \
                 microseconds (power-of-two buckets: derived quantiles are bucket upper bounds)"
            }
            RequestStage::Parse => {
                "Time validating UTF-8 and parsing the request JSON, microseconds \
                 (power-of-two buckets: derived quantiles are bucket upper bounds)"
            }
            RequestStage::CacheLookup => {
                "Time serving a sizing from the template cache, zero on misses and non-admissions, \
                 microseconds (power-of-two buckets: derived quantiles are bucket upper bounds)"
            }
            RequestStage::Analysis => {
                "Time in admission analysis and state mutation, lock wait included, microseconds \
                 (power-of-two buckets: derived quantiles are bucket upper bounds)"
            }
            RequestStage::WalAppend => {
                "Time appending to the write-ahead log, fsync included, zero without durability, \
                 microseconds (power-of-two buckets: derived quantiles are bucket upper bounds)"
            }
            RequestStage::Serialize => {
                "Time serializing and writing the response, microseconds \
                 (power-of-two buckets: derived quantiles are bucket upper bounds)"
            }
        }
    }
}

/// A power-of-two histogram of admission-decision latencies, in
/// microseconds. Bucket `i` covers `[2^i, 2^{i+1})` µs; sub-microsecond
/// decisions land in bucket 0 and anything from about 35 minutes up
/// saturates the last bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one operation that took `elapsed`.
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.buckets[Self::bucket_for_micros(elapsed.as_micros())] += 1;
    }

    /// The bucket index an observation of `us` microseconds falls into:
    /// `⌊log2 us⌋`, clamped into `[0, LATENCY_BUCKETS)`. Shared by this
    /// histogram and the server's lock-free per-stage bucket atomics so
    /// both bucket identically.
    #[must_use]
    pub fn bucket_for_micros(us: u128) -> usize {
        if us <= 1 {
            0
        } else {
            (127 - u128::leading_zeros(us) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Total number of recorded operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts, index `i` covering `[2^i, 2^{i+1})` µs.
    #[must_use]
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from exported bucket counts (shorter slices
    /// fill the low buckets; excess counts land in the open-ended last
    /// bucket, so no observation is ever dropped on restore).
    #[must_use]
    pub fn from_buckets(counts: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for (i, &count) in counts.iter().enumerate() {
            let bucket = i.min(LATENCY_BUCKETS - 1);
            h.buckets[bucket] = h.buckets[bucket].saturating_add(count);
        }
        h
    }

    /// An **upper bound** on the `q`-quantile latency, in microseconds.
    ///
    /// The histogram only knows which power-of-two bucket each observation
    /// fell into, so the estimate is the *exclusive upper edge* `2^{i+1}`
    /// of the bucket containing the `⌈q·total⌉`-th smallest observation —
    /// the true quantile is guaranteed `<` the returned value (within a
    /// factor of two of it), never above. The open-ended last bucket
    /// reports [`u64::MAX`].
    ///
    /// Returns `None` for an empty histogram or `q` outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // ⌈q·total⌉ clamped to [1, total]: p0 is the smallest observation,
        // p100 the largest.
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(if i == LATENCY_BUCKETS - 1 {
                    u64::MAX
                } else {
                    2u64.pow(i as u32 + 1)
                });
            }
        }
        unreachable!("rank ≤ total implies some bucket reaches it")
    }
}

/// Mutable operation counters kept by
/// [`AdmissionState`](crate::state::AdmissionState).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// High-density tasks admitted onto dedicated clusters.
    pub admitted_high: u64,
    /// Low-density tasks admitted into the shared pool.
    pub admitted_low: u64,
    /// Rejected tasks of high density (δ ≥ 1): chain-infeasible shapes and
    /// clusters that did not fit.
    pub rejected_high: u64,
    /// Rejected tasks of low density: shared-pool first-fit failures (and
    /// arbitrary-deadline submissions whose density is below one).
    pub rejected_low: u64,
    /// Tasks removed.
    pub removed: u64,
    /// Removals whose suffix replay failed (first-fit anomaly); the state
    /// keeps the previous — still sound — placements instead.
    pub remove_anomalies: u64,
    /// Latency of `admit` decisions (the hot path; removals are not timed).
    pub latency: LatencyHistogram,
}

/// Transport-level hardening counters: everything the server's connection
/// layer did to defend itself against hostile, slow, or bursty clients.
///
/// These are kept in lock-free atomics by the server (they must stay
/// observable even when the admission lock is contended) and merged into
/// [`StatsSnapshot`] when a snapshot is taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Connections accepted and handed to a handler since start.
    pub connections_served: u64,
    /// Connections turned away with `Busy` because the concurrent
    /// connection cap was reached.
    pub busy_rejections: u64,
    /// Per-connection read deadlines that expired (the connection is kept
    /// unless expiries repeat).
    pub read_timeouts: u64,
    /// Connections dropped after repeated consecutive read-deadline
    /// expiries without a complete request.
    pub connections_timed_out: u64,
    /// Request frames that exceeded the configured byte cap (the
    /// connection is dropped after a framed `Error`).
    pub oversized_requests: u64,
    /// Request lines that were not valid UTF-8 JSON (the connection is
    /// dropped after a framed `Error`).
    pub malformed_requests: u64,
    /// Connections dropped because they exhausted the per-connection
    /// request budget.
    pub budget_exhausted: u64,
    /// Connections closed by the graceful-shutdown drain while the client
    /// still held them open.
    pub drained_connections: u64,
}

/// Durability-layer counters: what the write-ahead log and snapshot
/// machinery did since the server started, plus what boot recovery
/// replayed. All zeros when the server runs without a data directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityStats {
    /// Whether the server runs with a write-ahead log at all.
    pub enabled: bool,
    /// Decision records appended to the WAL since start.
    pub wal_records_appended: u64,
    /// Bytes appended to the WAL since start (frames, magic excluded).
    pub wal_bytes_appended: u64,
    /// `fsync`s the WAL issued since start.
    pub wal_fsyncs: u64,
    /// Current on-disk length of the WAL file, bytes.
    pub wal_len_bytes: u64,
    /// Snapshots written since start (boot-recovery snapshots included).
    pub snapshots_written: u64,
    /// Sequence number of the newest durable snapshot (0 before the
    /// first).
    pub last_snapshot_seq: u64,
    /// Logged decisions re-executed during boot recovery.
    pub replayed_records: u64,
    /// Wall time boot recovery spent replaying, nanoseconds.
    pub replay_nanos: u64,
    /// Bytes of torn or corrupt WAL tail truncated at boot.
    pub truncated_bytes: u64,
    /// Snapshot files that were damaged or missing and had to be skipped
    /// in favour of an older recovery point at boot.
    pub snapshots_skipped: u64,
}

/// Per-stage request-pipeline latency buckets plus the request total they
/// all sum to.
///
/// Kept in lock-free atomics by the server (the hot path must not take the
/// admission lock to time transport stages) and merged into
/// [`StatsSnapshot`] when a snapshot is taken. The invariant documented on
/// [`RequestStage`] holds: each stage's bucket counts sum to
/// `requests_total`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageStats {
    /// Requests fully answered on the NDJSON protocol since start.
    /// Aborted exchanges (malformed lines, oversized frames, idle
    /// timeouts, `GET /metrics` scrapes) are not requests and count in
    /// the transport counters instead.
    pub requests_total: u64,
    /// [`RequestStage::IdleWait`] buckets, `[2^i, 2^{i+1})` µs each.
    /// Defaults to empty (with [`RequestStage::FrameRead`]) in snapshots
    /// from servers predating the idle/frame split of the old
    /// `read_frame` stage; renderers emit nothing for an empty vector.
    #[serde(default)]
    pub idle_wait_buckets_us: Vec<u64>,
    /// [`RequestStage::FrameRead`] buckets.
    #[serde(default)]
    pub frame_read_buckets_us: Vec<u64>,
    /// [`RequestStage::Parse`] buckets.
    pub parse_buckets_us: Vec<u64>,
    /// [`RequestStage::CacheLookup`] buckets.
    pub cache_lookup_buckets_us: Vec<u64>,
    /// [`RequestStage::Analysis`] buckets.
    pub analysis_buckets_us: Vec<u64>,
    /// [`RequestStage::WalAppend`] buckets.
    pub wal_append_buckets_us: Vec<u64>,
    /// [`RequestStage::Serialize`] buckets.
    pub serialize_buckets_us: Vec<u64>,
}

impl Default for StageStats {
    fn default() -> StageStats {
        StageStats {
            requests_total: 0,
            idle_wait_buckets_us: vec![0; LATENCY_BUCKETS],
            frame_read_buckets_us: vec![0; LATENCY_BUCKETS],
            parse_buckets_us: vec![0; LATENCY_BUCKETS],
            cache_lookup_buckets_us: vec![0; LATENCY_BUCKETS],
            analysis_buckets_us: vec![0; LATENCY_BUCKETS],
            wal_append_buckets_us: vec![0; LATENCY_BUCKETS],
            serialize_buckets_us: vec![0; LATENCY_BUCKETS],
        }
    }
}

impl StageStats {
    /// The bucket counts of one stage.
    #[must_use]
    pub fn buckets(&self, stage: RequestStage) -> &[u64] {
        match stage {
            RequestStage::IdleWait => &self.idle_wait_buckets_us,
            RequestStage::FrameRead => &self.frame_read_buckets_us,
            RequestStage::Parse => &self.parse_buckets_us,
            RequestStage::CacheLookup => &self.cache_lookup_buckets_us,
            RequestStage::Analysis => &self.analysis_buckets_us,
            RequestStage::WalAppend => &self.wal_append_buckets_us,
            RequestStage::Serialize => &self.serialize_buckets_us,
        }
    }

    /// One stage's buckets rebuilt as a [`LatencyHistogram`], for quantile
    /// queries.
    #[must_use]
    pub fn histogram(&self, stage: RequestStage) -> LatencyHistogram {
        LatencyHistogram::from_buckets(self.buckets(stage))
    }
}

/// Counters of one admission-plane shard, merged into [`StatsSnapshot`]
/// when the server runs sharded (`serve --shards N`).
///
/// A shard owns a slice of the connection permits and a partition of the
/// compute-side template cache; the authoritative ledger state (admissions,
/// cache identity, WAL) stays global, so shard counters describe *where
/// work ran*, never *what was decided*. Snapshots from servers predating
/// the sharded plane deserialize with an empty shard list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStatsSnapshot {
    /// The shard's index, `0..shards`.
    pub shard: u64,
    /// Connection permits this shard owns (its slice of
    /// `max_connections`).
    pub permits: u64,
    /// Permits currently held by live connections homed here.
    pub active_connections: u64,
    /// Connections accepted onto this shard since start (steals into this
    /// shard included).
    pub connections_served: u64,
    /// Connections whose round-robin home shard was full and that borrowed
    /// a permit from this shard instead.
    pub permit_steals: u64,
    /// Connections whose home was this shard and that were turned away
    /// with `Busy` because every shard was full.
    pub busy_rejections: u64,
    /// Admission requests served by this shard since start.
    pub admit_requests: u64,
    /// Admission requests that committed as part of a pipelined batch of
    /// more than one request (single-request commits are not counted).
    pub batched_requests: u64,
    /// Hits in this shard's compute-cache partition.
    pub compute_hits: u64,
    /// Misses in this shard's compute-cache partition (each one runs a
    /// MINPROCS analysis outside the admission lock).
    pub compute_misses: u64,
    /// Entries evicted from this shard's compute-cache partition by the
    /// capacity bound.
    pub compute_evictions: u64,
    /// Sockets currently registered with this shard's epoll reactor
    /// (always zero under `--conn-model threads`). Defaults for snapshots
    /// predating the reactor.
    #[serde(default)]
    pub reactor_registered_fds: u64,
    /// Times this shard's reactor returned from `epoll_wait` with at least
    /// one ready event (eventfd wakeups included).
    #[serde(default)]
    pub reactor_wakeups: u64,
    /// Total readiness events the reactor has processed; divided by
    /// `reactor_wakeups` this is the ready-per-wakeup batching factor.
    #[serde(default)]
    pub reactor_ready_events: u64,
    /// Per-stage pipeline latency decomposition of the requests this shard
    /// served; buckets follow the same invariants as the global
    /// [`StageStats`].
    #[serde(default)]
    pub stages: StageStats,
}

/// A point-in-time, serializable view of the server's counters, returned by
/// the `Stats` request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Platform size `m` the server was started with.
    pub processors: u32,
    /// Processors currently bound to dedicated clusters.
    pub dedicated_processors: u32,
    /// Processors currently in the shared EDF pool.
    pub shared_processors: u32,
    /// Tasks currently resident (clusters plus shared).
    pub resident_tasks: u64,
    /// High-density tasks admitted since start.
    pub admitted_high: u64,
    /// Low-density tasks admitted since start.
    pub admitted_low: u64,
    /// High-density rejections since start.
    pub rejected_high: u64,
    /// Low-density rejections since start.
    pub rejected_low: u64,
    /// Removals since start.
    pub removed: u64,
    /// Removal replays that hit a first-fit anomaly.
    pub remove_anomalies: u64,
    /// Template-cache hits since start.
    pub cache_hits: u64,
    /// Template-cache misses since start.
    pub cache_misses: u64,
    /// Distinct DAG shapes the template cache holds.
    pub cache_entries: u64,
    /// Entries evicted from the authoritative template cache by the
    /// capacity bound (`--template-cache-cap`); zero while unbounded.
    /// Defaults for snapshots predating the bound.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Admission-latency histogram; index `i` counts decisions that took
    /// `[2^i, 2^{i+1})` microseconds.
    pub latency_buckets_us: Vec<u64>,
    /// Upper bound on the median admission latency, µs (see
    /// [`LatencyHistogram::quantile`]); `None` before the first admission.
    pub latency_p50_us: Option<u64>,
    /// Upper bound on the 90th-percentile admission latency, µs.
    pub latency_p90_us: Option<u64>,
    /// Upper bound on the 99th-percentile admission latency, µs.
    pub latency_p99_us: Option<u64>,
    /// Cumulative analysis cost of every operation since start: LS runs,
    /// demand-bound evaluations, first-fit probes, cache traffic, and
    /// per-phase wall time.
    pub probe: AnalysisProbe,
    /// Transport-level hardening counters (timeouts, oversized frames,
    /// busy rejections, drain events).
    pub transport: TransportStats,
    /// Write-ahead-log and snapshot counters; all zeros when the server
    /// runs without durability.
    pub durability: DurabilityStats,
    /// Per-stage request-pipeline latency decomposition (and the request
    /// total every stage's buckets sum to). Defaults for snapshots from
    /// servers predating the decomposition.
    #[serde(default)]
    pub stages: StageStats,
    /// Per-shard counters of the sharded admission plane, one entry per
    /// shard in index order. Empty for snapshots from servers predating
    /// the sharded plane (serde default).
    #[serde(default)]
    pub shards: Vec<ShardStatsSnapshot>,
}

/// Renders a snapshot in the Prometheus text exposition format — the body
/// behind both the `StatsPrometheus` protocol request and the server's
/// `GET /metrics` line. Metric names are stable API, documented in
/// `docs/OBSERVABILITY.md`.
#[must_use]
pub fn render_prometheus(snapshot: &StatsSnapshot) -> String {
    let mut out = fedsched_telemetry::PromText::new();
    let gauges: [(&str, &str, u64); 5] = [
        (
            "fedsched_processors",
            "Platform size m the server was started with",
            u64::from(snapshot.processors),
        ),
        (
            "fedsched_dedicated_processors",
            "Processors currently bound to dedicated clusters",
            u64::from(snapshot.dedicated_processors),
        ),
        (
            "fedsched_shared_processors",
            "Processors currently in the shared EDF pool",
            u64::from(snapshot.shared_processors),
        ),
        (
            "fedsched_resident_tasks",
            "Tasks currently resident",
            snapshot.resident_tasks,
        ),
        (
            "fedsched_cache_entries",
            "Distinct DAG shapes in the template cache",
            snapshot.cache_entries,
        ),
    ];
    for (name, help, value) in gauges {
        out.header(name, help, "gauge");
        out.sample(name, &[], value);
    }

    out.header(
        "fedsched_admitted_total",
        "Tasks admitted since start, by density class",
        "counter",
    );
    out.sample(
        "fedsched_admitted_total",
        &[("density", "high")],
        snapshot.admitted_high,
    );
    out.sample(
        "fedsched_admitted_total",
        &[("density", "low")],
        snapshot.admitted_low,
    );
    out.header(
        "fedsched_rejected_total",
        "Tasks rejected since start, by density class",
        "counter",
    );
    out.sample(
        "fedsched_rejected_total",
        &[("density", "high")],
        snapshot.rejected_high,
    );
    out.sample(
        "fedsched_rejected_total",
        &[("density", "low")],
        snapshot.rejected_low,
    );
    let counters: [(&str, &str, u64); 5] = [
        (
            "fedsched_removed_total",
            "Tasks removed since start",
            snapshot.removed,
        ),
        (
            "fedsched_remove_anomalies_total",
            "Removal replays that hit a first-fit anomaly",
            snapshot.remove_anomalies,
        ),
        (
            "fedsched_cache_hits_total",
            "Template-cache hits since start",
            snapshot.cache_hits,
        ),
        (
            "fedsched_cache_misses_total",
            "Template-cache misses since start",
            snapshot.cache_misses,
        ),
        (
            "fedsched_template_cache_evictions_total",
            "Template-cache entries evicted by the capacity bound",
            snapshot.cache_evictions,
        ),
    ];
    for (name, help, value) in counters {
        out.header(name, help, "counter");
        out.sample(name, &[], value);
    }

    let transport: [(&str, &str, u64); 8] = [
        (
            "fedsched_connections_served_total",
            "Connections accepted and handed to a handler since start",
            snapshot.transport.connections_served,
        ),
        (
            "fedsched_busy_rejections_total",
            "Connections turned away at the concurrent-connection cap",
            snapshot.transport.busy_rejections,
        ),
        (
            "fedsched_read_timeouts_total",
            "Per-connection read deadlines that expired",
            snapshot.transport.read_timeouts,
        ),
        (
            "fedsched_connections_timed_out_total",
            "Connections dropped after repeated idle read deadlines",
            snapshot.transport.connections_timed_out,
        ),
        (
            "fedsched_oversized_requests_total",
            "Request frames rejected for exceeding the byte cap",
            snapshot.transport.oversized_requests,
        ),
        (
            "fedsched_malformed_requests_total",
            "Request lines that were not valid UTF-8 JSON",
            snapshot.transport.malformed_requests,
        ),
        (
            "fedsched_request_budget_exhausted_total",
            "Connections dropped at the per-connection request budget",
            snapshot.transport.budget_exhausted,
        ),
        (
            "fedsched_drained_connections_total",
            "Connections closed by the graceful-shutdown drain",
            snapshot.transport.drained_connections,
        ),
    ];
    for (name, help, value) in transport {
        out.header(name, help, "counter");
        out.sample(name, &[], value);
    }

    // Durability metrics are always exposed (zeros without a data
    // directory) so dashboards need no conditional scraping.
    out.header(
        "fedsched_wal_enabled",
        "Whether the server runs with a write-ahead log (0/1)",
        "gauge",
    );
    out.sample(
        "fedsched_wal_enabled",
        &[],
        u64::from(snapshot.durability.enabled),
    );
    let wal_gauges: [(&str, &str, u64); 2] = [
        (
            "fedsched_wal_size_bytes",
            "Current on-disk length of the write-ahead log",
            snapshot.durability.wal_len_bytes,
        ),
        (
            "fedsched_wal_last_snapshot_seq",
            "Sequence number of the newest durable snapshot",
            snapshot.durability.last_snapshot_seq,
        ),
    ];
    for (name, help, value) in wal_gauges {
        out.header(name, help, "gauge");
        out.sample(name, &[], value);
    }
    let wal_counters: [(&str, &str, u64); 8] = [
        (
            "fedsched_wal_records_appended_total",
            "Decision records appended to the write-ahead log",
            snapshot.durability.wal_records_appended,
        ),
        (
            "fedsched_wal_bytes_written_total",
            "Bytes appended to the write-ahead log",
            snapshot.durability.wal_bytes_appended,
        ),
        (
            "fedsched_wal_fsyncs_total",
            "fsyncs issued by the write-ahead log",
            snapshot.durability.wal_fsyncs,
        ),
        (
            "fedsched_wal_snapshots_written_total",
            "Durable state snapshots written since start",
            snapshot.durability.snapshots_written,
        ),
        (
            "fedsched_wal_replayed_records_total",
            "Logged decisions re-executed during boot recovery",
            snapshot.durability.replayed_records,
        ),
        (
            "fedsched_wal_replay_nanos_total",
            "Wall time boot recovery spent replaying, nanoseconds",
            snapshot.durability.replay_nanos,
        ),
        (
            "fedsched_wal_truncated_bytes_total",
            "Bytes of torn or corrupt WAL tail truncated at boot",
            snapshot.durability.truncated_bytes,
        ),
        (
            "fedsched_wal_snapshots_skipped_total",
            "Damaged snapshot files skipped during boot recovery",
            snapshot.durability.snapshots_skipped,
        ),
    ];
    for (name, help, value) in wal_counters {
        out.header(name, help, "counter");
        out.sample(name, &[], value);
    }

    out.power_of_two_histogram(
        "fedsched_admit_latency_us",
        "Admission decision latency, microseconds (power-of-two buckets: the _sum and any \
         quantile derived from this histogram are bucket upper bounds, within 2x of the true \
         value, never below it)",
        &snapshot.latency_buckets_us,
    );

    out.header(
        "fedsched_requests_total",
        "Requests fully answered on the NDJSON protocol; every fedsched_stage_duration_* \
         histogram records each of them exactly once",
        "counter",
    );
    out.sample(
        "fedsched_requests_total",
        &[],
        snapshot.stages.requests_total,
    );
    for stage in RequestStage::ALL {
        let family = format!("fedsched_stage_duration_{}_us", stage.name());
        out.power_of_two_histogram(&family, stage.help(), snapshot.stages.buckets(stage));
        // Per-shard series extend the same family: the unlabeled samples
        // above stay the exact aggregate, the labeled ones decompose it.
        for shard in &snapshot.shards {
            out.power_of_two_histogram_labeled(
                &family,
                &[("shard", &shard.shard.to_string())],
                shard.stages.buckets(stage),
            );
        }
    }

    if !snapshot.shards.is_empty() {
        render_shards(&snapshot.shards, &mut out);
    }

    fedsched_telemetry::render_probe("fedsched_analysis", &snapshot.probe, &mut out);
    out.finish()
}

/// One per-shard metric family: name, help text, and the field accessor.
type ShardFamily = (&'static str, &'static str, fn(&ShardStatsSnapshot) -> u64);

/// Renders the per-shard counter families, one `shard`-labeled sample per
/// shard in each.
fn render_shards(shards: &[ShardStatsSnapshot], out: &mut fedsched_telemetry::PromText) {
    let gauges: [ShardFamily; 3] = [
        (
            "fedsched_shard_permits",
            "Connection permits owned by the shard",
            |s| s.permits,
        ),
        (
            "fedsched_shard_active_connections",
            "Permits currently held by live connections on the shard",
            |s| s.active_connections,
        ),
        (
            "fedsched_reactor_registered_fds",
            "Sockets currently registered with the shard's epoll reactor (zero under threads)",
            |s| s.reactor_registered_fds,
        ),
    ];
    for (name, help, value) in gauges {
        out.header(name, help, "gauge");
        for shard in shards {
            out.sample(name, &[("shard", &shard.shard.to_string())], value(shard));
        }
    }
    let counters: [ShardFamily; 10] = [
        (
            "fedsched_shard_connections_served_total",
            "Connections accepted onto the shard since start",
            |s| s.connections_served,
        ),
        (
            "fedsched_shard_permit_steals_total",
            "Connections that borrowed this shard's permit after their home shard filled",
            |s| s.permit_steals,
        ),
        (
            "fedsched_shard_busy_rejections_total",
            "Connections homed on the shard turned away Busy with every shard full",
            |s| s.busy_rejections,
        ),
        (
            "fedsched_shard_admit_requests_total",
            "Admission requests served by the shard",
            |s| s.admit_requests,
        ),
        (
            "fedsched_shard_batched_requests_total",
            "Admission requests committed as part of a multi-request pipeline batch",
            |s| s.batched_requests,
        ),
        (
            "fedsched_shard_compute_cache_hits_total",
            "Hits in the shard's compute-cache partition",
            |s| s.compute_hits,
        ),
        (
            "fedsched_shard_compute_cache_misses_total",
            "Misses in the shard's compute-cache partition (cold MINPROCS analyses)",
            |s| s.compute_misses,
        ),
        (
            "fedsched_shard_compute_cache_evictions_total",
            "Entries evicted from the shard's compute-cache partition",
            |s| s.compute_evictions,
        ),
        (
            "fedsched_reactor_wakeups_total",
            "epoll_wait returns with at least one ready event on the shard's reactor",
            |s| s.reactor_wakeups,
        ),
        (
            "fedsched_reactor_ready_events_total",
            "Readiness events processed by the shard's reactor (ready-per-wakeup numerator)",
            |s| s.reactor_ready_events,
        ),
    ];
    for (name, help, value) in counters {
        out.header(name, help, "counter");
        for shard in shards {
            out.sample(name, &[("shard", &shard.shard.to_string())], value(shard));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_by_power_of_two_microseconds() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100)); // sub-µs → bucket 0
        h.record(Duration::from_micros(1)); // → bucket 0
        h.record(Duration::from_micros(2)); // → bucket 1
        h.record(Duration::from_micros(3)); // → bucket 1
        h.record(Duration::from_micros(1024)); // → bucket 10
        h.record(Duration::from_secs(36_000)); // saturates the last bucket
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // 90 observations in bucket 0 ([1,2) µs), 9 in bucket 3
        // ([8,16) µs), 1 in bucket 10 ([1024,2048) µs).
        for _ in 0..90 {
            h.record(Duration::from_nanos(500));
        }
        for _ in 0..9 {
            h.record(Duration::from_micros(9));
        }
        h.record(Duration::from_micros(1500));
        assert_eq!(h.quantile(0.5), Some(2), "p50 in bucket 0 → upper edge 2");
        assert_eq!(h.quantile(0.9), Some(2), "rank 90 still in bucket 0");
        assert_eq!(h.quantile(0.99), Some(16), "rank 99 in bucket 3");
        assert_eq!(h.quantile(1.0), Some(2048), "max in bucket 10");
        assert_eq!(h.quantile(0.0), Some(2), "p0 is the smallest observation");
        assert_eq!(h.quantile(1.5), None, "out-of-range q");
    }

    #[test]
    fn quantile_saturates_in_the_open_ended_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(36_000));
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn prometheus_rendering_is_valid_and_complete() {
        let snapshot = StatsSnapshot {
            processors: 8,
            dedicated_processors: 3,
            shared_processors: 5,
            resident_tasks: 2,
            admitted_high: 1,
            admitted_low: 1,
            rejected_high: 0,
            rejected_low: 4,
            removed: 0,
            remove_anomalies: 0,
            cache_hits: 1,
            cache_misses: 1,
            cache_entries: 1,
            cache_evictions: 2,
            latency_buckets_us: vec![0; LATENCY_BUCKETS],
            latency_p50_us: None,
            latency_p90_us: None,
            latency_p99_us: None,
            probe: AnalysisProbe::default(),
            transport: TransportStats {
                connections_served: 9,
                busy_rejections: 3,
                read_timeouts: 2,
                connections_timed_out: 1,
                oversized_requests: 5,
                malformed_requests: 6,
                budget_exhausted: 7,
                drained_connections: 4,
            },
            durability: DurabilityStats {
                enabled: true,
                wal_records_appended: 11,
                wal_bytes_appended: 2048,
                wal_fsyncs: 11,
                wal_len_bytes: 2056,
                snapshots_written: 1,
                last_snapshot_seq: 1,
                replayed_records: 5,
                replay_nanos: 1234,
                truncated_bytes: 17,
                snapshots_skipped: 0,
            },
            stages: StageStats {
                requests_total: 3,
                ..StageStats::default()
            },
            shards: Vec::new(),
        };
        let text = render_prometheus(&snapshot);
        fedsched_telemetry::validate_exposition(&text).expect("exposition parses");
        assert!(text
            .lines()
            .any(|l| l == "fedsched_admitted_total{density=\"high\"} 1"));
        assert!(text
            .lines()
            .any(|l| l == "fedsched_template_cache_evictions_total 2"));
        // No shard entries → no shard-labeled families at all.
        assert!(!text.contains("fedsched_shard_"));
        assert!(text
            .lines()
            .any(|l| l == "fedsched_rejected_total{density=\"low\"} 4"));
        assert!(text.lines().any(|l| l == "fedsched_processors 8"));
        assert!(text
            .lines()
            .any(|l| l == "fedsched_admit_latency_us_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("fedsched_analysis_ls_runs_total"));
        // Every transport hardening counter is exported under its stable
        // name with the value the snapshot carried.
        for line in [
            "fedsched_connections_served_total 9",
            "fedsched_busy_rejections_total 3",
            "fedsched_read_timeouts_total 2",
            "fedsched_connections_timed_out_total 1",
            "fedsched_oversized_requests_total 5",
            "fedsched_malformed_requests_total 6",
            "fedsched_request_budget_exhausted_total 7",
            "fedsched_drained_connections_total 4",
        ] {
            assert!(text.lines().any(|l| l == line), "missing {line:?}:\n{text}");
        }
    }

    #[test]
    fn shard_series_extend_the_exposition_with_labeled_samples() {
        let mut snapshot = StatsSnapshot {
            processors: 8,
            dedicated_processors: 0,
            shared_processors: 8,
            resident_tasks: 0,
            admitted_high: 0,
            admitted_low: 0,
            rejected_high: 0,
            rejected_low: 0,
            removed: 0,
            remove_anomalies: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cache_evictions: 0,
            latency_buckets_us: vec![0; LATENCY_BUCKETS],
            latency_p50_us: None,
            latency_p90_us: None,
            latency_p99_us: None,
            probe: AnalysisProbe::default(),
            transport: TransportStats::default(),
            durability: DurabilityStats::default(),
            stages: StageStats::default(),
            shards: Vec::new(),
        };
        for shard in 0..2u64 {
            let mut s = ShardStatsSnapshot {
                shard,
                permits: 4,
                active_connections: shard,
                connections_served: 10 + shard,
                permit_steals: shard,
                busy_rejections: 0,
                admit_requests: 5,
                batched_requests: 2,
                compute_hits: 3,
                compute_misses: 2,
                compute_evictions: 1,
                reactor_registered_fds: 6 + shard,
                reactor_wakeups: 100 + shard,
                reactor_ready_events: 250 + shard,
                stages: StageStats::default(),
            };
            s.stages.requests_total = 5;
            s.stages.analysis_buckets_us[2] = 5;
            snapshot.shards.push(s);
        }
        let text = render_prometheus(&snapshot);
        fedsched_telemetry::validate_exposition(&text).expect("exposition parses");
        for line in [
            "fedsched_shard_permits{shard=\"0\"} 4",
            "fedsched_shard_active_connections{shard=\"1\"} 1",
            "fedsched_shard_connections_served_total{shard=\"1\"} 11",
            "fedsched_shard_permit_steals_total{shard=\"1\"} 1",
            "fedsched_shard_busy_rejections_total{shard=\"0\"} 0",
            "fedsched_shard_admit_requests_total{shard=\"0\"} 5",
            "fedsched_shard_batched_requests_total{shard=\"0\"} 2",
            "fedsched_shard_compute_cache_hits_total{shard=\"0\"} 3",
            "fedsched_shard_compute_cache_misses_total{shard=\"1\"} 2",
            "fedsched_shard_compute_cache_evictions_total{shard=\"1\"} 1",
            "fedsched_reactor_registered_fds{shard=\"0\"} 6",
            "fedsched_reactor_wakeups_total{shard=\"1\"} 101",
            "fedsched_reactor_ready_events_total{shard=\"0\"} 250",
            "fedsched_stage_duration_analysis_us_bucket{shard=\"0\",le=\"8\"} 5",
            "fedsched_stage_duration_analysis_us_bucket{shard=\"1\",le=\"+Inf\"} 5",
            "fedsched_stage_duration_analysis_us_count{shard=\"1\"} 5",
        ] {
            assert!(text.lines().any(|l| l == line), "missing {line:?}:\n{text}");
        }
        // Labeled series extend the existing family: exactly one header.
        assert_eq!(
            text.matches("# TYPE fedsched_stage_duration_analysis_us histogram")
                .count(),
            1
        );
    }

    #[test]
    fn every_histogram_family_ends_with_an_inf_bucket_matching_its_count() {
        let mut snapshot = StatsSnapshot {
            processors: 4,
            dedicated_processors: 0,
            shared_processors: 4,
            resident_tasks: 0,
            admitted_high: 0,
            admitted_low: 0,
            rejected_high: 0,
            rejected_low: 0,
            removed: 0,
            remove_anomalies: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cache_evictions: 0,
            latency_buckets_us: vec![0; LATENCY_BUCKETS],
            latency_p50_us: None,
            latency_p90_us: None,
            latency_p99_us: None,
            probe: AnalysisProbe::default(),
            transport: TransportStats::default(),
            durability: DurabilityStats::default(),
            stages: StageStats::default(),
            shards: vec![ShardStatsSnapshot {
                shard: 0,
                stages: StageStats {
                    requests_total: 5,
                    ..StageStats::default()
                },
                ..ShardStatsSnapshot::default()
            }],
        };
        snapshot.latency_buckets_us[0] = 2;
        snapshot.latency_buckets_us[LATENCY_BUCKETS - 1] = 1;
        snapshot.stages.requests_total = 5;
        snapshot.stages.parse_buckets_us[3] = 5;
        let text = render_prometheus(&snapshot);
        // Collect every histogram family: each must close with a +Inf
        // bucket whose cumulative value equals the family's _count.
        let mut inf: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for line in text.lines() {
            if let Some((series, value)) = line.rsplit_once(' ') {
                if let Some(name) = series.strip_suffix("_bucket{le=\"+Inf\"}") {
                    inf.insert(name, value.parse().unwrap());
                } else if let Some(name) = series.strip_suffix("_count") {
                    counts.insert(name, value.parse().unwrap());
                }
            }
        }
        let expected: Vec<String> = std::iter::once("fedsched_admit_latency_us".to_owned())
            .chain(
                RequestStage::ALL
                    .iter()
                    .map(|s| format!("fedsched_stage_duration_{}_us", s.name())),
            )
            .collect();
        for family in &expected {
            let inf_value = *inf
                .get(family.as_str())
                .unwrap_or_else(|| panic!("{family} has no +Inf bucket:\n{text}"));
            let count = counts[family.as_str()];
            assert_eq!(inf_value, count, "{family}: +Inf bucket != _count");
        }
        assert_eq!(inf["fedsched_admit_latency_us"], 3);
        assert_eq!(inf["fedsched_stage_duration_parse_us"], 5);
        assert!(text.lines().any(|l| l == "fedsched_requests_total 5"));
    }

    #[test]
    fn latency_help_text_declares_bucket_upper_bound_semantics() {
        let snapshot = StatsSnapshot {
            processors: 1,
            dedicated_processors: 0,
            shared_processors: 1,
            resident_tasks: 0,
            admitted_high: 0,
            admitted_low: 0,
            rejected_high: 0,
            rejected_low: 0,
            removed: 0,
            remove_anomalies: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cache_evictions: 0,
            latency_buckets_us: vec![0; LATENCY_BUCKETS],
            latency_p50_us: None,
            latency_p90_us: None,
            latency_p99_us: None,
            probe: AnalysisProbe::default(),
            transport: TransportStats::default(),
            durability: DurabilityStats::default(),
            stages: StageStats::default(),
            shards: Vec::new(),
        };
        let text = render_prometheus(&snapshot);
        // Every latency histogram HELP line must label its quantiles for
        // what they are: power-of-two bucket upper bounds, not exact.
        for line in text.lines().filter(|l| {
            l.starts_with("# HELP fedsched_admit_latency_us")
                || l.starts_with("# HELP fedsched_stage_duration_")
        }) {
            assert!(
                line.contains("upper bounds"),
                "HELP must declare upper-bound semantics: {line}"
            );
        }
    }

    #[test]
    fn stage_stats_expose_buckets_and_histograms_per_stage() {
        let mut stages = StageStats::default();
        stages.wal_append_buckets_us[4] = 7;
        assert_eq!(stages.buckets(RequestStage::WalAppend)[4], 7);
        assert_eq!(stages.buckets(RequestStage::Parse)[4], 0);
        let h = stages.histogram(RequestStage::WalAppend);
        assert_eq!(h.total(), 7);
        assert_eq!(h.quantile(0.5), Some(32), "bucket 4 upper edge");
        for stage in RequestStage::ALL {
            assert_eq!(stages.buckets(stage).len(), LATENCY_BUCKETS);
            assert!(stage
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn snapshots_with_transport_counters_roundtrip() {
        let snapshot = StatsSnapshot {
            processors: 2,
            dedicated_processors: 0,
            shared_processors: 2,
            resident_tasks: 0,
            admitted_high: 0,
            admitted_low: 0,
            rejected_high: 0,
            rejected_low: 0,
            removed: 0,
            remove_anomalies: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cache_evictions: 0,
            latency_buckets_us: vec![0; LATENCY_BUCKETS],
            latency_p50_us: None,
            latency_p90_us: None,
            latency_p99_us: None,
            probe: AnalysisProbe::default(),
            transport: TransportStats {
                connections_served: 9,
                busy_rejections: 3,
                read_timeouts: 2,
                connections_timed_out: 1,
                oversized_requests: 5,
                malformed_requests: 6,
                budget_exhausted: 7,
                drained_connections: 4,
            },
            durability: DurabilityStats {
                enabled: true,
                wal_records_appended: 3,
                ..DurabilityStats::default()
            },
            stages: StageStats {
                requests_total: 12,
                ..StageStats::default()
            },
            shards: vec![ShardStatsSnapshot {
                shard: 1,
                permits: 8,
                active_connections: 2,
                connections_served: 40,
                permit_steals: 3,
                busy_rejections: 1,
                admit_requests: 30,
                batched_requests: 12,
                compute_hits: 20,
                compute_misses: 10,
                compute_evictions: 4,
                reactor_registered_fds: 2,
                reactor_wakeups: 9,
                reactor_ready_events: 15,
                stages: StageStats::default(),
            }],
        };
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.transport, snapshot.transport);
        assert_eq!(back.durability, snapshot.durability);
        assert_eq!(back.stages, snapshot.stages);
        assert_eq!(back.shards, snapshot.shards);
        // A snapshot from a server predating the stage decomposition and
        // the sharded plane deserializes with default (empty) stage stats
        // and no shard entries.
        let stripped = {
            let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
            if let serde_json::Value::Map(entries) = &mut v {
                entries.retain(|(k, _)| k != "stages" && k != "shards" && k != "cache_evictions");
            }
            serde_json::to_string(&v).unwrap()
        };
        let old: StatsSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.stages, StageStats::default());
        assert!(old.shards.is_empty());
        assert_eq!(old.cache_evictions, 0);
    }

    #[test]
    fn histograms_rebuild_from_exported_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(900));
        let rebuilt = LatencyHistogram::from_buckets(h.buckets());
        assert_eq!(rebuilt, h);
        // Excess buckets saturate into the open-ended last one.
        let mut long = vec![0u64; LATENCY_BUCKETS + 3];
        long[LATENCY_BUCKETS + 2] = 4;
        long[0] = 1;
        let clamped = LatencyHistogram::from_buckets(&long);
        assert_eq!(clamped.buckets()[0], 1);
        assert_eq!(clamped.buckets()[LATENCY_BUCKETS - 1], 4);
        assert_eq!(clamped.total(), 5);
    }

    #[test]
    fn wal_metrics_are_always_exposed() {
        let snapshot = StatsSnapshot {
            processors: 2,
            dedicated_processors: 0,
            shared_processors: 2,
            resident_tasks: 0,
            admitted_high: 0,
            admitted_low: 0,
            rejected_high: 0,
            rejected_low: 0,
            removed: 0,
            remove_anomalies: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cache_evictions: 0,
            latency_buckets_us: vec![0; LATENCY_BUCKETS],
            latency_p50_us: None,
            latency_p90_us: None,
            latency_p99_us: None,
            probe: AnalysisProbe::default(),
            transport: TransportStats::default(),
            durability: DurabilityStats::default(),
            stages: StageStats::default(),
            shards: Vec::new(),
        };
        let text = render_prometheus(&snapshot);
        fedsched_telemetry::validate_exposition(&text).expect("exposition parses");
        // Disabled durability still renders the whole family, zeroed.
        for line in [
            "fedsched_wal_enabled 0",
            "fedsched_wal_size_bytes 0",
            "fedsched_wal_records_appended_total 0",
            "fedsched_wal_bytes_written_total 0",
            "fedsched_wal_fsyncs_total 0",
            "fedsched_wal_snapshots_written_total 0",
            "fedsched_wal_replayed_records_total 0",
            "fedsched_wal_truncated_bytes_total 0",
            "fedsched_wal_snapshots_skipped_total 0",
        ] {
            assert!(text.lines().any(|l| l == line), "missing {line:?}:\n{text}");
        }
    }
}
