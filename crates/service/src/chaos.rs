//! A fault-injection client for hammering the admission server with
//! hostile traffic patterns: slowloris trickles, newline-free floods,
//! garbage bytes, partial writes, and mid-request disconnects.
//!
//! Unlike [`Client`](crate::Client), `ChaosClient` speaks raw bytes and
//! never retries or reconnects — every misbehaviour is deliberate and
//! visible. It exists for the chaos test-suite
//! (`crates/service/tests/chaos.rs`) and for anyone reproducing a
//! hardening regression by hand, so it ships as a public module rather
//! than test-only code.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A raw TCP client that misbehaves on purpose.
#[derive(Debug)]
pub struct ChaosClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ChaosClient {
    /// Connects without any protocol handshake.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<ChaosClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ChaosClient {
            reader: BufReader::new(stream.try_clone()?),
            stream,
        })
    }

    /// Applies one deadline to both directions (so a flood against a
    /// stalled server returns instead of blocking forever).
    ///
    /// # Errors
    ///
    /// Socket-option errors.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Writes `bytes` in one burst without reading anything back.
    ///
    /// # Errors
    ///
    /// Write errors.
    pub fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Slowloris: writes `bytes` one byte at a time with `pause` between
    /// bytes, never completing quickly. Stops early (without error) if
    /// the server drops the connection mid-trickle.
    ///
    /// Returns how many bytes the server accepted.
    pub fn trickle(&mut self, bytes: &[u8], pause: Duration) -> usize {
        for (i, b) in bytes.iter().enumerate() {
            if self.stream.write_all(&[*b]).is_err() || self.stream.flush().is_err() {
                return i;
            }
            std::thread::sleep(pause);
        }
        bytes.len()
    }

    /// Floods the server with `total` copies of `byte` and no newline.
    /// Tolerates mid-flood write errors (the server dropping us is the
    /// expected outcome) and returns how many bytes were written.
    pub fn flood(&mut self, byte: u8, total: usize) -> usize {
        let chunk = [byte; 8192];
        let mut written = 0usize;
        while written < total {
            let n = (total - written).min(chunk.len());
            match self.stream.write(&chunk[..n]) {
                Ok(0) | Err(_) => break,
                Ok(w) => written += w,
            }
        }
        let _ = self.stream.flush();
        written
    }

    /// Half-closes the write side, simulating a client that disconnects
    /// mid-request while still listening.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn disconnect_write(&self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }

    /// Reads one response line within `timeout`. Returns `Ok(None)` on a
    /// clean end of stream.
    ///
    /// # Errors
    ///
    /// Read errors, including `WouldBlock`/`TimedOut` on expiry.
    pub fn read_line_within(&mut self, timeout: Duration) -> io::Result<Option<String>> {
        self.stream.set_read_timeout(Some(timeout))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(line)),
            Err(e) => Err(e),
        }
    }

    /// Drains and discards whatever the server sends until end of stream
    /// or `timeout` of silence; returns the byte count. Useful after a
    /// flood to observe the framed `Error` without parsing it.
    ///
    /// # Errors
    ///
    /// Socket-option errors; read errors other than deadline expiry.
    pub fn drain_within(&mut self, timeout: Duration) -> io::Result<usize> {
        self.stream.set_read_timeout(Some(timeout))?;
        let mut sink = [0u8; 4096];
        let mut total = 0usize;
        loop {
            match self.reader.read(&mut sink) {
                Ok(0) => return Ok(total),
                Ok(n) => total += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(total)
                }
                Err(e) => return Err(e),
            }
        }
    }
}
