//! A synchronous client for the admission server: one persistent
//! connection, one request/response pair per call.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use fedsched_dag::task::DagTask;

use crate::protocol::{read_message, write_message, Request, Response};

/// A connected client. Each method writes one request line and blocks for
/// the matching response line.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// I/O errors, including an unexpected end of stream if the server
    /// closed the connection.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_message(&mut self.writer, request)?;
        read_message(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Requests admission of `task`.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn admit(&mut self, task: &DagTask) -> io::Result<Response> {
        self.call(&Request::Admit {
            task: task.clone(),
            trace_id: None,
        })
    }

    /// Requests admission of `task` with a correlation token the server
    /// echoes back and stamps on the admission's telemetry spans.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn admit_traced(&mut self, task: &DagTask, trace_id: u64) -> io::Result<Response> {
        self.call(&Request::Admit {
            task: task.clone(),
            trace_id: Some(trace_id),
        })
    }

    /// Requests removal of the task behind `token`.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn remove(&mut self, token: u64) -> io::Result<Response> {
        self.call(&Request::Remove { token })
    }

    /// Queries the current placement of the task behind `token`.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn query(&mut self, token: u64) -> io::Result<Response> {
        self.call(&Request::Query { token })
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn stats(&mut self) -> io::Result<Response> {
        self.call(&Request::Stats)
    }

    /// Fetches the server's counters in the Prometheus text exposition
    /// format.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn stats_prometheus(&mut self) -> io::Result<Response> {
        self.call(&Request::StatsPrometheus)
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}
