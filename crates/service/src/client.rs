//! A synchronous client for the admission server: one persistent
//! connection, one request/response pair per call — hardened with
//! connect/IO deadlines, automatic reconnection, and a bounded
//! exponential-backoff retry for [`Response::Busy`] rejections.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime};

use fedsched_dag::task::DagTask;

use crate::protocol::{read_message, write_message, Request, Response};

/// Deadlines and retry policy of a [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection (`None` blocks
    /// indefinitely, the pre-hardening behaviour).
    pub connect_timeout: Option<Duration>,
    /// Per-call read *and* write deadline (`None` blocks indefinitely). A
    /// call against a stalled server fails with
    /// [`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`]
    /// instead of hanging forever.
    pub io_timeout: Option<Duration>,
    /// How many times a call is transparently retried (on a fresh
    /// connection, after a backoff) when the server answers
    /// [`Response::Busy`]. Zero returns `Busy` to the caller immediately.
    ///
    /// Only an explicit `Busy` triggers a resend: it guarantees the
    /// server never read the request, so retrying cannot double-apply a
    /// non-idempotent admission. IO errors are *not* retried for the same
    /// reason — the request may have been applied before the failure.
    pub busy_retries: u32,
    /// First retry backoff; doubles per attempt (full jitter applied).
    pub backoff_base: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub backoff_max: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            io_timeout: Some(Duration::from_secs(30)),
            busy_retries: 4,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// One live connection to the server.
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A connected client. Each method writes one request line and blocks for
/// the matching response line, within the configured deadlines.
///
/// After any error — IO failure, deadline expiry, or a `Busy` rejection
/// whose retries are exhausted — the connection is discarded and the
/// *next* call transparently dials a fresh one, so one incident never
/// wedges the client.
#[derive(Debug)]
pub struct Client {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    conn: Option<Conn>,
    rng: u64,
    busy_retry_attempts: u64,
}

impl Client {
    /// Connects to a running server with [`ClientConfig::default`]
    /// deadlines.
    ///
    /// # Errors
    ///
    /// Address-resolution or connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines and retry policy. The dial is
    /// eager, so a wrong address fails here rather than on the first
    /// call.
    ///
    /// # Errors
    ///
    /// Address-resolution or connection errors.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            ));
        }
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0x9e37_79b9_7f4a_7c15, |d| {
                d.subsec_nanos() as u64 ^ d.as_secs()
            });
        let mut client = Client {
            addrs,
            config,
            conn: None,
            rng: seed | 1, // xorshift64 must never be seeded with zero
            busy_retry_attempts: 0,
        };
        client.dial()?;
        Ok(client)
    }

    /// The deadlines and retry policy this client runs under.
    #[must_use]
    pub fn config(&self) -> ClientConfig {
        self.config
    }

    /// How many times this client has re-sent a request after a
    /// [`Response::Busy`] rejection, over its whole lifetime. The final
    /// `Busy` returned when retries are exhausted is not an attempt —
    /// this counts actual re-sends, so a load generator can tell retry
    /// pressure apart from give-ups.
    #[must_use]
    pub fn busy_retry_attempts(&self) -> u64 {
        self.busy_retry_attempts
    }

    fn dial(&mut self) -> io::Result<()> {
        let mut last_err = None;
        for addr in &self.addrs {
            let dialed = match self.config.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                None => TcpStream::connect(addr),
            };
            match dialed {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(self.config.io_timeout)?;
                    stream.set_write_timeout(self.config.io_timeout)?;
                    self.conn = Some(Conn {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: stream,
                    });
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")
        }))
    }

    /// One write/read exchange on the live connection.
    fn exchange(&mut self, request: &Request) -> io::Result<Response> {
        if self.conn.is_none() {
            self.dial()?;
        }
        let conn = self.conn.as_mut().expect("dial succeeded");
        write_message(&mut conn.writer, request)?;
        read_message(&mut conn.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// The next full-jitter backoff for retry `attempt` (0-based), at
    /// least `floor_ms` (the server's `retry_after_ms` advisory).
    fn backoff(&mut self, attempt: u32, floor_ms: u64) -> Duration {
        let doubled = self
            .config
            .backoff_base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let raw = doubled
            .min(self.config.backoff_max)
            .max(Duration::from_millis(floor_ms));
        // xorshift64: cheap, dependency-free jitter so a herd of clients
        // rejected together does not retry in lockstep.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let nanos = raw.as_nanos().clamp(1, u128::from(u64::MAX)) as u64;
        // Uniform in [raw/2, raw].
        Duration::from_nanos(nanos / 2 + self.rng % (nanos / 2 + 1))
    }

    /// Sends one request and reads its response.
    ///
    /// A [`Response::Busy`] rejection is retried up to
    /// [`ClientConfig::busy_retries`] times on fresh connections with
    /// jittered exponential backoff; the final `Busy` is returned if the
    /// server stays saturated. Any error discards the connection, so the
    /// next call starts on a fresh one.
    ///
    /// # Errors
    ///
    /// I/O errors, including `WouldBlock`/`TimedOut` when the configured
    /// [`ClientConfig::io_timeout`] expires and an unexpected end of
    /// stream if the server closed the connection.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            match self.exchange(request) {
                Ok(Response::Busy { retry_after_ms }) => {
                    // The server closed the connection after `Busy`.
                    self.conn = None;
                    if attempt >= self.config.busy_retries {
                        return Ok(Response::Busy { retry_after_ms });
                    }
                    let pause = self.backoff(attempt, retry_after_ms);
                    attempt += 1;
                    self.busy_retry_attempts += 1;
                    std::thread::sleep(pause);
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }

    /// Requests admission of `task`.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn admit(&mut self, task: &DagTask) -> io::Result<Response> {
        self.call(&Request::Admit {
            task: task.clone(),
            trace_id: None,
            echo_timing: false,
        })
    }

    /// Requests admission of `task` with a correlation token the server
    /// echoes back and stamps on the admission's telemetry spans.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn admit_traced(&mut self, task: &DagTask, trace_id: u64) -> io::Result<Response> {
        self.call(&Request::Admit {
            task: task.clone(),
            trace_id: Some(trace_id),
            echo_timing: false,
        })
    }

    /// Requests admission of `task` and asks the server to echo its
    /// per-stage timing breakdown (`timing` on `Admitted`/`Rejected`) —
    /// how a load generator splits server time from network and queueing
    /// time per request.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn admit_timed(&mut self, task: &DagTask, trace_id: Option<u64>) -> io::Result<Response> {
        self.call(&Request::Admit {
            task: task.clone(),
            trace_id,
            echo_timing: true,
        })
    }

    /// Requests removal of the task behind `token`.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn remove(&mut self, token: u64) -> io::Result<Response> {
        self.call(&Request::Remove { token })
    }

    /// Queries the current placement of the task behind `token`.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn query(&mut self, token: u64) -> io::Result<Response> {
        self.call(&Request::Query { token })
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn stats(&mut self) -> io::Result<Response> {
        self.call(&Request::Stats)
    }

    /// Fetches the server's counters in the Prometheus text exposition
    /// format.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn stats_prometheus(&mut self) -> io::Result<Response> {
        self.call(&Request::StatsPrometheus)
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_stays_bounded_and_respects_the_floor() {
        let mut client = Client {
            addrs: vec!["127.0.0.1:1".parse().unwrap()],
            config: ClientConfig {
                backoff_base: Duration::from_millis(50),
                backoff_max: Duration::from_millis(400),
                ..ClientConfig::default()
            },
            conn: None,
            rng: 0x1234_5678_9abc_def1,
            busy_retry_attempts: 0,
        };
        for attempt in 0..32 {
            let pause = client.backoff(attempt, 0);
            let raw = Duration::from_millis(50)
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(Duration::from_millis(400));
            assert!(pause <= raw, "jitter only shrinks the pause");
            assert!(pause >= raw / 2, "full jitter keeps at least half");
        }
        // The server's retry_after_ms advisory is a floor on the raw pause.
        let floored = client.backoff(0, 300);
        assert!(floored >= Duration::from_millis(150));
    }

    #[test]
    fn connecting_to_an_unresolvable_address_fails_eagerly() {
        let err = Client::connect_with(
            "127.0.0.1:1",
            ClientConfig {
                connect_timeout: Some(Duration::from_millis(200)),
                ..ClientConfig::default()
            },
        )
        .unwrap_err();
        // Either refused (nothing listens on port 1) or timed out — the
        // point is the dial fails at construction, not on the first call.
        assert!(matches!(
            err.kind(),
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::TimedOut
                | io::ErrorKind::WouldBlock
                | io::ErrorKind::PermissionDenied
        ));
    }
}
