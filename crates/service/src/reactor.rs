//! The per-shard epoll reactor: one nonblocking event loop per shard
//! multiplexing every connection homed there, replacing the
//! thread-per-connection plane behind `--conn-model reactor`.
//!
//! # Division of labour
//!
//! The **reactor thread** owns the sockets. It runs a level-triggered
//! `epoll_wait` loop (via the vendored [`reactor`] syscall wrapper — all
//! `unsafe` lives there, this crate keeps `#![forbid(unsafe_code)]`)
//! and does only O(bytes) work per wakeup:
//!
//! * an incremental NDJSON **frame decoder**: bytes append to a
//!   per-connection buffer bounded by `max_frame_bytes + 1` (the same
//!   cap-plus-probe-byte guarantee as the threaded `read_frame`), and
//!   complete newline-terminated lines are split off as they arrive;
//! * a 64-slot **timer wheel** implementing the `--io-timeout-ms`
//!   deadlines and idle-strike drops without per-connection timers:
//!   entries are `(token, generation)` pairs revalidated lazily on
//!   expiry, so resetting a deadline on byte arrival is a field store,
//!   never a wheel operation;
//! * an **eventfd wakeup** path ([`ReactorShared`]): acceptors push
//!   accepted sockets and the dispatch pool pushes finished
//!   [`Outcome`]s into a mailbox, then ring the waker so parked
//!   connections make progress without polling.
//!
//! The **dispatch pool** does the admission work. Decoded lines ship to
//! it as a [`Job`]; [`process_lines`] mirrors the threaded
//! `serve_connection` request loop statement for statement — the same
//! batching window, the same counter bumps in the same order, the same
//! error strings — so decisions, counters, WAL bytes, and cache
//! contents are byte-identical under either `--conn-model`. Responses
//! come back as an [`Outcome`] and the reactor writes them out,
//! parking the connection on `EPOLLOUT` only when the socket's send
//! buffer fills.
//!
//! While a job is in flight the connection's fd is **deleted** from the
//! epoll set (level-triggered readiness would otherwise busy-loop on
//! `EPOLLRDHUP` for a half-closed pipelining client) and re-added when
//! its outcome is applied.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ::reactor::{Events, Interest, Poller, Waker};
use fedsched_telemetry::CounterKind;

use crate::protocol::{write_message, Request, Response};
use crate::server::{
    bump, dispatch, dispatch_admit_batch, lock, log_slow_request, serve_metrics_http, wake_workers,
    AdmitItem, Permit, Shard, Shared, StageTimer, Tail, ADMIT_BATCH_MAX,
};
use crate::stats::RequestStage;

/// The eventfd's registration token; connection tokens are slab indices
/// and can never reach it.
const WAKER_TOKEN: u64 = u64::MAX;
/// Events drained per `epoll_wait` call.
const EVENTS_CAPACITY: usize = 1024;
/// Timer-wheel slots; deadlines further out than the wheel's horizon
/// re-insert themselves on expiry (lazy revalidation).
const WHEEL_SLOTS: usize = 64;
/// Floor on the wheel tick so a tiny `--io-timeout-ms` cannot turn the
/// event loop into a spin loop.
const MIN_TICK: Duration = Duration::from_millis(5);
/// Per-read chunk, matching the threaded plane's `BufReader` capacity.
const READ_CHUNK: usize = 8 * 1024;

/// What the dispatch pool hands back for one [`Job`]: the serialized
/// response bytes plus how the connection proceeds.
#[derive(Debug)]
pub(crate) struct Outcome {
    /// Response bytes to write, in request order.
    bytes: Vec<u8>,
    /// Requests served by this job (the connection's budget advances).
    served_delta: u64,
    /// Close after flushing `bytes` (error, metrics scrape, budget
    /// exhaustion, shutdown drain — whatever ended the threaded loop).
    close: bool,
    /// This connection's request flipped the shutdown flag; the worker
    /// already woke the acceptors and every reactor.
    triggered_shutdown: bool,
}

/// One connection's decoded lines, dispatched off the event loop.
#[derive(Debug)]
pub(crate) struct Job {
    /// Home shard (selects the reactor to answer to).
    shard: usize,
    /// Slab token of the connection on that reactor.
    token: usize,
    /// Complete newline-terminated frames, in arrival order.
    lines: Vec<Vec<u8>>,
    /// Requests the connection had served before this job.
    served: u64,
    /// The stage timer carrying the first line's measured idle-wait and
    /// frame-read intervals.
    timer: StageTimer,
}

/// Mail for a reactor: a new connection from an acceptor, or a finished
/// job from the dispatch pool.
#[derive(Debug)]
enum Inbound {
    NewConn(TcpStream, Permit),
    Outcome(usize, Outcome),
}

/// The cross-thread half of one shard's reactor: a mailbox plus the
/// eventfd that wakes the loop when mail arrives.
#[derive(Debug)]
pub(crate) struct ReactorShared {
    inbox: Mutex<Vec<Inbound>>,
    waker: Waker,
    force: AtomicBool,
}

impl ReactorShared {
    /// Creates the mailbox and its eventfd waker.
    pub(crate) fn new() -> io::Result<ReactorShared> {
        Ok(ReactorShared {
            inbox: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            force: AtomicBool::new(false),
        })
    }

    fn lock_inbox(&self) -> MutexGuard<'_, Vec<Inbound>> {
        self.inbox
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, mail: Inbound) {
        self.lock_inbox().push(mail);
        let _ = self.waker.wake();
    }

    fn take_inbox(&self) -> Vec<Inbound> {
        std::mem::take(&mut *self.lock_inbox())
    }

    /// Wakes the loop so it re-checks the shutdown flag and its mailbox.
    pub(crate) fn wake(&self) {
        let _ = self.waker.wake();
    }

    /// Asks the loop to drop every remaining connection and exit — the
    /// drain-timeout backstop, equivalent to abandoned handler threads
    /// dying with the process.
    pub(crate) fn force_exit(&self) {
        self.force.store(true, Ordering::Release);
        let _ = self.waker.wake();
    }

    /// Hands an accepted connection (and its gate permit) to the loop.
    pub(crate) fn push_conn(&self, stream: TcpStream, permit: Permit) {
        self.push(Inbound::NewConn(stream, permit));
    }

    fn push_outcome(&self, token: usize, outcome: Outcome) {
        self.push(Inbound::Outcome(token, outcome));
    }
}

/// The queue between the reactors and the dispatch pool. A plain
/// `VecDeque` under a mutex with a condvar — *not* a channel whose
/// receiver is itself a lock, so any number of workers pop concurrently.
#[derive(Debug)]
pub(crate) struct JobQueue {
    state: Mutex<JobQueueState>,
    ready: Condvar,
}

#[derive(Debug)]
struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    pub(crate) fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(JobQueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, JobQueueState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, job: Job) {
        let mut state = self.lock_state();
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained, so in-flight work finishes before the pool exits.
    fn pop(&self) -> Option<Job> {
        let mut state = self.lock_state();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: workers drain what is left and exit.
    pub(crate) fn close(&self) {
        self.lock_state().closed = true;
        self.ready.notify_all();
    }
}

/// Splits every complete newline-terminated line off the front of
/// `inbuf` (newline included), leaving the incomplete tail in place.
fn split_lines(inbuf: &mut Vec<u8>) -> Vec<Vec<u8>> {
    let mut lines = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = inbuf[start..].iter().position(|&b| b == b'\n') {
        lines.push(inbuf[start..=start + pos].to_vec());
        start += pos + 1;
    }
    if start > 0 {
        inbuf.drain(..start);
    }
    lines
}

/// Where one multiplexed connection is in its request cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for the first byte of the next request (the threaded
    /// plane's `fill_buf` idle wait).
    Idle,
    /// Mid-frame: bytes buffered, no complete line yet.
    Reading,
    /// Lines shipped to the dispatch pool; the fd is deleted from the
    /// epoll set until the outcome returns.
    Dispatching,
    /// Flushing response bytes the socket would not take synchronously.
    Writing,
}

/// One multiplexed connection.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Held for the connection's lifetime; dropping it releases the
    /// shard-gate slot exactly as a finished handler thread would.
    _permit: Permit,
    state: ConnState,
    /// Unconsumed request bytes; `len() <= max_frame_bytes + 1` always.
    inbuf: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    outbuf: Vec<u8>,
    outpos: usize,
    /// After the outbuf flushes: `true` returns to [`ConnState::Idle`],
    /// `false` closes (the outcome or error message said so).
    resume: bool,
    /// Registered with the poller right now (false while dispatching).
    registered: bool,
    served: u64,
    strikes: u32,
    timer: StageTimer,
    deadline: Option<Instant>,
    /// A wheel entry for this connection exists (deadline changes just
    /// store the field; the stale entry revalidates on expiry).
    in_wheel: bool,
}

/// The hashed timer wheel: O(1) arm, O(due) expiry, entries validated
/// against the owning connection's generation when their slot fires.
#[derive(Debug)]
struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    tick: Duration,
    /// Time the cursor slot began.
    base: Instant,
    cursor: usize,
    len: usize,
}

impl TimerWheel {
    fn new(io_timeout: Duration, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_SLOTS],
            tick: (io_timeout / 8).max(MIN_TICK),
            base: now,
            cursor: 0,
            len: 0,
        }
    }

    fn insert(&mut self, token: usize, gen: u64, deadline: Instant) {
        let ahead = deadline.saturating_duration_since(self.base);
        let ticks = (ahead.as_nanos() / self.tick.as_nanos().max(1)).min(WHEEL_SLOTS as u128 - 1);
        let ticks = (ticks as usize).max(1);
        self.slots[(self.cursor + ticks) % WHEEL_SLOTS].push((token, gen));
        self.len += 1;
    }

    /// Advances the cursor to `now`, draining every elapsed slot into
    /// `due` (entries may be stale; the caller revalidates).
    fn advance(&mut self, now: Instant, due: &mut Vec<(usize, u64)>) {
        let elapsed = now.saturating_duration_since(self.base);
        let ticks = elapsed.as_nanos() / self.tick.as_nanos().max(1);
        if self.len == 0 {
            // Nothing armed: snap forward instead of stepping an idle
            // wheel through a long quiet period tick by tick.
            let steps = u32::try_from(ticks).unwrap_or(u32::MAX);
            self.base += self.tick * steps;
            self.cursor = (self.cursor + steps as usize) % WHEEL_SLOTS;
            return;
        }
        for _ in 0..ticks {
            self.base += self.tick;
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            let drained = std::mem::take(&mut self.slots[self.cursor]);
            self.len -= drained.len();
            due.extend(drained);
        }
    }
}

/// One shard's event loop. Spawned by `serve` as `fedsched-reactor-N`.
pub(crate) fn reactor_loop(
    shard_idx: usize,
    shared: &Arc<Shared>,
    rs: &Arc<ReactorShared>,
    jobs: &Arc<JobQueue>,
) {
    match Reactor::new(shard_idx, shared, rs, jobs) {
        Ok(mut reactor) => {
            if let Err(e) = reactor.run() {
                eprintln!("fedsched-reactor-error shard={shard_idx}: {e}");
            }
        }
        Err(e) => eprintln!("fedsched-reactor-error shard={shard_idx}: failed to start: {e}"),
    }
}

struct Reactor<'a> {
    shard_idx: usize,
    shared: &'a Arc<Shared>,
    rs: &'a Arc<ReactorShared>,
    jobs: &'a Arc<JobQueue>,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    /// Bumped when a slot is freed, invalidating stale wheel entries.
    slot_gen: Vec<u64>,
    free: Vec<usize>,
    active: usize,
    wheel: Option<TimerWheel>,
}

impl<'a> Reactor<'a> {
    fn new(
        shard_idx: usize,
        shared: &'a Arc<Shared>,
        rs: &'a Arc<ReactorShared>,
        jobs: &'a Arc<JobQueue>,
    ) -> io::Result<Reactor<'a>> {
        let poller = Poller::new()?;
        poller.add(rs.waker.as_raw_fd(), WAKER_TOKEN, Interest::READABLE)?;
        let wheel = shared
            .limits
            .io_timeout
            .map(|t| TimerWheel::new(t, Instant::now()));
        Ok(Reactor {
            shard_idx,
            shared,
            rs,
            jobs,
            poller,
            conns: Vec::new(),
            slot_gen: Vec::new(),
            free: Vec::new(),
            active: 0,
            wheel,
        })
    }

    fn shard(&self) -> &Shard {
        &self.shared.shards[self.shard_idx]
    }

    fn run(&mut self) -> io::Result<()> {
        let mut events = Events::with_capacity(EVENTS_CAPACITY);
        let mut due: Vec<(usize, u64)> = Vec::new();
        loop {
            // Sleep one tick when any deadline is armed, else until mail
            // arrives (the waker covers shutdown, new sockets, outcomes).
            let timeout = match &self.wheel {
                Some(wheel) if wheel.len > 0 => Some(wheel.tick),
                _ => None,
            };
            let n = self.poller.wait(&mut events, timeout)?;
            if n > 0 {
                bump(&self.shard().reactor.wakeups);
                self.shard()
                    .reactor
                    .ready_events
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            let mut wake_seen = false;
            for event in events.iter() {
                if event.token == WAKER_TOKEN {
                    wake_seen = true;
                    continue;
                }
                self.handle_event(event.token as usize, event.readable, event.writable);
            }
            if wake_seen {
                self.rs.waker.drain();
            }
            // Mail is processed after the event batch so a slot freed by
            // an event is never reused while the batch still references
            // its old occupant.
            for mail in self.rs.take_inbox() {
                match mail {
                    Inbound::NewConn(stream, permit) => self.register(stream, permit),
                    Inbound::Outcome(token, outcome) => self.apply_outcome(token, outcome),
                }
            }
            if self.wheel.is_some() {
                due.clear();
                let now = Instant::now();
                if let Some(wheel) = &mut self.wheel {
                    wheel.advance(now, &mut due);
                }
                for (token, gen) in due.drain(..) {
                    self.expire(token, gen, now);
                }
            }
            if self.rs.force.load(Ordering::Acquire) {
                let tokens: Vec<usize> = self.live_tokens();
                for token in tokens {
                    self.close(token);
                }
                return Ok(());
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                // Between-requests connections drain immediately, as a
                // threaded handler's top-of-loop check would; dispatching
                // and writing connections finish their in-flight step
                // first and drain when it completes.
                let tokens: Vec<usize> = self.live_tokens();
                for token in tokens {
                    let parked = matches!(
                        self.conns[token].as_ref().map(|c| c.state),
                        Some(ConnState::Idle | ConnState::Reading)
                    );
                    if parked {
                        self.drain_close(token);
                    }
                }
                if self.active == 0 {
                    return Ok(());
                }
            }
        }
    }

    fn live_tokens(&self) -> Vec<usize> {
        (0..self.conns.len())
            .filter(|&t| self.conns[t].is_some())
            .collect()
    }

    fn register(&mut self, stream: TcpStream, permit: Permit) {
        if self.shared.shutdown.load(Ordering::Acquire) {
            // The acceptor raced shutdown: drain it like a handler that
            // observed the flag before its first read.
            bump(&self.shared.counters.drained_connections);
            lock(&self.shared.state).count_transport(CounterKind::ConnectionDrained);
            return;
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = match self.free.pop() {
            Some(token) => token,
            None => {
                self.conns.push(None);
                self.slot_gen.push(0);
                self.conns.len() - 1
            }
        };
        let fd = stream.as_raw_fd();
        if self
            .poller
            .add(fd, token as u64, Interest::READABLE)
            .is_err()
        {
            self.free.push(token);
            return;
        }
        self.conns[token] = Some(Conn {
            stream,
            _permit: permit,
            state: ConnState::Idle,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            resume: true,
            registered: true,
            served: 0,
            strikes: 0,
            timer: StageTimer::start(),
            deadline: None,
            in_wheel: false,
        });
        self.active += 1;
        self.shard()
            .reactor
            .registered_fds
            .fetch_add(1, Ordering::Relaxed);
        self.arm_deadline(token, Instant::now());
    }

    /// Arms (or re-arms) the connection's deadline one `io_timeout` out.
    /// A wheel entry is inserted only if none exists — resets are a
    /// field store, revalidated lazily when the stale entry fires.
    fn arm_deadline(&mut self, token: usize, now: Instant) {
        let Some(io_timeout) = self.shared.limits.io_timeout else {
            return;
        };
        let gen = self.slot_gen[token];
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let deadline = now + io_timeout;
        conn.deadline = Some(deadline);
        if !conn.in_wheel {
            conn.in_wheel = true;
            if let Some(wheel) = &mut self.wheel {
                wheel.insert(token, gen, deadline);
            }
        }
    }

    /// A wheel slot fired for `(token, gen)`: drop stale entries,
    /// re-insert not-yet-due deadlines, time out the rest.
    fn expire(&mut self, token: usize, gen: u64, now: Instant) {
        if self.slot_gen.get(token) != Some(&gen) {
            return;
        }
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        match conn.deadline {
            None => conn.in_wheel = false,
            Some(deadline) if deadline > now => {
                if let Some(wheel) = &mut self.wheel {
                    wheel.insert(token, gen, deadline);
                }
            }
            Some(_) => {
                conn.in_wheel = false;
                conn.deadline = None;
                self.fire_timeout(token, now);
            }
        }
    }

    /// The connection's deadline elapsed: the threaded plane's
    /// read-timeout strike logic (or a write that outlived its budget).
    fn fire_timeout(&mut self, token: usize, now: Instant) {
        let state = match self.conns[token].as_ref() {
            Some(conn) => conn.state,
            None => return,
        };
        match state {
            // Outcome application re-arms; a dispatching connection has
            // no IO in flight, so an expiry here is a stale entry.
            ConnState::Dispatching => {}
            // The client would not take its response within the budget;
            // the threaded write timeout kills the handler the same way.
            ConnState::Writing => self.close(token),
            ConnState::Idle | ConnState::Reading => {
                bump(&self.shared.counters.read_timeouts);
                lock(&self.shared.state).count_transport(CounterKind::ReadTimeout);
                if self.shared.shutdown.load(Ordering::Acquire) {
                    self.drain_close(token);
                    return;
                }
                let strikes = {
                    let conn = self.conns[token].as_mut().expect("checked above");
                    conn.strikes += 1;
                    conn.strikes
                };
                if strikes >= self.shared.limits.idle_strikes {
                    bump(&self.shared.counters.connections_timed_out);
                    self.close_with_message(
                        token,
                        &Response::Error {
                            message: "idle timeout: no complete request before the deadline"
                                .to_owned(),
                        },
                    );
                } else {
                    self.arm_deadline(token, now);
                }
            }
        }
    }

    fn handle_event(&mut self, token: usize, readable: bool, writable: bool) {
        let state = match self.conns.get(token).and_then(|c| c.as_ref()) {
            Some(conn) => conn.state,
            None => return, // freed earlier in this batch
        };
        match state {
            ConnState::Writing => {
                if writable || readable {
                    self.pump_out(token);
                }
            }
            ConnState::Idle | ConnState::Reading => {
                if readable {
                    self.handle_readable(token);
                }
            }
            // The fd is deleted while dispatching; an event here is from
            // the current batch racing a just-applied outcome.
            ConnState::Dispatching => {}
        }
    }

    /// One bounded read plus incremental frame decoding. Level-triggered
    /// readiness re-delivers whatever this pass leaves in the socket.
    fn handle_readable(&mut self, token: usize) {
        let cap = self.shared.limits.max_frame_bytes;
        let mut chunk = [0u8; READ_CHUNK];
        let (lines, buffered) = {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            // Total unconsumed bytes never exceed cap + 1 — the same
            // bound the threaded `read_frame` enforces through its
            // `take(cap + 1 - buffered)` probe. The budget is never
            // zero here: a full newline-free buffer closed already.
            let budget = (cap + 1).saturating_sub(conn.inbuf.len());
            let want = budget.min(READ_CHUNK);
            let n = loop {
                match (&conn.stream).read(&mut chunk[..want]) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(_) => {
                        self.close(token);
                        return;
                    }
                }
            };
            if n == 0 {
                // EOF — between requests or mid-line, the threaded
                // handler returns without counters either way.
                self.close(token);
                return;
            }
            if conn.state == ConnState::Idle {
                conn.timer.stamp(RequestStage::IdleWait);
                conn.state = ConnState::Reading;
            }
            conn.inbuf.extend_from_slice(&chunk[..n]);
            (split_lines(&mut conn.inbuf), conn.inbuf.len())
        };
        if !lines.is_empty() {
            let (fd, served, timer) = {
                let conn = self.conns[token].as_mut().expect("checked above");
                conn.timer.stamp(RequestStage::FrameRead);
                conn.strikes = 0;
                conn.deadline = None;
                conn.state = ConnState::Dispatching;
                conn.registered = false;
                (conn.stream.as_raw_fd(), conn.served, conn.timer)
            };
            // Delete, not empty-interest: a level-triggered EPOLLRDHUP
            // from a half-closed client would otherwise spin the loop.
            let _ = self.poller.delete(fd);
            self.jobs.push(Job {
                shard: self.shard_idx,
                token,
                lines,
                served,
                timer,
            });
            return;
        }
        if buffered > cap {
            // cap + 1 newline-free bytes: the frame can never complete.
            bump(&self.shared.counters.oversized_requests);
            lock(&self.shared.state).count_transport(CounterKind::OversizedRequest);
            self.close_with_message(
                token,
                &Response::Error {
                    message: format!("request exceeds the {cap}-byte frame cap"),
                },
            );
            return;
        }
        // Byte arrival resets the deadline (the threaded plane's
        // per-syscall read timeout behaves identically); strikes reset
        // only on a complete frame.
        self.arm_deadline(token, Instant::now());
    }

    /// A finished job: credit the budget, queue the response bytes, and
    /// either resume reading, park on `EPOLLOUT`, or close.
    fn apply_outcome(&mut self, token: usize, outcome: Outcome) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        conn.served += outcome.served_delta;
        conn.outbuf = outcome.bytes;
        conn.outpos = 0;
        conn.resume = !outcome.close;
        self.pump_out(token);
    }

    /// Serializes a final error line and closes once it flushes (or the
    /// write deadline gives up) — the reactor's `let _ = write_message`.
    fn close_with_message(&mut self, token: usize, response: &Response) {
        let mut bytes = Vec::new();
        let _ = write_message(&mut bytes, response);
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        conn.outbuf = bytes;
        conn.outpos = 0;
        conn.resume = false;
        self.pump_out(token);
    }

    /// Flushes the outbuf as far as the socket allows, then finishes or
    /// parks the connection on writability.
    fn pump_out(&mut self, token: usize) {
        let flushed = {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            let before = conn.outpos;
            let result = loop {
                if conn.outpos >= conn.outbuf.len() {
                    break Ok(true);
                }
                match (&conn.stream).write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => break Err(io::Error::from(io::ErrorKind::WriteZero)),
                    Ok(n) => conn.outpos += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(false),
                    Err(e) => break Err(e),
                }
            };
            result.map(|done| (done, conn.outpos > before))
        };
        match flushed {
            Err(_) => self.close(token),
            Ok((true, _)) => self.finish_flush(token),
            Ok((false, progressed)) => {
                let rearm = {
                    let conn = self.conns[token].as_mut().expect("checked above");
                    let was_writing = conn.state == ConnState::Writing;
                    conn.state = ConnState::Writing;
                    !was_writing || progressed
                };
                self.set_interest(token, Interest::WRITABLE);
                if rearm {
                    // Fresh write (or progress made): one io_timeout to
                    // take the rest, like the per-syscall write timeout.
                    self.arm_deadline(token, Instant::now());
                }
            }
        }
    }

    /// The outbuf is empty: close if the outcome said so, drain if the
    /// server is shutting down, otherwise go idle awaiting the next
    /// request (any partial frame already buffered resumes immediately).
    fn finish_flush(&mut self, token: usize) {
        let resume = {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            conn.outbuf.clear();
            conn.outpos = 0;
            conn.resume
        };
        if !resume {
            self.close(token);
            return;
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            self.drain_close(token);
            return;
        }
        {
            let conn = self.conns[token].as_mut().expect("checked above");
            conn.state = ConnState::Idle;
            conn.deadline = None;
            conn.timer = StageTimer::start();
            if !conn.inbuf.is_empty() {
                // The tail of the last read is already buffered: the
                // idle wait is over before it began, exactly as the
                // threaded `fill_buf` would return instantly.
                conn.timer.stamp(RequestStage::IdleWait);
                conn.state = ConnState::Reading;
            }
        }
        self.set_interest(token, Interest::READABLE);
        self.arm_deadline(token, Instant::now());
    }

    /// Closes a between-requests connection because the server is
    /// draining, with the same counters as a threaded handler observing
    /// the shutdown flag.
    fn drain_close(&mut self, token: usize) {
        bump(&self.shared.counters.drained_connections);
        lock(&self.shared.state).count_transport(CounterKind::ConnectionDrained);
        self.close(token);
    }

    fn set_interest(&mut self, token: usize, interest: Interest) {
        let (fd, registered) = {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            let was = conn.registered;
            conn.registered = true;
            (conn.stream.as_raw_fd(), was)
        };
        let result = if registered {
            self.poller.modify(fd, token as u64, interest)
        } else {
            self.poller.add(fd, token as u64, interest)
        };
        if result.is_err() {
            self.close(token);
        }
    }

    /// Tears a connection down: deregisters, closes the socket, frees
    /// the slot (bumping its generation so stale wheel entries die), and
    /// releases the gate permit by dropping it.
    fn close(&mut self, token: usize) {
        let Some(conn) = self.conns[token].take() else {
            return;
        };
        if conn.registered {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
        drop(conn);
        self.slot_gen[token] += 1;
        self.free.push(token);
        self.active -= 1;
        self.shard()
            .reactor
            .registered_fds
            .fetch_sub(1, Ordering::Relaxed);
    }
}

/// One dispatch-pool worker: pops jobs, runs the admission request loop
/// over the decoded lines, and posts the outcome back to the owning
/// reactor. Spawned by `serve` as `fedsched-dispatch-N`.
pub(crate) fn dispatch_loop(
    shared: &Arc<Shared>,
    reactors: &[Arc<ReactorShared>],
    jobs: &Arc<JobQueue>,
) {
    while let Some(job) = jobs.pop() {
        let shard = &shared.shards[job.shard];
        let outcome = process_lines(shared, shard, &job);
        let triggered = outcome.triggered_shutdown;
        reactors[job.shard].push_outcome(job.token, outcome);
        if triggered {
            // What the threaded handler does after serve_connection
            // returns true: unblock the acceptors, then every reactor so
            // parked connections drain.
            wake_workers(shared.local_addr, shared.workers);
            for rs in reactors {
                rs.wake();
            }
        }
    }
}

/// The request loop of the threaded `serve_connection`, replayed over a
/// job's already-framed lines. Every counter bump, batching window,
/// error string, and response is produced in the same order with the
/// same values, which is what keeps the two connection models
/// byte-identical (asserted by `tests/shard_determinism.rs`).
fn process_lines(shared: &Shared, shard: &Shard, job: &Job) -> Outcome {
    let mut out = Vec::new();
    let mut served_delta = 0u64;
    let mut consumed = 0usize;
    let done = |out: Vec<u8>, served_delta, close, triggered_shutdown| Outcome {
        bytes: out,
        served_delta,
        close,
        triggered_shutdown,
    };
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            bump(&shared.counters.drained_connections);
            lock(&shared.state).count_transport(CounterKind::ConnectionDrained);
            return done(out, served_delta, true, false);
        }
        let Some(line) = job.lines.get(consumed) else {
            return done(out, served_delta, false, false);
        };
        consumed += 1;
        // The first line carries the reactor-measured idle-wait and
        // frame-read intervals; later lines were already buffered when
        // the job was cut, so both read stages are ~0 — exactly how the
        // threaded loop stamps lines it drains from its BufReader.
        let mut timer = if consumed == 1 {
            job.timer
        } else {
            let mut t = StageTimer::start();
            t.stamp(RequestStage::IdleWait);
            t.stamp(RequestStage::FrameRead);
            t
        };
        let Ok(text) = std::str::from_utf8(line) else {
            bump(&shared.counters.malformed_requests);
            let _ = write_message(
                &mut out,
                &Response::Error {
                    message: "request is not valid UTF-8".to_owned(),
                },
            );
            return done(out, served_delta, true, false);
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "GET /metrics" || trimmed.starts_with("GET /metrics ") {
            let _ = serve_metrics_http(&mut out, shared);
            return done(out, served_delta, true, false);
        }
        match serde_json::from_str::<Request>(trimmed) {
            Ok(Request::Admit {
                task,
                trace_id,
                echo_timing,
            }) => {
                timer.stamp(RequestStage::Parse);
                let mut batch = vec![AdmitItem {
                    task,
                    trace_id,
                    echo_timing,
                    timer,
                }];
                // Consecutive already-framed Admits join the batch under
                // the same window the threaded drain uses.
                let mut tail = None;
                let served_now = job.served + served_delta;
                while batch.len() < ADMIT_BATCH_MAX
                    && served_now + (batch.len() as u64) < shared.limits.max_requests_per_connection
                {
                    let Some(line) = job.lines.get(consumed) else {
                        break;
                    };
                    consumed += 1;
                    let mut t = StageTimer::start();
                    t.stamp(RequestStage::IdleWait);
                    t.stamp(RequestStage::FrameRead);
                    if line.len() > shared.limits.max_frame_bytes + 1 {
                        tail = Some(Tail::Oversized);
                        break;
                    }
                    let Ok(text) = std::str::from_utf8(line) else {
                        tail = Some(Tail::Malformed("request is not valid UTF-8".to_owned()));
                        break;
                    };
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if trimmed == "GET /metrics" || trimmed.starts_with("GET /metrics ") {
                        tail = Some(Tail::Metrics);
                        break;
                    }
                    match serde_json::from_str::<Request>(trimmed) {
                        Ok(Request::Admit {
                            task,
                            trace_id,
                            echo_timing,
                        }) => {
                            t.stamp(RequestStage::Parse);
                            batch.push(AdmitItem {
                                task,
                                trace_id,
                                echo_timing,
                                timer: t,
                            });
                        }
                        Ok(other) => {
                            t.stamp(RequestStage::Parse);
                            tail = Some(Tail::Request(Box::new(other), t));
                            break;
                        }
                        Err(e) => {
                            tail = Some(Tail::Malformed(e.to_string()));
                            break;
                        }
                    }
                }
                let batch_len = batch.len() as u64;
                for mut answered in dispatch_admit_batch(batch, shared, shard) {
                    let _ = write_message(&mut out, &answered.response);
                    answered.timer.stamp(RequestStage::Serialize);
                    shared.stages.record(&answered.timer);
                    shard.stages.record(&answered.timer);
                    log_slow_request(&shared.limits, answered.trace_id, &answered.timer);
                    served_delta += 1;
                }
                shard
                    .counters
                    .admit_requests
                    .fetch_add(batch_len, Ordering::Relaxed);
                if batch_len > 1 {
                    shard
                        .counters
                        .batched_requests
                        .fetch_add(batch_len, Ordering::Relaxed);
                }
                match tail {
                    None => {}
                    Some(Tail::Request(request, mut t)) => {
                        let stop = matches!(*request, Request::Shutdown);
                        if stop {
                            shared.shutdown.store(true, Ordering::Release);
                        }
                        let response = dispatch(*request, shared, shard, &mut t);
                        let _ = write_message(&mut out, &response);
                        t.stamp(RequestStage::Serialize);
                        shared.stages.record(&t);
                        shard.stages.record(&t);
                        log_slow_request(&shared.limits, None, &t);
                        if stop {
                            return done(out, served_delta, true, true);
                        }
                        served_delta += 1;
                    }
                    Some(Tail::Metrics) => {
                        let _ = serve_metrics_http(&mut out, shared);
                        return done(out, served_delta, true, false);
                    }
                    Some(Tail::Malformed(message)) => {
                        bump(&shared.counters.malformed_requests);
                        let _ = write_message(&mut out, &Response::Error { message });
                        return done(out, served_delta, true, false);
                    }
                    Some(Tail::Oversized) => {
                        bump(&shared.counters.oversized_requests);
                        lock(&shared.state).count_transport(CounterKind::OversizedRequest);
                        let _ = write_message(
                            &mut out,
                            &Response::Error {
                                message: format!(
                                    "request exceeds the {}-byte frame cap",
                                    shared.limits.max_frame_bytes
                                ),
                            },
                        );
                        return done(out, served_delta, true, false);
                    }
                }
            }
            Ok(request) => {
                timer.stamp(RequestStage::Parse);
                let stop = matches!(request, Request::Shutdown);
                if stop {
                    shared.shutdown.store(true, Ordering::Release);
                }
                let response = dispatch(request, shared, shard, &mut timer);
                let _ = write_message(&mut out, &response);
                timer.stamp(RequestStage::Serialize);
                shared.stages.record(&timer);
                shard.stages.record(&timer);
                log_slow_request(&shared.limits, None, &timer);
                if stop {
                    return done(out, served_delta, true, true);
                }
                served_delta += 1;
            }
            Err(e) => {
                bump(&shared.counters.malformed_requests);
                let _ = write_message(
                    &mut out,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return done(out, served_delta, true, false);
            }
        }
        if job.served + served_delta >= shared.limits.max_requests_per_connection {
            bump(&shared.counters.budget_exhausted);
            let _ = write_message(
                &mut out,
                &Response::Error {
                    message: format!(
                        "per-connection request budget ({}) exhausted; reconnect",
                        shared.limits.max_requests_per_connection
                    ),
                },
            );
            return done(out, served_delta, true, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_lines_extracts_complete_frames_and_keeps_the_tail() {
        let mut buf = b"first\nsecond\npartial".to_vec();
        let lines = split_lines(&mut buf);
        assert_eq!(lines, vec![b"first\n".to_vec(), b"second\n".to_vec()]);
        assert_eq!(buf, b"partial");
        // No newline: nothing extracted, the buffer is untouched.
        assert!(split_lines(&mut buf).is_empty());
        assert_eq!(buf, b"partial");
        // An empty line is a frame too (the request loop skips it).
        let mut buf = b"\n".to_vec();
        assert_eq!(split_lines(&mut buf), vec![b"\n".to_vec()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn job_queue_delivers_across_threads_and_drains_after_close() {
        let queue = Arc::new(JobQueue::new());
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut tokens = Vec::new();
                while let Some(job) = queue.pop() {
                    tokens.push(job.token);
                }
                tokens
            })
        };
        for token in 0..3 {
            queue.push(Job {
                shard: 0,
                token,
                lines: Vec::new(),
                served: 0,
                timer: StageTimer::start(),
            });
        }
        queue.close();
        let mut tokens = consumer.join().expect("consumer thread");
        tokens.sort_unstable();
        assert_eq!(tokens, vec![0, 1, 2]);
        // A closed, drained queue answers None immediately.
        assert!(queue.pop().is_none());
    }

    #[test]
    fn timer_wheel_fires_due_entries_and_honors_the_tick_floor() {
        let now = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(1), now);
        assert_eq!(wheel.tick, MIN_TICK, "tiny timeouts clamp to the floor");
        wheel.insert(3, 7, now + Duration::from_millis(1));
        assert_eq!(wheel.len, 1);
        let mut due = Vec::new();
        // Not yet: under one tick elapsed.
        wheel.advance(now + Duration::from_millis(1), &mut due);
        assert!(due.is_empty());
        // One full tick: the entry's slot drains.
        wheel.advance(now + wheel.tick + Duration::from_millis(1), &mut due);
        assert_eq!(due, vec![(3, 7)]);
        assert_eq!(wheel.len, 0);
    }

    #[test]
    fn timer_wheel_snaps_forward_when_idle() {
        let now = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_secs(30), now);
        let tick = wheel.tick;
        let mut due = Vec::new();
        // A long quiet period must not be stepped slot by slot.
        wheel.advance(now + tick * 1000, &mut due);
        assert!(due.is_empty());
        assert!(now + tick * 1000 - wheel.base < tick);
        // Entries inserted after the snap still land ahead of the cursor.
        wheel.insert(1, 0, wheel.base + tick);
        wheel.advance(wheel.base + tick * 2, &mut due);
        assert_eq!(due, vec![(1, 0)]);
    }

    #[test]
    fn reactor_shared_mailbox_accumulates_and_drains() {
        let rs = ReactorShared::new().expect("eventfd");
        let outcome = Outcome {
            bytes: b"x".to_vec(),
            served_delta: 1,
            close: false,
            triggered_shutdown: false,
        };
        rs.push_outcome(9, outcome);
        let mail = rs.take_inbox();
        assert_eq!(mail.len(), 1);
        match &mail[0] {
            Inbound::Outcome(token, outcome) => {
                assert_eq!(*token, 9);
                assert_eq!(outcome.bytes, b"x");
                assert_eq!(outcome.served_delta, 1);
                assert!(!outcome.close);
            }
            other => panic!("unexpected mail {other:?}"),
        }
        assert!(rs.take_inbox().is_empty());
        // force_exit latches the flag and is visible to the loop.
        assert!(!rs.force.load(Ordering::Acquire));
        rs.force_exit();
        assert!(rs.force.load(Ordering::Acquire));
    }
}
