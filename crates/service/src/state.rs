//! The live admission state: incremental FEDCONS over a fixed platform.
//!
//! [`AdmissionState`] maintains exactly the configuration batch
//! [`fedcons`](fedsched_core::fedcons::fedcons) would produce for the
//! currently resident task set, but updates it per-operation instead of
//! re-analysing from scratch:
//!
//! * **High-density admit** — the cluster size `μ*` is *intrinsic* (it
//!   never depends on the residual platform, see
//!   [`intrinsic_min_procs`](fedsched_core::minprocs::intrinsic_min_procs)),
//!   so admission only has to check `Σ μ* + μ*_new ≤ m` and that shrinking
//!   the shared pool displaces no resident shared task. If a shared task
//!   sits on a processor the shrink would remove, a batch run over the
//!   union would fail at that same task (the first-fit prefix below the cut
//!   is identical), so rejecting is exact, not conservative.
//! * **Low-density admit** — the Baruah–Fisher first-fit processes tasks in
//!   non-decreasing deadline order, so inserting a task replays placements
//!   only from its sorted position onward; every placement before that
//!   position is provably what the batch run computes.
//! * **Remove** — freeing a cluster grows the shared pool on the high side
//!   of the processor range and invalidates nothing. Removing a shared task
//!   replays the suffix after its sorted position; in the (rare,
//!   first-fit-anomaly) case where the replay fails, the state keeps the
//!   previous placements minus the removed task — still sound, because
//!   every per-processor admission test is monotone in the resident set —
//!   and counts the event in
//!   [`Stats::remove_anomalies`](crate::stats::Stats).
//!
//! The `consistency_oracle` integration test drives randomized
//! admit/remove interleavings and asserts, operation by operation, that
//! decisions and placements coincide with a batch `fedcons` re-analysis.

use std::fmt;
use std::time::Instant;

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::incremental::SharedPool;
use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::fedcons::FedConsConfig;
use fedsched_dag::task::{DagTask, TaskClass};
use fedsched_telemetry::{CounterKind, EventSink, SpanPhase, TelemetryEvent, TraceId};

use crate::cache::{CachedSizing, TemplateCache};
use crate::protocol::Placement;
use crate::stats::{DurabilityStats, StageStats, Stats, StatsSnapshot, TransportStats};

/// Static configuration of an [`AdmissionState`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Platform size `m` (identical unit-speed processors).
    pub processors: u32,
    /// The FEDCONS knobs: LS priority policy and partition admission test.
    pub fedcons: FedConsConfig,
    /// Capacity of the telemetry ring buffer retaining the most recent
    /// spans and counters; `0` (the default) disables telemetry entirely —
    /// the no-op sink reduces every record call to a single branch.
    pub telemetry_events: usize,
    /// Capacity bound of the `MINPROCS` template cache; `0` (the default)
    /// leaves it unbounded. Part of the durable configuration identity:
    /// the deterministic eviction sequence depends on it.
    pub template_cache_cap: usize,
}

impl AdmissionConfig {
    /// Default FEDCONS configuration on `processors` processors, telemetry
    /// disabled.
    #[must_use]
    pub fn new(processors: u32) -> AdmissionConfig {
        AdmissionConfig {
            processors,
            fedcons: FedConsConfig::default(),
            telemetry_events: 0,
            template_cache_cap: 0,
        }
    }

    /// Enables event telemetry with a ring buffer of `capacity` events.
    #[must_use]
    pub fn with_telemetry(mut self, capacity: usize) -> AdmissionConfig {
        self.telemetry_events = capacity;
        self
    }

    /// Bounds the template cache to `cap` entries (`0` = unbounded).
    #[must_use]
    pub fn with_cache_cap(mut self, cap: usize) -> AdmissionConfig {
        self.template_cache_cap = cap;
        self
    }
}

/// Why a task was rejected. Every reason is *exact*: a batch FEDCONS run
/// over the resident set plus the candidate would reject too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The task has `D > T`; FEDCONS handles constrained deadlines only.
    ArbitraryDeadline,
    /// The longest chain exceeds the deadline; no cluster size helps.
    ChainInfeasible,
    /// The cluster would not fit: `dedicated + μ* > m`.
    InsufficientProcessors {
        /// The candidate's intrinsic cluster size `μ*`.
        required: u32,
        /// Processors already bound to clusters.
        dedicated: u32,
        /// Platform size `m`.
        total: u32,
    },
    /// Carving out the cluster would displace a resident shared task from
    /// a processor the shrunk pool no longer contains.
    DisplacesSharedTask {
        /// The shared-pool size the admission would have left.
        pool: u32,
    },
    /// The shared-pool first-fit found no processor for the task (and, per
    /// deadline order, possibly for a later-deadline resident it would
    /// push over).
    NoSharedFit {
        /// The shared-pool size at the time of the attempt.
        pool: u32,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::ArbitraryDeadline => {
                write!(f, "arbitrary deadline (D > T) is outside FEDCONS")
            }
            RejectReason::ChainInfeasible => {
                write!(f, "longest chain exceeds the deadline")
            }
            RejectReason::InsufficientProcessors {
                required,
                dedicated,
                total,
            } => write!(
                f,
                "cluster needs {required} processors but only {} of {total} are unbound",
                total - dedicated
            ),
            RejectReason::DisplacesSharedTask { pool } => write!(
                f,
                "shrinking the shared pool to {pool} processors would displace a resident task"
            ),
            RejectReason::NoSharedFit { pool } => {
                write!(f, "fits on none of the {pool} shared processors")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

/// A successful admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// Handle for later removal and queries.
    pub token: u64,
    /// Where the task was placed (layout as of this operation).
    pub placement: Placement,
    /// Whether the sizing was served from the template cache (always
    /// `false` for low-density tasks, which need no sizing).
    pub cache_hit: bool,
}

/// A successful removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Removed {
    /// The removed task's token.
    pub token: u64,
    /// Number of shared tasks whose processor changed in the replay.
    pub migrated: u64,
}

/// Removal or query of a token that names no resident task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownToken(pub u64);

impl fmt::Display for UnknownToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token {} names no resident task", self.0)
    }
}

impl std::error::Error for UnknownToken {}

/// A live dedicated cluster.
#[derive(Debug, Clone)]
pub(crate) struct LiveCluster {
    pub(crate) token: u64,
    pub(crate) task: DagTask,
    pub(crate) sizing: CachedSizing,
}

/// A live shared-pool task. `processor` is the pool-local index (global
/// index = dedicated + local).
#[derive(Debug, Clone)]
pub(crate) struct LowEntry {
    pub(crate) token: u64,
    pub(crate) task: DagTask,
    pub(crate) view: SequentialView,
    pub(crate) processor: usize,
}

/// The incremental admission state; see the module docs for the invariants.
#[derive(Debug)]
pub struct AdmissionState {
    pub(crate) config: AdmissionConfig,
    pub(crate) next_token: u64,
    /// Clusters in admission (token) order; they pack the processor range
    /// `[0, dedicated)` in this order.
    pub(crate) clusters: Vec<LiveCluster>,
    pub(crate) dedicated: u32,
    /// Shared tasks sorted by `(deadline, token)` — the batch first-fit
    /// order. Tokens increase monotonically, so ties resolve exactly as the
    /// batch tie-break on ascending `TaskId` does.
    pub(crate) low: Vec<LowEntry>,
    pub(crate) cache: TemplateCache,
    pub(crate) stats: Stats,
    /// Cumulative analysis cost of every operation since start.
    pub(crate) probe: AnalysisProbe,
    /// Where per-operation telemetry spans and counters go.
    pub(crate) sink: EventSink,
}

impl AdmissionState {
    /// An empty state over the given platform.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> AdmissionState {
        AdmissionState {
            config,
            next_token: 0,
            clusters: Vec::new(),
            dedicated: 0,
            low: Vec::new(),
            cache: TemplateCache::with_capacity(config.template_cache_cap),
            stats: Stats::default(),
            probe: AnalysisProbe::default(),
            sink: EventSink::ring(config.telemetry_events),
        }
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Processors currently bound to dedicated clusters.
    #[must_use]
    pub fn dedicated_processors(&self) -> u32 {
        self.dedicated
    }

    /// Processors currently in the shared pool.
    #[must_use]
    pub fn shared_processors(&self) -> u32 {
        self.config.processors - self.dedicated
    }

    /// Number of resident tasks.
    #[must_use]
    pub fn resident_tasks(&self) -> usize {
        self.clusters.len() + self.low.len()
    }

    /// The resident tasks in admission (token) order — the order a batch
    /// re-analysis must use to reproduce this state's decisions.
    #[must_use]
    pub fn resident(&self) -> Vec<(u64, &DagTask)> {
        let mut all: Vec<(u64, &DagTask)> = self
            .clusters
            .iter()
            .map(|c| (c.token, &c.task))
            .chain(self.low.iter().map(|e| (e.token, &e.task)))
            .collect();
        all.sort_by_key(|&(token, _)| token);
        all
    }

    /// The operation counters.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The cumulative analysis cost of every operation since start.
    #[must_use]
    pub fn probe(&self) -> &AnalysisProbe {
        &self.probe
    }

    /// The retained telemetry events, oldest first (empty when the
    /// configured `telemetry_events` capacity is zero).
    #[must_use]
    pub fn telemetry_events(&self) -> Vec<TelemetryEvent> {
        self.sink.events()
    }

    /// Telemetry events lost to ring-buffer eviction.
    #[must_use]
    pub fn telemetry_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// A serializable snapshot of all counters plus platform occupancy.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            processors: self.config.processors,
            dedicated_processors: self.dedicated,
            shared_processors: self.shared_processors(),
            resident_tasks: self.resident_tasks() as u64,
            admitted_high: self.stats.admitted_high,
            admitted_low: self.stats.admitted_low,
            rejected_high: self.stats.rejected_high,
            rejected_low: self.stats.rejected_low,
            removed: self.stats.removed,
            remove_anomalies: self.stats.remove_anomalies,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.len() as u64,
            cache_evictions: self.cache.evictions(),
            latency_buckets_us: self.stats.latency.buckets().to_vec(),
            latency_p50_us: self.stats.latency.quantile(0.5),
            latency_p90_us: self.stats.latency.quantile(0.9),
            latency_p99_us: self.stats.latency.quantile(0.99),
            probe: self.probe,
            // The transport counters live with the server's connection
            // layer, not behind this lock; the server overwrites this
            // field when it assembles the snapshot it actually serves.
            transport: TransportStats::default(),
            // Likewise: the journal lives with the server, which fills
            // this in when durability is enabled.
            durability: DurabilityStats::default(),
            // And the per-stage pipeline histograms, kept lock-free by
            // the connection layer.
            stages: StageStats::default(),
            // Shard counters belong to the sharded connection plane; the
            // server merges them in when it runs with `--shards`.
            shards: Vec::new(),
        }
    }

    /// The frozen LS σ template of a resident dedicated cluster, or
    /// `None` for unknown tokens and shared-pool residents. The journal
    /// uses this to persist the exact template a client was promised.
    #[must_use]
    pub fn template_of(
        &self,
        token: u64,
    ) -> Option<std::sync::Arc<fedsched_graham::schedule::TemplateSchedule>> {
        self.clusters
            .iter()
            .find(|c| c.token == token)
            .map(|c| std::sync::Arc::clone(&c.sizing.template))
    }

    /// Adds `delta` to a counter on the telemetry bus (a no-op when
    /// telemetry is disabled). The durability layer reports WAL appends,
    /// fsyncs, and snapshot writes through this.
    pub fn add_counter(&mut self, kind: CounterKind, delta: u64) {
        self.sink.add(None, kind, delta);
    }

    /// Records one transport-level hardening event (read timeout,
    /// oversized frame, busy rejection, drain) on the telemetry bus, so
    /// connection-layer incidents interleave with analysis spans on the
    /// same timeline. The aggregate counts are kept lock-free by the
    /// server; this is only the event-stream mirror.
    pub fn count_transport(&mut self, kind: CounterKind) {
        self.sink.count(None, kind);
    }

    /// Admits one task, or reports exactly why a batch run would reject the
    /// union too.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`]; the state is unchanged on rejection.
    pub fn admit(&mut self, task: DagTask) -> Result<Admitted, RejectReason> {
        self.admit_traced(task, None)
    }

    /// [`Self::admit`] with a client-supplied correlation token: every
    /// telemetry span and counter the admission produces is stamped with
    /// `trace_id`, so one protocol request can be followed through the
    /// analysis phases in an exported trace.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`]; the state is unchanged on rejection.
    pub fn admit_traced(
        &mut self,
        task: DagTask,
        trace_id: Option<u64>,
    ) -> Result<Admitted, RejectReason> {
        self.admit_seeded(task, trace_id, None)
    }

    /// [`Self::admit_traced`] with an optional sizing precomputed outside
    /// this state's lock (by a shard's compute-cache partition). The seed
    /// is consumed only when the authoritative cache misses — so the
    /// decision, counters, and cache contents are byte-identical to an
    /// unseeded admission (`MINPROCS` is deterministic), with the
    /// expensive compute moved off the lock.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`]; the state is unchanged on rejection.
    pub fn admit_seeded(
        &mut self,
        task: DagTask,
        trace_id: Option<u64>,
        seed: Option<crate::cache::SeededSizing>,
    ) -> Result<Admitted, RejectReason> {
        let trace = trace_id.map(TraceId);
        let start = Instant::now();
        let span = self.sink.start_span();
        let high = task.is_high_density();
        // The analysis layer accumulates these into the platform-lifetime
        // probe; diffing around the admission yields this request's share
        // for the event stream.
        let pruned_before = self.probe.ls_runs_pruned;
        let dispatched_before = self.probe.par_tasks_dispatched;
        let result = self.admit_seeded_inner(task, trace, seed);
        match &result {
            Ok(_) if high => self.stats.admitted_high += 1,
            Ok(_) => self.stats.admitted_low += 1,
            Err(_) if high => self.stats.rejected_high += 1,
            Err(_) => self.stats.rejected_low += 1,
        }
        self.sink.end_span(span, trace, SpanPhase::Admission);
        let pruned = self.probe.ls_runs_pruned.saturating_sub(pruned_before);
        if pruned > 0 {
            self.sink.add(trace, CounterKind::LsRunsPruned, pruned);
        }
        let dispatched = self
            .probe
            .par_tasks_dispatched
            .saturating_sub(dispatched_before);
        if dispatched > 0 {
            self.sink
                .add(trace, CounterKind::ParTasksDispatched, dispatched);
        }
        self.sink.count(
            trace,
            if result.is_ok() {
                CounterKind::AdmissionAccepted
            } else {
                CounterKind::AdmissionRejected
            },
        );
        let elapsed = start.elapsed();
        self.stats.latency.record(elapsed);
        self.probe.wall_nanos = self
            .probe
            .wall_nanos
            .saturating_add(saturating_nanos(elapsed));
        result
    }

    pub(crate) fn admit_inner(
        &mut self,
        task: DagTask,
        trace: Option<TraceId>,
    ) -> Result<Admitted, RejectReason> {
        self.admit_seeded_inner(task, trace, None)
    }

    pub(crate) fn admit_seeded_inner(
        &mut self,
        task: DagTask,
        trace: Option<TraceId>,
        seed: Option<crate::cache::SeededSizing>,
    ) -> Result<Admitted, RejectReason> {
        // Route by the task-layer classification (the same one FEDCONS
        // uses) instead of re-deriving density thresholds here.
        match task.classify() {
            TaskClass::ArbitraryDeadline => Err(RejectReason::ArbitraryDeadline),
            TaskClass::HighDensity => self.admit_high(task, trace, seed),
            TaskClass::LowDensity => self.admit_low(task, trace),
        }
    }

    /// Phase-1 admission (MINPROCS, Fig. 3) of a high-density task.
    fn admit_high(
        &mut self,
        task: DagTask,
        trace: Option<TraceId>,
        seed: Option<crate::cache::SeededSizing>,
    ) -> Result<Admitted, RejectReason> {
        let phase = Instant::now();
        let span = self.sink.start_span();
        let (sizing, cache_hit) =
            self.cache
                .sizing_seeded(&task, self.config.fedcons.policy, &mut self.probe, seed);
        // A cache hit means the interval was pure lookup; a miss means it
        // ran the MINPROCS sizing — report the phase that actually happened.
        self.sink.end_span(
            span,
            trace,
            if cache_hit {
                SpanPhase::CacheLookup
            } else {
                SpanPhase::Sizing
            },
        );
        self.sink.count(
            trace,
            if cache_hit {
                CounterKind::CacheHit
            } else {
                CounterKind::CacheMiss
            },
        );
        self.probe.sizing_nanos = self
            .probe
            .sizing_nanos
            .saturating_add(saturating_nanos(phase.elapsed()));
        let Some(sizing) = sizing else {
            return Err(RejectReason::ChainInfeasible);
        };
        let mu = sizing.processors;
        if self.dedicated + mu > self.config.processors {
            return Err(RejectReason::InsufficientProcessors {
                required: mu,
                dedicated: self.dedicated,
                total: self.config.processors,
            });
        }
        let new_pool = (self.config.processors - self.dedicated - mu) as usize;
        if self.low.iter().any(|e| e.processor >= new_pool) {
            // A resident shared task sits on a processor the shrunk pool
            // would lose. Its first-fit run rejected every lower-indexed
            // processor against resident sets a batch run reproduces
            // verbatim, so the batch run fails at that same task: exact.
            return Err(RejectReason::DisplacesSharedTask {
                pool: new_pool as u32,
            });
        }
        let token = self.next_token;
        self.next_token += 1;
        let first_processor = self.dedicated;
        self.dedicated += mu;
        self.clusters.push(LiveCluster {
            token,
            task,
            sizing,
        });
        Ok(Admitted {
            token,
            placement: Placement::Dedicated {
                first_processor,
                processors: mu,
            },
            cache_hit,
        })
    }

    /// Phase-2 admission (Baruah–Fisher first-fit, Fig. 4) of a low-density
    /// task, replaying placements from its deadline position onward.
    fn admit_low(
        &mut self,
        task: DagTask,
        trace: Option<TraceId>,
    ) -> Result<Admitted, RejectReason> {
        let view = SequentialView::of(&task);
        // Sorted insertion point: ties by token, and the candidate's token
        // will be larger than every resident one.
        let position = self
            .low
            .partition_point(|e| e.view.deadline <= view.deadline);
        let pool = self.shared_processors() as usize;
        let phase = Instant::now();
        let span = self.sink.start_span();
        let (outcome, replay_probe) = self.replay_suffix(position, Some(view), pool);
        self.sink.end_span(span, trace, SpanPhase::Partition);
        self.probe.merge(&replay_probe);
        self.probe.partition_nanos = self
            .probe
            .partition_nanos
            .saturating_add(saturating_nanos(phase.elapsed()));
        match outcome {
            Some(placements) => {
                let token = self.next_token;
                self.next_token += 1;
                for (entry, &k) in self.low[position..].iter_mut().zip(&placements[1..]) {
                    entry.processor = k;
                }
                let local = placements[0];
                self.low.insert(
                    position,
                    LowEntry {
                        token,
                        task,
                        view,
                        processor: local,
                    },
                );
                Ok(Admitted {
                    token,
                    placement: Placement::Shared {
                        processor: self.dedicated + local as u32,
                    },
                    cache_hit: false,
                })
            }
            None => Err(RejectReason::NoSharedFit { pool: pool as u32 }),
        }
    }

    /// Re-runs the deadline-ordered first-fit from `from` onward: residents
    /// before `from` keep their recorded processors (the batch prefix is
    /// provably identical), then `candidate` (if any) and the residents
    /// from `from` on are first-fit in order against `pool` processors.
    /// Returns the new pool-local placements in that order (or `None` if
    /// any of them fits nowhere) together with the analysis cost of the
    /// replay, for the caller to merge into the cumulative probe (this
    /// method takes `&self`, so it cannot write the field itself).
    fn replay_suffix(
        &self,
        from: usize,
        candidate: Option<SequentialView>,
        pool: usize,
    ) -> (Option<Vec<usize>>, AnalysisProbe) {
        let mut probe = AnalysisProbe::default();
        let mut bank = SharedPool::new(pool, self.config.fedcons.partition);
        for entry in &self.low[..from] {
            bank.place(entry.processor, entry.view);
        }
        let placements = candidate
            .into_iter()
            .chain(self.low[from..].iter().map(|e| e.view))
            .map(|v| bank.try_place_probed(v, &mut probe))
            .collect();
        (placements, probe)
    }

    /// Removes a resident task by token.
    ///
    /// # Errors
    ///
    /// [`UnknownToken`] if no resident task carries `token`.
    pub fn remove(&mut self, token: u64) -> Result<Removed, UnknownToken> {
        let span = self.sink.start_span();
        let result = self.remove_inner(token);
        if result.is_ok() {
            self.sink.end_span(span, None, SpanPhase::Removal);
        }
        result
    }

    pub(crate) fn remove_inner(&mut self, token: u64) -> Result<Removed, UnknownToken> {
        if let Some(i) = self.clusters.iter().position(|c| c.token == token) {
            let cluster = self.clusters.remove(i);
            self.dedicated -= cluster.sizing.processors;
            self.stats.removed += 1;
            // The pool grows on the high end of the processor range; every
            // shared placement keeps its pool-local index, and a batch
            // first-fit over the larger pool reproduces those placements
            // (first-fit never reaches the new processors while the old
            // ones accept, and they accept exactly as before).
            return Ok(Removed { token, migrated: 0 });
        }
        if let Some(i) = self.low.iter().position(|e| e.token == token) {
            let _removed = self.low.remove(i);
            let pool = self.shared_processors() as usize;
            self.stats.removed += 1;
            let phase = Instant::now();
            let (outcome, replay_probe) = self.replay_suffix(i, None, pool);
            self.probe.merge(&replay_probe);
            self.probe.partition_nanos = self
                .probe
                .partition_nanos
                .saturating_add(saturating_nanos(phase.elapsed()));
            match outcome {
                Some(placements) => {
                    let mut migrated = 0;
                    for (entry, &k) in self.low[i..].iter_mut().zip(&placements) {
                        if entry.processor != k {
                            migrated += 1;
                        }
                        entry.processor = k;
                    }
                    return Ok(Removed { token, migrated });
                }
                None => {
                    // First-fit anomaly: with less demand, the replayed
                    // suffix found no home for some task. Keep the previous
                    // placements (sound: each processor's resident set is a
                    // subset of an admitted one, and every admission test
                    // is monotone) and record the event.
                    self.stats.remove_anomalies += 1;
                    return Ok(Removed { token, migrated: 0 });
                }
            }
        }
        Err(UnknownToken(token))
    }

    /// The current placement of a resident task, or `None` for unknown
    /// tokens. Cluster base processors are recomputed from the current
    /// cluster list, so earlier removals are reflected.
    #[must_use]
    pub fn query(&self, token: u64) -> Option<Placement> {
        let mut first = 0u32;
        for cluster in &self.clusters {
            if cluster.token == token {
                return Some(Placement::Dedicated {
                    first_processor: first,
                    processors: cluster.sizing.processors,
                });
            }
            first += cluster.sizing.processors;
        }
        self.low
            .iter()
            .find(|e| e.token == token)
            .map(|e| Placement::Shared {
                processor: self.dedicated + e.processor as u32,
            })
    }
}

/// Nanoseconds of a wall-clock interval, saturating at `u64::MAX`.
fn saturating_nanos(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::time::Duration;

    fn wide(units: usize, deadline: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(1), units));
        DagTask::new(
            b.build().unwrap(),
            Duration::new(deadline),
            Duration::new(period),
        )
        .unwrap()
    }

    fn light(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    fn state(m: u32) -> AdmissionState {
        AdmissionState::new(AdmissionConfig::new(m))
    }

    #[test]
    fn admits_high_and_low_like_the_paper_example() {
        let mut s = state(4);
        // 6 unit jobs due in 2 → μ* = 3 (as in the fedsched-core docs).
        let a = s.admit(wide(6, 2, 10)).unwrap();
        assert_eq!(
            a.placement,
            Placement::Dedicated {
                first_processor: 0,
                processors: 3
            }
        );
        let b = s.admit(light(1, 4, 8)).unwrap();
        assert_eq!(b.placement, Placement::Shared { processor: 3 });
        assert_eq!(s.dedicated_processors(), 3);
        assert_eq!(s.shared_processors(), 1);
        assert_eq!(s.resident_tasks(), 2);
    }

    #[test]
    fn rejects_arbitrary_deadline_and_infeasible_chain() {
        let mut s = state(8);
        let arbitrary =
            DagTask::sequential(Duration::new(1), Duration::new(9), Duration::new(4)).unwrap();
        assert_eq!(s.admit(arbitrary), Err(RejectReason::ArbitraryDeadline));
        let mut b = DagBuilder::new();
        let v = b.add_vertices([3, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let chain = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        assert_eq!(s.admit(chain), Err(RejectReason::ChainInfeasible));
        // Counters split by the candidate's density class: the arbitrary
        // task above has δ = 1/4, the chain-infeasible one δ = 6/4.
        assert_eq!(s.stats().rejected_high, 1);
        assert_eq!(s.stats().rejected_low, 1);
        assert_eq!(s.resident_tasks(), 0);
    }

    #[test]
    fn rejects_cluster_that_does_not_fit() {
        let mut s = state(4);
        s.admit(wide(6, 2, 10)).unwrap(); // μ* = 3
        let err = s.admit(wide(6, 2, 11)).unwrap_err();
        assert_eq!(
            err,
            RejectReason::InsufficientProcessors {
                required: 3,
                dedicated: 3,
                total: 4
            }
        );
    }

    #[test]
    fn rejects_cluster_that_would_displace_a_shared_task() {
        let mut s = state(4);
        // Fill the whole 4-processor shared pool with heavy (but still
        // low-density: δ = 3/4) sequential tasks; DBF* lets none share.
        for _ in 0..4 {
            s.admit(light(3, 4, 16)).unwrap();
        }
        // A cluster of μ* = 3 would shrink the pool to 1 ⇒ displacement.
        let err = s.admit(wide(6, 2, 10)).unwrap_err();
        assert_eq!(err, RejectReason::DisplacesSharedTask { pool: 1 });
        assert_eq!(s.resident_tasks(), 4);
    }

    #[test]
    fn remove_frees_cluster_processors_for_later_admissions() {
        let mut s = state(4);
        let a = s.admit(wide(6, 2, 10)).unwrap();
        let err = s.admit(wide(6, 2, 11)).unwrap_err();
        assert!(matches!(err, RejectReason::InsufficientProcessors { .. }));
        s.remove(a.token).unwrap();
        assert_eq!(s.dedicated_processors(), 0);
        let again = s.admit(wide(6, 2, 11)).unwrap();
        assert_eq!(
            again.placement,
            Placement::Dedicated {
                first_processor: 0,
                processors: 3
            }
        );
    }

    #[test]
    fn query_reflects_cluster_compaction_after_removal() {
        let mut s = state(8);
        let a = s.admit(wide(6, 2, 10)).unwrap(); // P0..2
        let b = s.admit(wide(4, 2, 12)).unwrap(); // μ* = 2 → P3..4
        assert_eq!(
            s.query(b.token),
            Some(Placement::Dedicated {
                first_processor: 3,
                processors: 2
            })
        );
        s.remove(a.token).unwrap();
        assert_eq!(
            s.query(b.token),
            Some(Placement::Dedicated {
                first_processor: 0,
                processors: 2
            })
        );
        assert_eq!(s.query(999), None);
    }

    #[test]
    fn low_removal_replays_the_suffix() {
        let mut s = state(2);
        // Two heavy tasks (δ = 3/4 each) fill both processors; the second
        // lands on P1 only because P0 rejects it.
        let a = s.admit(light(3, 4, 16)).unwrap();
        assert_eq!(a.placement, Placement::Shared { processor: 0 });
        let b = s.admit(light(3, 4, 16)).unwrap();
        assert_eq!(b.placement, Placement::Shared { processor: 1 });
        let c = s.admit(light(1, 8, 16)).unwrap();
        // After removing the first heavy task, the replay migrates the
        // later tasks down to first-fit positions.
        let removed = s.remove(a.token).unwrap();
        assert_eq!(removed.migrated, 1);
        assert_eq!(s.query(b.token), Some(Placement::Shared { processor: 0 }));
        let _ = c;
        assert_eq!(s.stats().remove_anomalies, 0);
    }

    #[test]
    fn unknown_token_is_an_error() {
        let mut s = state(2);
        assert_eq!(s.remove(0), Err(UnknownToken(0)));
    }

    #[test]
    fn snapshot_counts_everything() {
        let mut s = state(4);
        let t = wide(6, 2, 10);
        let a = s.admit(t.clone()).unwrap();
        assert!(!a.cache_hit);
        s.remove(a.token).unwrap();
        let b = s.admit(t).unwrap();
        assert!(b.cache_hit);
        s.admit(light(1, 4, 8)).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.admitted_high, 2);
        assert_eq!(snap.admitted_low, 1);
        assert_eq!(snap.removed, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.resident_tasks, 2);
        assert_eq!(snap.latency_buckets_us.iter().sum::<u64>(), 3);
        // The cumulative probe mirrors the cache counters, records the
        // MINPROCS runs of the single cache miss, the shared-pool fit of
        // the low task, and nonzero per-phase wall time.
        assert_eq!(snap.probe.cache_hits, 1);
        assert_eq!(snap.probe.cache_misses, 1);
        assert!(snap.probe.ls_runs > 0);
        assert_eq!(snap.probe.fits_calls, 1);
        assert!(snap.probe.sizing_nanos > 0);
        assert!(snap.probe.partition_nanos > 0);
        assert!(snap.probe.wall_nanos >= snap.probe.partition_nanos);
        // Quantiles cover the three recorded admissions.
        assert!(snap.latency_p50_us.is_some());
        assert!(snap.latency_p99_us >= snap.latency_p50_us);
    }

    #[test]
    fn telemetry_stamps_spans_and_counters_with_the_trace_id() {
        let mut s = AdmissionState::new(AdmissionConfig::new(4).with_telemetry(64));
        let a = s.admit_traced(wide(6, 2, 10), Some(42)).unwrap();
        s.admit_traced(light(1, 4, 8), Some(43)).unwrap();
        s.remove(a.token).unwrap();
        let events = s.telemetry_events();
        let phases_for = |id: u64| -> Vec<SpanPhase> {
            events
                .iter()
                .filter(|e| e.trace_id() == Some(TraceId(id)))
                .filter_map(|e| match e {
                    TelemetryEvent::Span { phase, .. } => Some(*phase),
                    TelemetryEvent::Counter { .. } => None,
                })
                .collect()
        };
        // High-density admission on a cold cache: the sizing actually ran.
        assert_eq!(
            phases_for(42),
            vec![SpanPhase::Sizing, SpanPhase::Admission]
        );
        // Low-density admission: partition replay inside the admission.
        assert_eq!(
            phases_for(43),
            vec![SpanPhase::Partition, SpanPhase::Admission]
        );
        assert!(events.iter().any(|e| matches!(
            e,
            TelemetryEvent::Counter {
                kind: CounterKind::CacheMiss,
                trace_id: Some(TraceId(42)),
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TelemetryEvent::Span {
                phase: SpanPhase::Removal,
                trace_id: None,
                ..
            }
        )));
        // Spans are well-formed on the shared monotonic clock.
        for e in &events {
            if let TelemetryEvent::Span {
                start_nanos,
                end_nanos,
                ..
            } = e
            {
                assert!(end_nanos >= start_nanos);
            }
        }
    }

    #[test]
    fn telemetry_disabled_by_default_records_nothing() {
        let mut s = state(4);
        s.admit_traced(wide(6, 2, 10), Some(1)).unwrap();
        assert!(s.telemetry_events().is_empty());
        assert_eq!(s.telemetry_dropped(), 0);
    }
}
