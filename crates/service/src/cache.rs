//! Memoization of `MINPROCS` sizings and their frozen LS templates.
//!
//! `MINPROCS` is by far the most expensive step of an admission decision:
//! it runs List Scheduling once per candidate cluster size. Its result,
//! however, depends only on the DAG shape (vertex WCETs and edges), the
//! relative deadline, and the priority policy — not on the period, not on
//! the platform, and not on anything else resident in the server (see
//! [`intrinsic_min_procs_probed`]). Admission workloads repeat DAG shapes all the
//! time (the same binary released under different periods, re-admission
//! after removal, …), so the server memoizes sizings under a canonical
//! encoding of exactly those inputs.
//!
//! The cache is optionally **capacity-bounded** with deterministic
//! second-chance (clock) eviction: entries live on a ring in insertion
//! order, every hit sets a referenced bit, and an insert at capacity sweeps
//! the clock hand forward — clearing referenced bits — until it finds an
//! unreferenced victim to evict. The sweep is a pure function of the
//! lookup/insert sequence, so two servers driven by the same decision
//! sequence hold byte-identical caches regardless of wall time or thread
//! interleaving; that is what lets WAL replay and the sharded admission
//! plane reproduce cache contents exactly.

use std::collections::HashMap;
use std::sync::Arc;

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::minprocs::intrinsic_min_procs_probed;
use fedsched_dag::task::DagTask;
use fedsched_graham::list::PriorityPolicy;
use fedsched_graham::schedule::TemplateSchedule;

/// A memoized `MINPROCS` result: the intrinsic cluster size `μ*` and the
/// frozen template that witnesses it (shared, since the same template can
/// be live in several clusters and the cache at once).
#[derive(Debug, Clone)]
pub struct CachedSizing {
    /// The intrinsic minimum processor count `μ*` of the shape.
    pub processors: u32,
    /// The witnessing LS template schedule.
    pub template: Arc<TemplateSchedule>,
}

/// A sizing computed outside the authoritative cache's lock (by a shard's
/// compute partition), handed to [`TemplateCache::sizing_seeded`] so the
/// commit path can consume it instead of re-running `MINPROCS` inline.
#[derive(Debug, Clone)]
pub struct SeededSizing {
    /// The precomputed sizing (`None` = chain-infeasible shape).
    pub sizing: Option<CachedSizing>,
    /// The analysis cost of the compute, merged into the state's probe on
    /// an authoritative miss — exactly the counters an inline compute
    /// would have produced (MINPROCS is deterministic).
    pub probe: AnalysisProbe,
}

#[derive(Debug)]
struct Slot {
    sizing: Option<CachedSizing>,
    referenced: bool,
}

/// The memoization table: canonical task encoding → sizing (`None` records
/// a chain-infeasible shape, so repeat rejections are also cache hits).
#[derive(Debug, Default)]
pub struct TemplateCache {
    map: HashMap<Box<[u64]>, Slot>,
    /// Entries in clock order; `hand` indexes the next eviction candidate.
    ring: Vec<Box<[u64]>>,
    hand: usize,
    /// Maximum resident entries; `0` = unbounded.
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TemplateCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// An empty cache holding at most `cap` entries (`0` = unbounded).
    #[must_use]
    pub fn with_capacity(cap: usize) -> TemplateCache {
        TemplateCache {
            cap,
            ..TemplateCache::default()
        }
    }

    /// The configured capacity bound (`0` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The sizing for `task` under `policy`, computing and memoizing it on
    /// first sight. Returns the sizing (`None` if the task is
    /// chain-infeasible) and whether this was a cache hit.
    pub fn sizing(
        &mut self,
        task: &DagTask,
        policy: PriorityPolicy,
    ) -> (Option<CachedSizing>, bool) {
        let mut scratch = AnalysisProbe::default();
        self.sizing_probed(task, policy, &mut scratch)
    }

    /// [`Self::sizing`] with cost accounting: the hit/miss and, on a miss,
    /// the `MINPROCS` List-Scheduling runs are recorded in `probe`.
    pub fn sizing_probed(
        &mut self,
        task: &DagTask,
        policy: PriorityPolicy,
        probe: &mut AnalysisProbe,
    ) -> (Option<CachedSizing>, bool) {
        self.sizing_seeded(task, policy, probe, None)
    }

    /// [`Self::sizing_probed`] that, on a miss, consumes a sizing already
    /// computed off-lock (by a shard's compute partition) instead of
    /// running `MINPROCS` inline. The seed's probe delta is merged so the
    /// cumulative probe is byte-identical to an inline compute; on a hit
    /// the seed is discarded (the duplicate compute stays invisible, as it
    /// must for counter determinism across shard counts).
    pub fn sizing_seeded(
        &mut self,
        task: &DagTask,
        policy: PriorityPolicy,
        probe: &mut AnalysisProbe,
        seed: Option<SeededSizing>,
    ) -> (Option<CachedSizing>, bool) {
        let key = canonical_key(task, policy);
        if let Some(slot) = self.map.get_mut(&key) {
            slot.referenced = true;
            self.hits += 1;
            probe.cache_hits = probe.cache_hits.saturating_add(1);
            return (slot.sizing.clone(), true);
        }
        self.misses += 1;
        probe.cache_misses = probe.cache_misses.saturating_add(1);
        let computed = match seed {
            Some(seed) => {
                probe.merge(&seed.probe);
                seed.sizing
            }
            None => intrinsic_min_procs_probed(task, policy, probe).map(|r| CachedSizing {
                processors: r.processors,
                template: Arc::new(r.template),
            }),
        };
        self.insert_new(key, computed.clone());
        (computed, false)
    }

    /// A pure lookup for a shard's compute partition: bumps hit/miss
    /// counters and the referenced bit, but never computes. `None` means
    /// the shape is not resident; `Some(sizing)` is the memoized result.
    pub fn lookup(
        &mut self,
        task: &DagTask,
        policy: PriorityPolicy,
    ) -> Option<Option<CachedSizing>> {
        let key = canonical_key(task, policy);
        match self.map.get_mut(&key) {
            Some(slot) => {
                slot.referenced = true;
                self.hits += 1;
                Some(slot.sizing.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a computed sizing unless the shape is already resident
    /// (a concurrent compute may have raced it in), evicting if at
    /// capacity.
    pub fn insert_if_vacant(
        &mut self,
        task: &DagTask,
        policy: PriorityPolicy,
        sizing: Option<CachedSizing>,
    ) {
        let key = canonical_key(task, policy);
        if !self.map.contains_key(&key) {
            self.insert_new(key, sizing);
        }
    }

    /// Inserts a fresh key, evicting via the clock sweep when at capacity.
    fn insert_new(&mut self, key: Box<[u64]>, sizing: Option<CachedSizing>) {
        debug_assert!(!self.map.contains_key(&key));
        if self.cap != 0 && self.ring.len() >= self.cap {
            loop {
                let victim = self.ring[self.hand].clone();
                let slot = self.map.get_mut(&victim).expect("ring keys are resident");
                if slot.referenced {
                    // Second chance: clear and advance.
                    slot.referenced = false;
                    self.hand = (self.hand + 1) % self.ring.len();
                } else {
                    self.map.remove(&victim);
                    self.evictions += 1;
                    self.ring[self.hand] = key.clone();
                    self.hand = (self.hand + 1) % self.ring.len();
                    break;
                }
            }
        } else {
            self.ring.push(key.clone());
        }
        self.map.insert(
            key,
            Slot {
                sizing,
                referenced: false,
            },
        );
    }

    /// Lookups that found a memoized entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run `MINPROCS` (or found nothing resident).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the capacity bound since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of distinct shapes memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The memoized entry for `task` under `policy` without touching the
    /// hit/miss counters or referenced bits — `None` if the shape is not
    /// resident, `Some(None)` for a memoized chain-infeasible shape.
    /// Recovery uses this to verify replayed `CacheInsert` records against
    /// the rebuilt cache without perturbing the statistics it is
    /// reconstructing.
    #[must_use]
    pub fn peek(&self, task: &DagTask, policy: PriorityPolicy) -> Option<&Option<CachedSizing>> {
        self.map
            .get(&canonical_key(task, policy))
            .map(|s| &s.sizing)
    }

    /// Every resident entry as `(canonical key, sizing, referenced)` in
    /// clock order, rotated so the clock hand comes first. The key is the
    /// cache's identity (policy tag, deadline, vertex count, WCETs, sorted
    /// edges) and the order plus referenced bits are the eviction state;
    /// persisting them verbatim makes a later [`TemplateCache::restore`]
    /// exact by construction — the restored clock evicts in the same order
    /// the live one would have.
    #[must_use]
    pub fn export_entries(&self) -> Vec<(Vec<u64>, Option<CachedSizing>, bool)> {
        let n = self.ring.len();
        (0..n)
            .map(|i| {
                let key = &self.ring[(self.hand + i) % n];
                let slot = &self.map[key];
                (key.to_vec(), slot.sizing.clone(), slot.referenced)
            })
            .collect()
    }

    /// Merges exported entries from another server's cache, keeping any
    /// entry this cache already holds and leaving the hit/miss counters
    /// untouched: imported warmth must not fabricate traffic statistics.
    /// Absorption stops at the capacity bound — imported entries never
    /// evict resident ones. Returns how many entries were absorbed.
    ///
    /// Safe across server configurations: a memoized sizing is intrinsic
    /// to `(policy, deadline, DAG shape)` — the canonical key — and never
    /// depends on the platform the donor ran on.
    pub fn absorb_entries(&mut self, entries: Vec<(Vec<u64>, Option<CachedSizing>)>) -> usize {
        let mut absorbed = 0;
        for (key, sizing) in entries {
            if self.cap != 0 && self.ring.len() >= self.cap {
                break;
            }
            let key = key.into_boxed_slice();
            if !self.map.contains_key(&key) {
                self.ring.push(key.clone());
                self.map.insert(
                    key,
                    Slot {
                        sizing,
                        referenced: false,
                    },
                );
                absorbed += 1;
            }
        }
        absorbed
    }

    /// Rebuilds a cache structurally from exported entries (clock order,
    /// hand first) and the counter values the exporting cache carried.
    #[must_use]
    pub fn restore(
        entries: Vec<(Vec<u64>, Option<CachedSizing>, bool)>,
        cap: usize,
        hits: u64,
        misses: u64,
        evictions: u64,
    ) -> TemplateCache {
        let mut cache = TemplateCache {
            cap,
            hits,
            misses,
            evictions,
            ..TemplateCache::default()
        };
        for (key, sizing, referenced) in entries {
            let key = key.into_boxed_slice();
            cache.ring.push(key.clone());
            cache.map.insert(key, Slot { sizing, referenced });
        }
        cache
    }
}

/// One shard's compute-side cache partition: memoized `MINPROCS` sizings
/// *plus the probe counters their computation produced*, so a later
/// authoritative miss can merge the stored counters and stay
/// byte-identical to an inline recompute (`MINPROCS` is deterministic,
/// so a recompute would produce exactly the stored counters again).
///
/// Partitions are pure accelerators: their contents never decide an
/// admission — the authoritative [`TemplateCache`] inside the ledger
/// does — and their hit/miss traffic never reaches the state's probe, so
/// the eviction order here needs no cross-shard-count determinism. A
/// clock sweep like the authoritative cache's bounds resident memory.
#[derive(Debug, Default)]
pub struct ComputePartition {
    map: HashMap<Box<[u64]>, (SeededSizing, bool)>,
    ring: Vec<Box<[u64]>>,
    hand: usize,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ComputePartition {
    /// An empty partition holding at most `cap` entries (`0` = unbounded).
    #[must_use]
    pub fn with_capacity(cap: usize) -> ComputePartition {
        ComputePartition {
            cap,
            ..ComputePartition::default()
        }
    }

    /// The memoized compute result for `task`, or `None` if the shape is
    /// not resident in this partition. Bumps the hit/miss counters and the
    /// referenced bit.
    pub fn lookup(&mut self, task: &DagTask, policy: PriorityPolicy) -> Option<SeededSizing> {
        let key = canonical_key(task, policy);
        match self.map.get_mut(&key) {
            Some((entry, referenced)) => {
                *referenced = true;
                self.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoizes a compute result unless the shape is already resident (a
    /// concurrent compute of the same shape may have raced it in), evicting
    /// by clock sweep at capacity.
    pub fn insert(&mut self, task: &DagTask, policy: PriorityPolicy, entry: SeededSizing) {
        let key = canonical_key(task, policy);
        if self.map.contains_key(&key) {
            return;
        }
        if self.cap != 0 && self.ring.len() >= self.cap {
            loop {
                let victim = self.ring[self.hand].clone();
                let (_, referenced) = self.map.get_mut(&victim).expect("ring keys are resident");
                if *referenced {
                    *referenced = false;
                    self.hand = (self.hand + 1) % self.ring.len();
                } else {
                    self.map.remove(&victim);
                    self.evictions += 1;
                    self.ring[self.hand] = key.clone();
                    self.hand = (self.hand + 1) % self.ring.len();
                    break;
                }
            }
        } else {
            self.ring.push(key.clone());
        }
        self.map.insert(key, (entry, false));
    }

    /// Lookups that found a memoized compute.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing resident (each one costs a `MINPROCS`
    /// run outside the admission lock).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the capacity bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of resident shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A stable 64-bit hash of the canonical cache key (FNV-1a over its
/// words). The sharded admission plane routes a task to the compute-cache
/// partition `shape_hash % shards`, so every connection resolves the same
/// shape on the same shard regardless of which acceptor handled it.
#[must_use]
pub fn shape_hash(task: &DagTask, policy: PriorityPolicy) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in canonical_key(task, policy).iter() {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The canonical encoding of everything `MINPROCS` reads: policy, relative
/// deadline, vertex count, per-vertex WCETs (vertex indices are already
/// canonical in a [`Dag`](fedsched_dag::graph::Dag)), and the sorted edge
/// list. The period is deliberately excluded — for the constrained-deadline
/// tasks the server admits, the sizing never depends on it.
fn canonical_key(task: &DagTask, policy: PriorityPolicy) -> Box<[u64]> {
    let dag = task.dag();
    let policy_tag = match policy {
        PriorityPolicy::ListOrder => 0u64,
        PriorityPolicy::CriticalPathFirst => 1,
        PriorityPolicy::LongestWcetFirst => 2,
    };
    let mut key = Vec::with_capacity(3 + dag.vertex_count() + dag.edge_count());
    key.push(policy_tag);
    key.push(task.deadline().ticks());
    key.push(dag.vertex_count() as u64);
    key.extend(dag.wcets().iter().map(|w| w.ticks()));
    let mut edges: Vec<u64> = dag
        .edges()
        .map(|(from, to)| ((from.index() as u64) << 32) | to.index() as u64)
        .collect();
    edges.sort_unstable();
    key.extend(edges);
    key.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::time::Duration;

    fn wide_task(deadline: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices([1, 1, 1, 1, 1, 1].map(Duration::new));
        DagTask::new(
            b.build().unwrap(),
            Duration::new(deadline),
            Duration::new(period),
        )
        .unwrap()
    }

    /// A sequential task of `c` units due in `c + i`: each `i` is a
    /// distinct cache shape.
    fn shape(i: u64) -> DagTask {
        DagTask::sequential(Duration::new(2), Duration::new(2 + i), Duration::new(100)).unwrap()
    }

    #[test]
    fn second_lookup_hits() {
        let mut cache = TemplateCache::new();
        let t = wide_task(2, 10);
        let (first, hit1) = cache.sizing(&t, PriorityPolicy::ListOrder);
        let (second, hit2) = cache.sizing(&t, PriorityPolicy::ListOrder);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first.unwrap().processors, second.unwrap().processors);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn period_does_not_split_the_cache() {
        let mut cache = TemplateCache::new();
        let (_, h1) = cache.sizing(&wide_task(2, 10), PriorityPolicy::ListOrder);
        let (_, h2) = cache.sizing(&wide_task(2, 50), PriorityPolicy::ListOrder);
        assert!(!h1);
        assert!(h2, "same shape and deadline under another period must hit");
    }

    #[test]
    fn policy_and_deadline_split_the_cache() {
        let mut cache = TemplateCache::new();
        let t = wide_task(2, 10);
        cache.sizing(&t, PriorityPolicy::ListOrder);
        let (_, hit_policy) = cache.sizing(&t, PriorityPolicy::CriticalPathFirst);
        let (_, hit_deadline) = cache.sizing(&wide_task(3, 10), PriorityPolicy::ListOrder);
        assert!(!hit_policy);
        assert!(!hit_deadline);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn probed_lookups_record_hits_misses_and_sizing_cost() {
        let mut cache = TemplateCache::new();
        let t = wide_task(2, 10);
        let mut probe = AnalysisProbe::default();
        cache.sizing_probed(&t, PriorityPolicy::ListOrder, &mut probe);
        assert_eq!((probe.cache_hits, probe.cache_misses), (0, 1));
        assert!(probe.ls_runs > 0, "a miss must run MINPROCS");
        let before = probe.ls_runs;
        cache.sizing_probed(&t, PriorityPolicy::ListOrder, &mut probe);
        assert_eq!((probe.cache_hits, probe.cache_misses), (1, 1));
        assert_eq!(probe.ls_runs, before, "a hit must not re-run MINPROCS");
    }

    #[test]
    fn chain_infeasible_shapes_are_cached_too() {
        let mut b = DagBuilder::new();
        let v = b.add_vertices([3, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let t = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        let mut cache = TemplateCache::new();
        let (s1, h1) = cache.sizing(&t, PriorityPolicy::ListOrder);
        let (s2, h2) = cache.sizing(&t, PriorityPolicy::ListOrder);
        assert!(s1.is_none() && s2.is_none());
        assert!(!h1);
        assert!(h2);
    }

    #[test]
    fn capacity_bound_evicts_and_counts() {
        let mut cache = TemplateCache::with_capacity(4);
        for i in 0..10 {
            cache.sizing(&shape(i), PriorityPolicy::ListOrder);
        }
        assert_eq!(cache.len(), 4, "resident set pinned to the cap");
        assert_eq!(cache.evictions(), 6);
        assert_eq!(cache.misses(), 10);
    }

    #[test]
    fn referenced_entries_get_a_second_chance() {
        let mut cache = TemplateCache::with_capacity(2);
        cache.sizing(&shape(0), PriorityPolicy::ListOrder); // miss
        cache.sizing(&shape(1), PriorityPolicy::ListOrder); // miss
        cache.sizing(&shape(0), PriorityPolicy::ListOrder); // hit → referenced
                                                            // Insert at capacity: the sweep clears shape(0)'s bit and evicts
                                                            // shape(1), the first unreferenced entry.
        cache.sizing(&shape(2), PriorityPolicy::ListOrder);
        assert!(cache.peek(&shape(0), PriorityPolicy::ListOrder).is_some());
        assert!(cache.peek(&shape(1), PriorityPolicy::ListOrder).is_none());
        assert!(cache.peek(&shape(2), PriorityPolicy::ListOrder).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        let drive = |cache: &mut TemplateCache| {
            for i in [0, 1, 2, 0, 3, 4, 1, 5, 0, 6] {
                cache.sizing(&shape(i), PriorityPolicy::ListOrder);
            }
            cache
                .export_entries()
                .iter()
                .map(|(k, _, r)| (k.clone(), *r))
                .collect::<Vec<_>>()
        };
        let mut a = TemplateCache::with_capacity(3);
        let mut b = TemplateCache::with_capacity(3);
        assert_eq!(drive(&mut a), drive(&mut b));
        assert_eq!(a.evictions(), b.evictions());
    }

    #[test]
    fn export_restore_preserves_clock_state() {
        let mut cache = TemplateCache::with_capacity(3);
        for i in [0, 1, 2, 0, 3] {
            cache.sizing(&shape(i), PriorityPolicy::ListOrder);
        }
        let exported = cache.export_entries();
        let restored = TemplateCache::restore(
            exported.clone(),
            3,
            cache.hits(),
            cache.misses(),
            cache.evictions(),
        );
        // Rotated export: re-export equals the original export.
        let key = |e: &Vec<(Vec<u64>, Option<CachedSizing>, bool)>| {
            e.iter()
                .map(|(k, _, r)| (k.clone(), *r))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&restored.export_entries()), key(&exported));
        // The restored clock continues the same eviction sequence.
        let mut live = cache;
        let mut back = restored;
        for i in [4, 5, 1, 6] {
            live.sizing(&shape(i), PriorityPolicy::ListOrder);
            back.sizing(&shape(i), PriorityPolicy::ListOrder);
        }
        assert_eq!(key(&live.export_entries()), key(&back.export_entries()));
        assert_eq!(live.evictions(), back.evictions());
    }

    #[test]
    fn absorb_respects_the_cap() {
        let mut donor = TemplateCache::new();
        for i in 0..6 {
            donor.sizing(&shape(i), PriorityPolicy::ListOrder);
        }
        let entries: Vec<(Vec<u64>, Option<CachedSizing>)> = donor
            .export_entries()
            .into_iter()
            .map(|(k, s, _)| (k, s))
            .collect();
        let mut bounded = TemplateCache::with_capacity(4);
        bounded.sizing(&shape(100), PriorityPolicy::ListOrder);
        let absorbed = bounded.absorb_entries(entries);
        assert_eq!(absorbed, 3, "absorption stops at the cap");
        assert_eq!(bounded.len(), 4);
        assert_eq!(bounded.evictions(), 0, "absorption never evicts residents");
    }

    #[test]
    fn compute_partition_memoizes_sizing_and_probe_under_a_cap() {
        let mut part = ComputePartition::with_capacity(2);
        let policy = PriorityPolicy::ListOrder;
        assert!(part.lookup(&shape(0), policy).is_none());
        let mut probe = AnalysisProbe::default();
        let sizing =
            intrinsic_min_procs_probed(&shape(0), policy, &mut probe).map(|r| CachedSizing {
                processors: r.processors,
                template: Arc::new(r.template),
            });
        part.insert(&shape(0), policy, SeededSizing { sizing, probe });
        let warm = part.lookup(&shape(0), policy).expect("resident");
        assert_eq!(warm.probe.ls_runs, probe.ls_runs, "stored compute cost");
        assert!(warm.sizing.is_some());
        // Duplicate insert of a resident shape is a no-op.
        part.insert(
            &shape(0),
            policy,
            SeededSizing {
                sizing: None,
                probe: AnalysisProbe::default(),
            },
        );
        assert!(part.lookup(&shape(0), policy).unwrap().sizing.is_some());
        // The cap holds: a third distinct shape evicts.
        for i in [1u64, 2] {
            part.lookup(&shape(i), policy);
            part.insert(
                &shape(i),
                policy,
                SeededSizing {
                    sizing: None,
                    probe: AnalysisProbe::default(),
                },
            );
        }
        assert_eq!(part.len(), 2);
        assert_eq!(part.evictions(), 1);
        assert_eq!(part.hits(), 2);
        assert_eq!(part.misses(), 3);
    }

    #[test]
    fn shape_hash_matches_cache_identity() {
        let a = shape(1);
        let b = shape(1);
        let c = shape(2);
        assert_eq!(
            shape_hash(&a, PriorityPolicy::ListOrder),
            shape_hash(&b, PriorityPolicy::ListOrder)
        );
        assert_ne!(
            shape_hash(&a, PriorityPolicy::ListOrder),
            shape_hash(&c, PriorityPolicy::ListOrder)
        );
        assert_ne!(
            shape_hash(&a, PriorityPolicy::ListOrder),
            shape_hash(&a, PriorityPolicy::CriticalPathFirst)
        );
        // Period never splits the cache, so it never splits the route.
        let other_period =
            DagTask::sequential(Duration::new(2), Duration::new(3), Duration::new(999)).unwrap();
        assert_eq!(
            shape_hash(&shape(1), PriorityPolicy::ListOrder),
            shape_hash(&other_period, PriorityPolicy::ListOrder)
        );
    }
}
