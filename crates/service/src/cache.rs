//! Memoization of `MINPROCS` sizings and their frozen LS templates.
//!
//! `MINPROCS` is by far the most expensive step of an admission decision:
//! it runs List Scheduling once per candidate cluster size. Its result,
//! however, depends only on the DAG shape (vertex WCETs and edges), the
//! relative deadline, and the priority policy — not on the period, not on
//! the platform, and not on anything else resident in the server (see
//! [`intrinsic_min_procs_probed`]). Admission workloads repeat DAG shapes all the
//! time (the same binary released under different periods, re-admission
//! after removal, …), so the server memoizes sizings under a canonical
//! encoding of exactly those inputs.

use std::collections::HashMap;
use std::sync::Arc;

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::minprocs::intrinsic_min_procs_probed;
use fedsched_dag::task::DagTask;
use fedsched_graham::list::PriorityPolicy;
use fedsched_graham::schedule::TemplateSchedule;

/// A memoized `MINPROCS` result: the intrinsic cluster size `μ*` and the
/// frozen template that witnesses it (shared, since the same template can
/// be live in several clusters and the cache at once).
#[derive(Debug, Clone)]
pub struct CachedSizing {
    /// The intrinsic minimum processor count `μ*` of the shape.
    pub processors: u32,
    /// The witnessing LS template schedule.
    pub template: Arc<TemplateSchedule>,
}

/// The memoization table: canonical task encoding → sizing (`None` records
/// a chain-infeasible shape, so repeat rejections are also cache hits).
#[derive(Debug, Default)]
pub struct TemplateCache {
    map: HashMap<Box<[u64]>, Option<CachedSizing>>,
    hits: u64,
    misses: u64,
}

impl TemplateCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// The sizing for `task` under `policy`, computing and memoizing it on
    /// first sight. Returns the sizing (`None` if the task is
    /// chain-infeasible) and whether this was a cache hit.
    pub fn sizing(
        &mut self,
        task: &DagTask,
        policy: PriorityPolicy,
    ) -> (Option<CachedSizing>, bool) {
        let mut scratch = AnalysisProbe::default();
        self.sizing_probed(task, policy, &mut scratch)
    }

    /// [`Self::sizing`] with cost accounting: the hit/miss and, on a miss,
    /// the `MINPROCS` List-Scheduling runs are recorded in `probe`.
    pub fn sizing_probed(
        &mut self,
        task: &DagTask,
        policy: PriorityPolicy,
        probe: &mut AnalysisProbe,
    ) -> (Option<CachedSizing>, bool) {
        let key = canonical_key(task, policy);
        if let Some(entry) = self.map.get(&key) {
            self.hits += 1;
            probe.cache_hits = probe.cache_hits.saturating_add(1);
            return (entry.clone(), true);
        }
        self.misses += 1;
        probe.cache_misses = probe.cache_misses.saturating_add(1);
        let computed = intrinsic_min_procs_probed(task, policy, probe).map(|r| CachedSizing {
            processors: r.processors,
            template: Arc::new(r.template),
        });
        self.map.insert(key, computed.clone());
        (computed, false)
    }

    /// Lookups that found a memoized entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run `MINPROCS`.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct shapes memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The memoized entry for `task` under `policy` without touching the
    /// hit/miss counters — `None` if the shape has never been sized,
    /// `Some(None)` for a memoized chain-infeasible shape. Recovery uses
    /// this to verify replayed `CacheInsert` records against the rebuilt
    /// cache without perturbing the statistics it is reconstructing.
    #[must_use]
    pub fn peek(&self, task: &DagTask, policy: PriorityPolicy) -> Option<&Option<CachedSizing>> {
        self.map.get(&canonical_key(task, policy))
    }

    /// Every memoized entry as `(canonical key, sizing)`, sorted by key so
    /// exports are deterministic. The key is the cache's identity (policy
    /// tag, deadline, vertex count, WCETs, sorted edges); persisting it
    /// verbatim makes a later [`TemplateCache::restore`] exact by
    /// construction.
    #[must_use]
    pub fn export_entries(&self) -> Vec<(Vec<u64>, Option<CachedSizing>)> {
        let mut entries: Vec<(Vec<u64>, Option<CachedSizing>)> = self
            .map
            .iter()
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Merges exported entries from another server's cache, keeping any
    /// entry this cache already holds and leaving the hit/miss counters
    /// untouched: imported warmth must not fabricate traffic statistics.
    /// Returns how many entries were absorbed.
    ///
    /// Safe across server configurations: a memoized sizing is intrinsic
    /// to `(policy, deadline, DAG shape)` — the canonical key — and never
    /// depends on the platform the donor ran on.
    pub fn absorb_entries(&mut self, entries: Vec<(Vec<u64>, Option<CachedSizing>)>) -> usize {
        let mut absorbed = 0;
        for (key, sizing) in entries {
            if let std::collections::hash_map::Entry::Vacant(slot) =
                self.map.entry(key.into_boxed_slice())
            {
                slot.insert(sizing);
                absorbed += 1;
            }
        }
        absorbed
    }

    /// Rebuilds a cache structurally from exported entries and the counter
    /// values the exporting cache carried.
    #[must_use]
    pub fn restore(
        entries: Vec<(Vec<u64>, Option<CachedSizing>)>,
        hits: u64,
        misses: u64,
    ) -> TemplateCache {
        TemplateCache {
            map: entries
                .into_iter()
                .map(|(k, v)| (k.into_boxed_slice(), v))
                .collect(),
            hits,
            misses,
        }
    }
}

/// The canonical encoding of everything `MINPROCS` reads: policy, relative
/// deadline, vertex count, per-vertex WCETs (vertex indices are already
/// canonical in a [`Dag`](fedsched_dag::graph::Dag)), and the sorted edge
/// list. The period is deliberately excluded — for the constrained-deadline
/// tasks the server admits, the sizing never depends on it.
fn canonical_key(task: &DagTask, policy: PriorityPolicy) -> Box<[u64]> {
    let dag = task.dag();
    let policy_tag = match policy {
        PriorityPolicy::ListOrder => 0u64,
        PriorityPolicy::CriticalPathFirst => 1,
        PriorityPolicy::LongestWcetFirst => 2,
    };
    let mut key = Vec::with_capacity(3 + dag.vertex_count() + dag.edge_count());
    key.push(policy_tag);
    key.push(task.deadline().ticks());
    key.push(dag.vertex_count() as u64);
    key.extend(dag.wcets().iter().map(|w| w.ticks()));
    let mut edges: Vec<u64> = dag
        .edges()
        .map(|(from, to)| ((from.index() as u64) << 32) | to.index() as u64)
        .collect();
    edges.sort_unstable();
    key.extend(edges);
    key.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::time::Duration;

    fn wide_task(deadline: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices([1, 1, 1, 1, 1, 1].map(Duration::new));
        DagTask::new(
            b.build().unwrap(),
            Duration::new(deadline),
            Duration::new(period),
        )
        .unwrap()
    }

    #[test]
    fn second_lookup_hits() {
        let mut cache = TemplateCache::new();
        let t = wide_task(2, 10);
        let (first, hit1) = cache.sizing(&t, PriorityPolicy::ListOrder);
        let (second, hit2) = cache.sizing(&t, PriorityPolicy::ListOrder);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first.unwrap().processors, second.unwrap().processors);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn period_does_not_split_the_cache() {
        let mut cache = TemplateCache::new();
        let (_, h1) = cache.sizing(&wide_task(2, 10), PriorityPolicy::ListOrder);
        let (_, h2) = cache.sizing(&wide_task(2, 50), PriorityPolicy::ListOrder);
        assert!(!h1);
        assert!(h2, "same shape and deadline under another period must hit");
    }

    #[test]
    fn policy_and_deadline_split_the_cache() {
        let mut cache = TemplateCache::new();
        let t = wide_task(2, 10);
        cache.sizing(&t, PriorityPolicy::ListOrder);
        let (_, hit_policy) = cache.sizing(&t, PriorityPolicy::CriticalPathFirst);
        let (_, hit_deadline) = cache.sizing(&wide_task(3, 10), PriorityPolicy::ListOrder);
        assert!(!hit_policy);
        assert!(!hit_deadline);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn probed_lookups_record_hits_misses_and_sizing_cost() {
        let mut cache = TemplateCache::new();
        let t = wide_task(2, 10);
        let mut probe = AnalysisProbe::default();
        cache.sizing_probed(&t, PriorityPolicy::ListOrder, &mut probe);
        assert_eq!((probe.cache_hits, probe.cache_misses), (0, 1));
        assert!(probe.ls_runs > 0, "a miss must run MINPROCS");
        let before = probe.ls_runs;
        cache.sizing_probed(&t, PriorityPolicy::ListOrder, &mut probe);
        assert_eq!((probe.cache_hits, probe.cache_misses), (1, 1));
        assert_eq!(probe.ls_runs, before, "a hit must not re-run MINPROCS");
    }

    #[test]
    fn chain_infeasible_shapes_are_cached_too() {
        let mut b = DagBuilder::new();
        let v = b.add_vertices([3, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let t = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        let mut cache = TemplateCache::new();
        let (s1, h1) = cache.sizing(&t, PriorityPolicy::ListOrder);
        let (s2, h2) = cache.sizing(&t, PriorityPolicy::ListOrder);
        assert!(s1.is_none() && s2.is_none());
        assert!(!h1);
        assert!(h2);
    }
}
