//! The admission server: a fixed pool of worker threads sharing one
//! `TcpListener` and one mutex-protected [`AdmissionState`].
//!
//! Each worker runs its own accept loop; the kernel hands every incoming
//! connection to exactly one of them. A connection is served to completion
//! (request by request, newline-delimited JSON) before the worker accepts
//! again, so the worker count bounds the number of concurrently served
//! clients. The admission state itself is a single critical section per
//! request — decisions are sub-millisecond, so the lock, not the analysis,
//! is what serializes, and the TCP framing is the actual concurrency
//! surface the tests exercise.
//!
//! Shutdown: any client may send `Shutdown`. The handling worker flips the
//! shared flag, answers `ShuttingDown`, finishes its connection, and then
//! wakes every sibling blocked in `accept` by making one dummy connection
//! per worker. Workers re-check the flag after each accept, so the wake-up
//! connections are dropped unserved.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::protocol::{write_message, Request, Response};
use crate::state::{AdmissionConfig, AdmissionState};
use crate::stats::render_prometheus;

/// Configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port; read
    /// it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker-thread count (clamped to at least 1).
    pub workers: usize,
    /// The admission-control platform and FEDCONS knobs.
    pub admission: AdmissionConfig,
}

/// A running server: the bound address, the shared state, and the worker
/// threads to join.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<AdmissionState>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared admission state (for in-process inspection; network
    /// clients use the `Stats` request).
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<AdmissionState>> {
        Arc::clone(&self.state)
    }

    /// Blocks until every worker has exited (i.e. until some client sent
    /// `Shutdown`, or [`Self::shutdown`] was called).
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Initiates shutdown from the hosting process and joins the workers.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        wake_workers(self.local_addr, self.workers.len());
        self.join();
    }
}

/// Binds the listener and spawns the worker pool.
///
/// # Errors
///
/// I/O errors binding the address or spawning threads.
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let shutdown = Arc::new(AtomicBool::new(false));
    let state = Arc::new(Mutex::new(AdmissionState::new(config.admission)));
    let worker_count = config.workers.max(1);
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let listener = Arc::clone(&listener);
        let shutdown = Arc::clone(&shutdown);
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("fedsched-worker-{i}"))
                .spawn(move || {
                    worker_loop(&listener, &state, &shutdown, local_addr, worker_count);
                })?,
        );
    }
    Ok(ServerHandle {
        local_addr,
        shutdown,
        state,
        workers,
    })
}

/// Locks the state, recovering from a poisoned mutex: the state's own
/// methods leave it consistent even if a panic unwinds elsewhere.
fn lock(state: &Mutex<AdmissionState>) -> MutexGuard<'_, AdmissionState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(
    listener: &TcpListener,
    state: &Mutex<AdmissionState>,
    shutdown: &AtomicBool,
    local_addr: SocketAddr,
    worker_count: usize,
) {
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::Acquire) {
            return; // wake-up connection; drop it unserved
        }
        let triggered_shutdown = serve_connection(stream, state, shutdown).unwrap_or(false);
        if triggered_shutdown {
            wake_workers(local_addr, worker_count);
            return;
        }
    }
}

/// Serves one connection to completion. Returns whether this connection
/// requested shutdown.
///
/// The connection normally carries newline-delimited JSON requests, but a
/// first line reading `GET /metrics` (the opening of a plain HTTP/1.x
/// request, as a Prometheus scraper sends it) is answered with one HTTP
/// response carrying the text exposition, after which the connection
/// closes — scrapers can point at the admission port directly.
fn serve_connection(
    stream: TcpStream,
    state: &Mutex<AdmissionState>,
    shutdown: &AtomicBool,
) -> io::Result<bool> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(false);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "GET /metrics" || trimmed.starts_with("GET /metrics ") {
            serve_metrics_http(&mut writer, state)?;
            return Ok(false);
        }
        match serde_json::from_str::<Request>(trimmed) {
            Ok(request) => {
                let stop = matches!(request, Request::Shutdown);
                if stop {
                    shutdown.store(true, Ordering::Release);
                }
                let response = dispatch(request, state);
                write_message(&mut writer, &response)?;
                if stop {
                    return Ok(true);
                }
            }
            Err(e) => {
                // Malformed request: report and drop the connection — the
                // line framing gives no reliable resynchronization point.
                let _ = write_message(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return Ok(false);
            }
        }
    }
}

/// Answers a `GET /metrics` scrape with one minimal HTTP response and the
/// Prometheus exposition body.
fn serve_metrics_http<W: Write>(writer: &mut W, state: &Mutex<AdmissionState>) -> io::Result<()> {
    let body = render_prometheus(&lock(state).snapshot());
    write!(
        writer,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    writer.flush()
}

/// Maps one request to its response against the shared state.
fn dispatch(request: Request, state: &Mutex<AdmissionState>) -> Response {
    match request {
        Request::Admit { task, trace_id } => match lock(state).admit_traced(task, trace_id) {
            Ok(admitted) => Response::Admitted {
                token: admitted.token,
                placement: admitted.placement,
                cache_hit: admitted.cache_hit,
                trace_id,
            },
            Err(reason) => Response::Rejected {
                reason: reason.to_string(),
                trace_id,
            },
        },
        Request::Remove { token } => match lock(state).remove(token) {
            Ok(removed) => Response::Removed {
                token: removed.token,
                migrated: removed.migrated,
            },
            Err(_) => Response::NotFound { token },
        },
        Request::Query { token } => match lock(state).query(token) {
            Some(placement) => Response::TaskInfo { token, placement },
            None => Response::NotFound { token },
        },
        Request::Stats => Response::Stats {
            snapshot: lock(state).snapshot(),
        },
        Request::StatsPrometheus => Response::Metrics {
            text: render_prometheus(&lock(state).snapshot()),
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Unblocks workers sitting in `accept` by connecting once per worker.
fn wake_workers(addr: SocketAddr, worker_count: usize) {
    for _ in 0..worker_count {
        let _ = TcpStream::connect(addr);
    }
}
