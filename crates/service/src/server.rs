//! The admission server: acceptor threads sharing one `TcpListener`, a
//! bounded pool of per-connection handler threads, a **shard-per-core
//! connection plane**, and one mutex-protected [`AdmissionState`] — the
//! authoritative admission ledger.
//!
//! Each acceptor runs its own accept loop; the kernel hands every
//! incoming connection to exactly one of them. The acceptor never serves
//! a connection itself — it either hands the connection to a freshly
//! spawned handler thread (if a permit is available under
//! [`ConnectionLimits::max_connections`]) or answers a framed
//! [`Response::Busy`] and closes. A slow or hostile client therefore pins
//! at most its own handler and one permit, never an acceptor, and a
//! well-formed client always gets *some* answer quickly: a served
//! request or a fast `Busy`.
//!
//! # The sharded connection plane
//!
//! With [`ServerConfig::shards`] set to `N` (default: one shard per
//! available core), the connection permits, per-stage histograms, and the
//! `MINPROCS` compute cache are partitioned `N` ways into shards:
//!
//! * **Round-robin fan-out with stealing** — the acceptor assigns each
//!   connection a *home shard* round-robin; if the home shard's permits
//!   are exhausted it steals a permit from the first sibling with one
//!   free, and only when *every* shard is full does the client get
//!   `Busy`. Admission never queues behind a saturated shard.
//! * **Shape-routed compute partitions** — each shard owns a
//!   [`ComputePartition`], and a DAG shape deterministically routes to
//!   partition `shape_hash % N` (not the connection's home shard), so
//!   concurrent admissions of the same shape contend on one small
//!   partition lock instead of the ledger. The expensive `MINPROCS`
//!   sizing runs *off every lock* (its internal fedsched-parallel workers
//!   fan out from the request path), and the ledger consumes the
//!   precomputed result as a *seed*: decisions, counters, and cache
//!   contents stay byte-identical to the single-lock engine at any shard
//!   count, because the authoritative [`AdmissionState`] still orders
//!   every decision and a seed carries the exact probe an inline compute
//!   would have produced.
//! * **Batched admission** — a pipelining client's already-buffered
//!   `Admit` lines are drained (up to `ADMIT_BATCH_MAX` per ledger
//!   acquisition) and admitted under one state lock, amortizing lock
//!   traffic without ever blocking on the socket for more input.
//! * **One WAL sequencer** — durable decisions are sequenced by a single
//!   background thread: handlers enqueue their log records *while still
//!   holding the state lock* (so WAL order equals decision order, with a
//!   monotonic sequence number and the deciding shard id attached
//!   in-memory), then wait for the sequencer's acknowledgement off-lock.
//!   No fsync ever executes under any admission lock, and the sequencer
//!   doubles as the idle-WAL flusher: an interval fsync policy is paid
//!   from its timer tick even when no request arrives.
//!
//! Every served connection runs under the deadlines and caps of
//! [`ConnectionLimits`]:
//!
//! * **IO deadlines** — `set_read_timeout`/`set_write_timeout` from
//!   `io_timeout`. On an idle expiry the handler re-checks the shutdown
//!   flag and keeps serving; after `idle_strikes` consecutive expiries
//!   without a complete request it drops the connection (slowloris
//!   clients trickle bytes but never finish a line, so they strike out
//!   too).
//! * **Bounded framing** — requests are read through `Read::take` with a
//!   `max_frame_bytes` cap; a newline-free byte stream is answered with a
//!   framed `Error` and dropped after at most `max_frame_bytes + 1`
//!   buffered bytes, never an unbounded buffer.
//! * **Request budget** — a connection that has served
//!   `max_requests_per_connection` requests is asked to reconnect, so no
//!   single connection monopolises a permit forever.
//!
//! Shutdown is drain-based: [`ServerHandle::shutdown`] (or a client
//! `Shutdown` request) flips the shared flag and wakes the acceptors with
//! one dummy connection each; handlers observe the flag between requests
//! *and on every read-deadline expiry*, so with `io_timeout` configured
//! every handler provably exits within one deadline period and
//! [`ServerHandle::join`] returns. Transport incidents (timeouts,
//! oversized frames, busy rejections, drains) are counted lock-free in
//! [`TransportCounters`] and surfaced both in the Prometheus exposition
//! and on the telemetry event bus.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::minprocs::intrinsic_min_procs_probed;
use fedsched_dag::task::DagTask;
use fedsched_durable::{
    list_snapshots, load_snapshot, DurableStore, LogRecord, StoreConfig, FORMAT_VERSION,
};
use fedsched_graham::list::PriorityPolicy;
use fedsched_telemetry::{monotonic_nanos, CounterKind, SpanPhase, TelemetryEvent, TraceId};

use crate::cache::{shape_hash, CachedSizing, ComputePartition, SeededSizing};
use crate::protocol::{write_message, Request, RequestTiming, Response};
use crate::recovery::{admit_records, recover_state, remove_record, ReplayReport};
use crate::state::{AdmissionConfig, AdmissionState, Admitted, RejectReason};
use crate::stats::{
    render_prometheus, DurabilityStats, LatencyHistogram, RequestStage, ShardStatsSnapshot,
    StageStats, StatsSnapshot, TransportStats, LATENCY_BUCKETS, REQUEST_STAGES,
};

/// Deadlines and caps protecting every served connection; see the module
/// docs for how each knob defends the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionLimits {
    /// Per-connection read *and* write deadline. `None` disables IO
    /// deadlines entirely — the pre-hardening blocking behaviour — and
    /// with it the termination bound on [`ServerHandle::shutdown`].
    pub io_timeout: Option<Duration>,
    /// Consecutive read-deadline expiries (without a complete request)
    /// tolerated before the connection is dropped; clamped to at least 1.
    pub idle_strikes: u32,
    /// Maximum bytes of one request frame, newline included; an
    /// overflowing frame gets a framed `Error` and the connection is
    /// dropped. Clamped to at least 64.
    pub max_frame_bytes: usize,
    /// Maximum concurrently served connections; overflow is answered with
    /// a fast [`Response::Busy`]. Clamped to at least 1.
    pub max_connections: usize,
    /// Requests one connection may issue before being asked to reconnect;
    /// clamped to at least 1.
    pub max_requests_per_connection: u64,
    /// Slow-request log threshold (`--slow-ms`): a request whose
    /// *processing* time — every stage except the read/frame stage, which
    /// contains client think time — reaches it is logged to stderr as one
    /// structured `fedsched-slow-request` line with the per-stage
    /// breakdown, keyed by trace id. `None` (the default) disables the
    /// log; zero is sanitized to `None`.
    pub slow_request: Option<Duration>,
}

impl Default for ConnectionLimits {
    fn default() -> ConnectionLimits {
        ConnectionLimits {
            io_timeout: Some(Duration::from_secs(30)),
            idle_strikes: 4,
            max_frame_bytes: 1 << 20,
            max_connections: 256,
            max_requests_per_connection: 1_000_000,
            slow_request: None,
        }
    }
}

impl ConnectionLimits {
    fn sanitized(self) -> ConnectionLimits {
        ConnectionLimits {
            io_timeout: self.io_timeout.filter(|t| !t.is_zero()),
            idle_strikes: self.idle_strikes.max(1),
            max_frame_bytes: self.max_frame_bytes.max(64),
            max_connections: self.max_connections.max(1),
            max_requests_per_connection: self.max_requests_per_connection.max(1),
            slow_request: self.slow_request.filter(|t| !t.is_zero()),
        }
    }

    /// How long [`ServerHandle::join`] waits for handler threads to
    /// drain after the acceptors exit. With deadlines configured every
    /// blocked read wakes within one `io_timeout`, so two periods plus
    /// slack bounds the drain; without deadlines the wait is a short
    /// grace period only (the handlers die with the process).
    fn drain_deadline(&self) -> Duration {
        match self.io_timeout {
            Some(t) => t.saturating_mul(2).saturating_add(Duration::from_secs(5)),
            None => Duration::from_secs(1),
        }
    }
}

/// How the server multiplexes its accepted connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnModel {
    /// One OS thread per accepted connection (the pre-reactor model,
    /// kept for one release behind `--conn-model threads` so the chaos
    /// and determinism suites can compare both planes).
    Threads,
    /// One nonblocking epoll reactor per shard multiplexing every
    /// connection homed there; admission work is dispatched off the
    /// loop to a small worker pool. Decisions, counters, WAL bytes,
    /// and cache contents are byte-identical to [`ConnModel::Threads`].
    #[default]
    Reactor,
}

impl std::str::FromStr for ConnModel {
    type Err = String;

    fn from_str(s: &str) -> Result<ConnModel, String> {
        match s {
            "threads" => Ok(ConnModel::Threads),
            "reactor" => Ok(ConnModel::Reactor),
            other => Err(format!(
                "unknown connection model {other:?} (expected \"threads\" or \"reactor\")"
            )),
        }
    }
}

/// Configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port; read
    /// it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Acceptor-thread count (clamped to at least 1). Connections are
    /// served by per-connection handler threads bounded by
    /// [`ConnectionLimits::max_connections`], not by this count.
    pub workers: usize,
    /// Shard count of the connection plane (`--shards`): connection
    /// permits, per-stage histograms, and the `MINPROCS` compute cache
    /// are partitioned this many ways (see the module docs). `0` means
    /// auto — one shard per available core. Admission outcomes are
    /// byte-identical at any shard count; this knob only trades lock
    /// contention against per-shard bookkeeping.
    pub shards: usize,
    /// Connection plane (`--conn-model`): an epoll reactor per shard
    /// (default) or one thread per connection. Admission outcomes are
    /// byte-identical under either model.
    pub conn_model: ConnModel,
    /// The admission-control platform and FEDCONS knobs.
    pub admission: AdmissionConfig,
    /// Per-connection deadlines and caps.
    pub limits: ConnectionLimits,
    /// Durability: `Some` journals every decision to a write-ahead log in
    /// the given data directory (recovering prior state at boot), `None`
    /// keeps all state in memory.
    pub durability: Option<StoreConfig>,
    /// Warm-start handoff for blue/green restarts: `Some(dir)` imports the
    /// template-cache section — and *only* that section — of the newest
    /// loadable snapshot in another server's data directory. No placements,
    /// tokens, or counters are taken over; the new server merely starts
    /// with the donor's memoized `MINPROCS` sizings so its first admissions
    /// hit warm instead of recomputing. Damaged or version-mismatched
    /// snapshots fall back to older ones; an empty donor imports nothing.
    pub handoff_from: Option<PathBuf>,
}

/// Lock-free transport-hardening counters kept by the connection layer.
///
/// Monotonic since server start; snapshot them with
/// [`TransportCounters::snapshot`] (also merged into every
/// [`StatsSnapshot`] the server serves).
#[derive(Debug, Default)]
pub struct TransportCounters {
    connections_served: AtomicU64,
    busy_rejections: AtomicU64,
    pub(crate) read_timeouts: AtomicU64,
    pub(crate) connections_timed_out: AtomicU64,
    pub(crate) oversized_requests: AtomicU64,
    pub(crate) malformed_requests: AtomicU64,
    pub(crate) budget_exhausted: AtomicU64,
    pub(crate) drained_connections: AtomicU64,
}

impl TransportCounters {
    /// A point-in-time copy of all counters.
    #[must_use]
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            connections_served: self.connections_served.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            connections_timed_out: self.connections_timed_out.load(Ordering::Relaxed),
            oversized_requests: self.oversized_requests.load(Ordering::Relaxed),
            malformed_requests: self.malformed_requests.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            drained_connections: self.drained_connections.load(Ordering::Relaxed),
        }
    }
}

pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// A zero-allocation per-request stage stopwatch.
///
/// Lives on the handler's stack: two fixed arrays of nanosecond tallies
/// and end stamps, fed by the shared telemetry clock
/// ([`monotonic_nanos`]), so stamping a boundary is one clock read and
/// two array writes — no heap traffic on the warm path (enforced by the
/// counting-allocator suite in `tests/stage_alloc.rs`).
#[derive(Debug, Clone, Copy)]
pub struct StageTimer {
    /// Monotonic stamp of the previous boundary.
    last: u64,
    /// Nanoseconds credited to each stage so far.
    nanos: [u64; REQUEST_STAGES],
    /// Monotonic end stamp of each stage's last credited interval (zero
    /// until the stage is first stamped).
    ends: [u64; REQUEST_STAGES],
}

impl StageTimer {
    /// Starts timing a request: the first boundary is "now".
    #[must_use]
    pub fn start() -> StageTimer {
        StageTimer {
            last: monotonic_nanos(),
            nanos: [0; REQUEST_STAGES],
            ends: [0; REQUEST_STAGES],
        }
    }

    /// Credits the interval since the previous boundary to `stage` and
    /// advances the boundary. Safe to call repeatedly for the same stage
    /// (intervals accumulate — a frame resumed across read deadlines
    /// credits each attempt).
    pub fn stamp(&mut self, stage: RequestStage) {
        let now = monotonic_nanos();
        let i = stage.index();
        self.nanos[i] = self.nanos[i].saturating_add(now.saturating_sub(self.last));
        self.ends[i] = now;
        self.last = now;
    }

    /// Credits the interval since the previous boundary to the three
    /// dispatch-internal stages at once: `cache_ns` to the cache lookup,
    /// `wal_ns` to the WAL append, and the remainder (lock wait and the
    /// analysis itself) to the analysis stage.
    pub fn stamp_dispatch(&mut self, cache_ns: u64, wal_ns: u64) {
        let now = monotonic_nanos();
        let total = now.saturating_sub(self.last);
        let analysis = total.saturating_sub(cache_ns).saturating_sub(wal_ns);
        let cache = RequestStage::CacheLookup.index();
        let wal = RequestStage::WalAppend.index();
        let ana = RequestStage::Analysis.index();
        self.nanos[cache] = self.nanos[cache].saturating_add(cache_ns);
        self.nanos[wal] = self.nanos[wal].saturating_add(wal_ns);
        self.nanos[ana] = self.nanos[ana].saturating_add(analysis);
        self.ends[cache] = now;
        self.ends[wal] = now;
        self.ends[ana] = now;
        self.last = now;
    }

    /// Nanoseconds credited to `stage` so far.
    #[must_use]
    pub fn nanos(&self, stage: RequestStage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Microseconds credited to `stage` so far (truncating).
    #[must_use]
    pub fn micros(&self, stage: RequestStage) -> u64 {
        self.nanos[stage.index()] / 1_000
    }

    /// Total processing nanoseconds: every stage except the idle wait and
    /// the frame read, which contain the wait for the client's bytes (a
    /// slowloris trickle included) and would make every idle interactive
    /// session look slow.
    #[must_use]
    pub fn processing_nanos(&self) -> u64 {
        RequestStage::ALL
            .iter()
            .filter(|s| !matches!(**s, RequestStage::IdleWait | RequestStage::FrameRead))
            .map(|s| self.nanos[s.index()])
            .fold(0u64, u64::saturating_add)
    }

    /// The monotonic `(start, end)` of `stage`'s last credited interval,
    /// or `None` if the stage was never stamped — what the Chrome server
    /// lane replays as a span.
    #[must_use]
    pub fn last_interval(&self, stage: RequestStage) -> Option<(u64, u64)> {
        let i = stage.index();
        (self.ends[i] != 0).then(|| (self.ends[i].saturating_sub(self.nanos[i]), self.ends[i]))
    }
}

/// Lock-free per-stage pipeline histograms kept by the connection layer,
/// mirroring the [`TransportCounters`] design: the handler records into
/// atomics without the admission lock, snapshots merge into
/// [`StatsSnapshot`].
#[derive(Debug)]
pub struct StageCounters {
    requests_total: AtomicU64,
    buckets: [[AtomicU64; LATENCY_BUCKETS]; REQUEST_STAGES],
}

impl Default for StageCounters {
    fn default() -> StageCounters {
        StageCounters {
            requests_total: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

impl StageCounters {
    /// Records one fully answered request: every stage's tally lands in
    /// its power-of-two bucket (zero-duration stages in bucket 0), then
    /// the request total is bumped — so each per-stage histogram count
    /// equals `requests_total` at all times, fault injection included.
    /// Allocation-free.
    pub fn record(&self, timer: &StageTimer) {
        for stage in RequestStage::ALL {
            let bucket = LatencyHistogram::bucket_for_micros(u128::from(timer.micros(stage)));
            self.buckets[stage.index()][bucket].fetch_add(1, Ordering::Relaxed);
        }
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all stage buckets and the request total.
    #[must_use]
    pub fn snapshot(&self) -> StageStats {
        let load = |stage: RequestStage| -> Vec<u64> {
            self.buckets[stage.index()]
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        };
        StageStats {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            idle_wait_buckets_us: load(RequestStage::IdleWait),
            frame_read_buckets_us: load(RequestStage::FrameRead),
            parse_buckets_us: load(RequestStage::Parse),
            cache_lookup_buckets_us: load(RequestStage::CacheLookup),
            analysis_buckets_us: load(RequestStage::Analysis),
            wal_append_buckets_us: load(RequestStage::WalAppend),
            serialize_buckets_us: load(RequestStage::Serialize),
        }
    }
}

/// The semaphore bounding concurrently served connections, doubling as
/// the drain barrier graceful shutdown waits on.
#[derive(Debug)]
pub(crate) struct Gate {
    max: usize,
    active: Mutex<usize>,
    drained: Condvar,
}

impl Gate {
    fn new(max: usize) -> Gate {
        Gate {
            max,
            active: Mutex::new(0),
            drained: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, usize> {
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn try_acquire(self: &Arc<Gate>) -> Option<Permit> {
        let mut active = self.lock();
        if *active >= self.max {
            return None;
        }
        *active += 1;
        Some(Permit {
            gate: Arc::clone(self),
        })
    }

    fn release(&self) {
        let mut active = self.lock();
        *active = active.saturating_sub(1);
        if *active == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until no connection holds a permit, or `timeout` elapses.
    /// Returns whether the drain completed.
    fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut active = self.lock();
        while *active > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .drained
                .wait_timeout(active, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            active = guard;
        }
        true
    }
}

/// One connection's slot under the [`Gate`]. Released on drop, so a
/// handler closure that never runs (thread-spawn failure) still returns
/// its permit.
#[derive(Debug)]
pub(crate) struct Permit {
    gate: Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// Lock-free per-shard counters, mirroring the [`TransportCounters`]
/// design; snapshot via [`shard_snapshots`].
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub(crate) connections_served: AtomicU64,
    pub(crate) permit_steals: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) admit_requests: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
}

/// Lock-free counters of one shard's epoll reactor (all zero under
/// `--conn-model threads`), exposed as the `fedsched_reactor_*` metric
/// families.
#[derive(Debug, Default)]
pub(crate) struct ReactorCounters {
    /// Sockets currently registered with the reactor (gauge).
    pub(crate) registered_fds: AtomicU64,
    /// `epoll_wait` returns that delivered at least one event.
    pub(crate) wakeups: AtomicU64,
    /// Total readiness events processed.
    pub(crate) ready_events: AtomicU64,
}

/// One shard of the connection plane: its slice of the connection
/// permits, its stage histograms, and its shape-routed compute-cache
/// partition. See the module docs.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) index: usize,
    pub(crate) gate: Arc<Gate>,
    pub(crate) counters: ShardCounters,
    pub(crate) reactor: ReactorCounters,
    pub(crate) stages: StageCounters,
    pub(crate) compute: Mutex<ComputePartition>,
}

/// Locks a shard's compute partition, recovering from poison (the
/// partition is a pure memo table; any consistent point is fine).
fn lock_partition(partition: &Mutex<ComputePartition>) -> MutexGuard<'_, ComputePartition> {
    partition
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Point-in-time per-shard stats, merged into every [`StatsSnapshot`].
fn shard_snapshots(shards: &[Arc<Shard>]) -> Vec<ShardStatsSnapshot> {
    shards
        .iter()
        .map(|s| {
            let (hits, misses, evictions) = {
                let partition = lock_partition(&s.compute);
                (partition.hits(), partition.misses(), partition.evictions())
            };
            ShardStatsSnapshot {
                shard: s.index as u64,
                permits: s.gate.max as u64,
                active_connections: *s.gate.lock() as u64,
                connections_served: s.counters.connections_served.load(Ordering::Relaxed),
                permit_steals: s.counters.permit_steals.load(Ordering::Relaxed),
                busy_rejections: s.counters.busy_rejections.load(Ordering::Relaxed),
                admit_requests: s.counters.admit_requests.load(Ordering::Relaxed),
                batched_requests: s.counters.batched_requests.load(Ordering::Relaxed),
                compute_hits: hits,
                compute_misses: misses,
                compute_evictions: evictions,
                reactor_registered_fds: s.reactor.registered_fds.load(Ordering::Relaxed),
                reactor_wakeups: s.reactor.wakeups.load(Ordering::Relaxed),
                reactor_ready_events: s.reactor.ready_events.load(Ordering::Relaxed),
                stages: s.stages.snapshot(),
            }
        })
        .collect()
}

/// The effective shard count: `0` is auto (one per available core).
fn effective_shards(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    }
}

/// `max_connections` split across `n` shards: every permit is owned by
/// exactly one shard, remainders going to the lowest-indexed shards. A
/// zero-permit shard is fine — its connections steal from siblings.
fn split_permits(max_connections: usize, n: usize) -> Vec<usize> {
    let base = max_connections / n;
    let spare = max_connections % n;
    (0..n).map(|i| base + usize::from(i < spare)).collect()
}

/// Per-partition capacity for a total template-cache bound of `total`:
/// ceiling-divided so `n` partitions cover at least the whole bound,
/// floored at one entry; `0` stays unbounded.
fn partition_cap(total: usize, n: usize) -> usize {
    if total == 0 {
        0
    } else {
        total.div_ceil(n).max(1)
    }
}

/// A one-shot completion slot: the handler parks on it until the WAL
/// sequencer acknowledges (or fails) its append.
#[derive(Debug, Default)]
struct AckSlot {
    done: Mutex<Option<io::Result<()>>>,
    cond: Condvar,
}

impl AckSlot {
    fn complete(&self, result: io::Result<()>) {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = Some(result);
        self.cond.notify_all();
    }

    fn wait(&self) -> io::Result<()> {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            done = self
                .cond
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// One decision's log records in flight to the sequencer. The shard id
/// and monotonic sequence number exist in memory only — the WAL wire
/// format is unchanged, because the sequencer appends in sequence order
/// and order *is* the replay contract.
#[derive(Debug)]
struct SeqItem {
    shard: usize,
    seq: u64,
    records: Vec<LogRecord>,
    ack: Arc<AckSlot>,
}

#[derive(Debug)]
struct SeqQueue {
    items: VecDeque<SeqItem>,
    /// A drained batch is being appended: `flush` must keep waiting even
    /// though `items` is momentarily empty.
    busy: bool,
}

/// The single WAL sequencer shared by all shards. Producers enqueue
/// *while holding the state lock* — so queue order, sequence numbers,
/// and decision order all coincide — and the sequencer thread appends,
/// acknowledges, and maintains the WAL telemetry counters off every
/// admission lock. Lock order is acyclic: `state → queue → store`,
/// and a lock earlier in that chain is never acquired while holding a
/// later one.
#[derive(Debug)]
pub(crate) struct WalSequencer {
    queue: Mutex<SeqQueue>,
    nonempty: Condvar,
    empty: Condvar,
    stop: AtomicBool,
    next_seq: AtomicU64,
}

impl WalSequencer {
    fn new() -> WalSequencer {
        WalSequencer {
            queue: Mutex::new(SeqQueue {
                items: VecDeque::new(),
                busy: false,
            }),
            nonempty: Condvar::new(),
            empty: Condvar::new(),
            stop: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, SeqQueue> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues one decision's records. Must be called with the state
    /// lock held — that is what serializes sequence numbers against
    /// decision order. Returns the slot to park on *after* releasing the
    /// state lock.
    fn enqueue(&self, shard: usize, records: Vec<LogRecord>) -> Arc<AckSlot> {
        let ack = Arc::new(AckSlot::default());
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.lock_queue();
        queue.items.push_back(SeqItem {
            shard,
            seq,
            records,
            ack: Arc::clone(&ack),
        });
        self.nonempty.notify_one();
        ack
    }

    /// Blocks until every enqueued record has been appended and
    /// acknowledged (used by the `Shutdown` request before it answers).
    fn flush(&self) {
        let mut queue = self.lock_queue();
        while !queue.items.is_empty() || queue.busy {
            let (guard, _) = self
                .empty
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue = guard;
        }
    }

    /// Asks the sequencer thread to drain the queue, sync, and exit.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.nonempty.notify_all();
    }
}

/// How often the idle sequencer wakes to re-check the stop flag and any
/// due interval fsync.
const SEQUENCER_IDLE_TICK: Duration = Duration::from_millis(200);

/// What woke the sequencer.
#[derive(Debug)]
enum Wake {
    Batch(Vec<SeqItem>),
    SyncDue,
    Stopped,
}

/// The sequencer thread: drains decision batches into the WAL, pays due
/// interval fsyncs while idle, and on stop syncs whatever the policy
/// left buffered so an orderly exit never strands acked bytes.
fn sequencer_loop(seq: &WalSequencer, journal: &Journal, state: &Mutex<AdmissionState>) {
    loop {
        let wake = {
            let mut queue = seq.lock_queue();
            loop {
                if !queue.items.is_empty() {
                    queue.busy = true;
                    break Wake::Batch(queue.items.drain(..).collect());
                }
                if seq.stop.load(Ordering::Acquire) {
                    break Wake::Stopped;
                }
                // Holding queue → acquiring store is within the lock
                // order; producers take state → queue and never store.
                let due = journal.lock().sync_due();
                if due == Some(Duration::ZERO) {
                    break Wake::SyncDue;
                }
                let wait = due.unwrap_or(SEQUENCER_IDLE_TICK).min(SEQUENCER_IDLE_TICK);
                let (guard, _) = seq
                    .nonempty
                    .wait_timeout(queue, wait)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        match wake {
            Wake::Batch(batch) => process_batch(seq, journal, state, batch),
            Wake::SyncDue => {
                // The fix for the idle-WAL hole: an interval policy's
                // deadline is honored from this timer tick, not from the
                // next (possibly never-arriving) append.
                let synced = journal.lock().sync_if_due();
                if matches!(synced, Ok(true)) {
                    lock(state).add_counter(CounterKind::WalFsync, 1);
                }
            }
            Wake::Stopped => {
                let _ = journal.lock().sync();
                return;
            }
        }
    }
}

/// Appends one decision's records, stopping at (and reporting) the first
/// failure so only that request is refused an acknowledgement.
fn append_item(store: &mut DurableStore, item: &SeqItem, appended: &mut u64) -> io::Result<()> {
    for record in &item.records {
        if let Err(e) = store.append(record) {
            eprintln!(
                "fedsched-wal-append-error shard={} seq={}: {e}",
                item.shard, item.seq
            );
            return Err(e);
        }
        *appended += 1;
    }
    Ok(())
}

/// Appends a drained batch under one store acquisition, acknowledges
/// every item, then banks the WAL telemetry deltas — and, when a
/// snapshot threshold was crossed, installs a snapshot that provably
/// covers the WAL prefix.
fn process_batch(
    seq: &WalSequencer,
    journal: &Journal,
    state: &Mutex<AdmissionState>,
    batch: Vec<SeqItem>,
) {
    let mut results: Vec<io::Result<()>> = Vec::with_capacity(batch.len());
    let mut appended = 0u64;
    let (bytes_delta, fsync_delta, should_snapshot) = {
        let mut store = journal.lock();
        let before = store.wal_stats();
        let mut last_seq = None;
        for item in &batch {
            debug_assert!(
                last_seq.is_none_or(|prev| item.seq > prev),
                "sequencer batch out of decision order"
            );
            last_seq = Some(item.seq);
            results.push(append_item(&mut store, item, &mut appended));
        }
        let after = store.wal_stats();
        (
            after.bytes_appended - before.bytes_appended,
            after.fsyncs - before.fsyncs,
            store.should_snapshot(),
        )
    };
    // Ack with the store lock released: the parked handlers only need
    // the append results.
    for (item, result) in batch.iter().zip(results) {
        item.ack.complete(result);
    }
    // WAL telemetry counters live behind the state lock, taken only now
    // that the store lock is free (acyclic order, see WalSequencer).
    let mut guard = lock(state);
    if appended > 0 {
        guard.add_counter(CounterKind::WalRecordAppended, appended);
    }
    if bytes_delta > 0 {
        guard.add_counter(CounterKind::WalBytesWritten, bytes_delta);
    }
    if fsync_delta > 0 {
        guard.add_counter(CounterKind::WalFsync, fsync_delta);
    }
    if should_snapshot {
        snapshot_with_stragglers(seq, journal, &mut guard);
    }
    drop(guard);
    let mut queue = seq.lock_queue();
    queue.busy = false;
    seq.empty.notify_all();
}

/// Installs a snapshot at an exact WAL prefix: with the state lock held
/// (producers sequence their records under it, so none can enqueue),
/// any straggler decisions already queued are appended first, then the
/// snapshot is cut from the very state those records produced.
fn snapshot_with_stragglers(seq: &WalSequencer, journal: &Journal, guard: &mut AdmissionState) {
    let stragglers: Vec<SeqItem> = seq.lock_queue().items.drain(..).collect();
    let mut results: Vec<io::Result<()>> = Vec::with_capacity(stragglers.len());
    let mut appended = 0u64;
    let (bytes_delta, fsync_delta, installed) = {
        let mut store = journal.lock();
        let before = store.wal_stats();
        for item in &stragglers {
            results.push(append_item(&mut store, item, &mut appended));
        }
        let installed = store.install_snapshot(&guard.export());
        let after = store.wal_stats();
        (
            after.bytes_appended - before.bytes_appended,
            after.fsyncs - before.fsyncs,
            installed,
        )
    };
    for (item, result) in stragglers.iter().zip(results) {
        item.ack.complete(result);
    }
    if appended > 0 {
        guard.add_counter(CounterKind::WalRecordAppended, appended);
    }
    if bytes_delta > 0 {
        guard.add_counter(CounterKind::WalBytesWritten, bytes_delta);
    }
    if fsync_delta > 0 {
        guard.add_counter(CounterKind::WalFsync, fsync_delta);
    }
    match installed {
        Ok(_) => guard.add_counter(CounterKind::WalSnapshotWritten, 1),
        // Non-fatal: decisions are acked from the WAL, not the snapshot;
        // the next threshold crossing retries.
        Err(e) => eprintln!("fedsched-wal-snapshot-error: {e}"),
    }
}

/// The open durable store plus what boot recovery found in it.
///
/// The store sits behind its own mutex, last in the acyclic lock order
/// `state → queue → store`: the sequencer appends with no admission
/// lock held (order is already fixed by the queue), and metrics or the
/// final sync take it alone.
#[derive(Debug)]
pub(crate) struct Journal {
    store: Mutex<DurableStore>,
    boot: ReplayReport,
}

impl Journal {
    fn lock(&self) -> MutexGuard<'_, DurableStore> {
        self.store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Everything the acceptors and handlers share.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) state: Arc<Mutex<AdmissionState>>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) counters: Arc<TransportCounters>,
    pub(crate) shards: Vec<Arc<Shard>>,
    pub(crate) limits: ConnectionLimits,
    pub(crate) local_addr: SocketAddr,
    pub(crate) workers: usize,
    pub(crate) journal: Option<Arc<Journal>>,
    pub(crate) sequencer: Option<Arc<WalSequencer>>,
    pub(crate) stages: Arc<StageCounters>,
    /// The priority policy shapes are sized and routed under (fixed for
    /// the server's lifetime).
    pub(crate) policy: PriorityPolicy,
    /// Round-robin cursor assigning home shards to connections.
    rr: AtomicU64,
}

/// A running server: the bound address, the shared state, and the worker
/// threads to join.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<AdmissionState>>,
    counters: Arc<TransportCounters>,
    shards: Vec<Arc<Shard>>,
    limits: ConnectionLimits,
    workers: Vec<JoinHandle<()>>,
    journal: Option<Arc<Journal>>,
    sequencer: Option<Arc<WalSequencer>>,
    sequencer_thread: Option<JoinHandle<()>>,
    handoff_absorbed: Option<u64>,
    stages: Arc<StageCounters>,
    reactors: Vec<Arc<crate::reactor::ReactorShared>>,
    reactor_threads: Vec<JoinHandle<()>>,
    dispatch_threads: Vec<JoinHandle<()>>,
    jobs: Option<Arc<crate::reactor::JobQueue>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared admission state (for in-process inspection; network
    /// clients use the `Stats` request).
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<AdmissionState>> {
        Arc::clone(&self.state)
    }

    /// The connection layer's lock-free hardening counters. The returned
    /// handle stays valid after [`Self::shutdown`]/[`Self::join`] consume
    /// the server, so tests and hosting processes can assert on the final
    /// tallies.
    #[must_use]
    pub fn transport(&self) -> Arc<TransportCounters> {
        Arc::clone(&self.counters)
    }

    /// A point-in-time copy of the transport counters.
    #[must_use]
    pub fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// The connection layer's lock-free per-stage pipeline histograms.
    /// Like [`Self::transport`], the handle outlives
    /// [`Self::shutdown`]/[`Self::join`].
    #[must_use]
    pub fn stage_counters(&self) -> Arc<StageCounters> {
        Arc::clone(&self.stages)
    }

    /// A point-in-time copy of the per-stage pipeline histograms.
    #[must_use]
    pub fn stage_stats(&self) -> StageStats {
        self.stages.snapshot()
    }

    /// A point-in-time copy of every shard's counters, permits, and
    /// stage histograms — the same section `Stats` responses carry.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        shard_snapshots(&self.shards)
    }

    /// What boot recovery replayed from the data directory, or `None`
    /// when the server runs without durability. Hosting processes log
    /// this at startup.
    #[must_use]
    pub fn boot_report(&self) -> Option<ReplayReport> {
        self.journal.as_ref().map(|j| j.boot)
    }

    /// How many template-cache entries the `--handoff-from` warm start
    /// imported, or `None` when no handoff directory was configured.
    #[must_use]
    pub fn handoff_absorbed(&self) -> Option<u64> {
        self.handoff_absorbed
    }

    /// Blocks until every acceptor has exited (i.e. until some client
    /// sent `Shutdown`, or [`Self::shutdown`] was called), then waits for
    /// the in-flight connection handlers to drain. With
    /// [`ConnectionLimits::io_timeout`] configured the drain is bounded:
    /// every handler blocked in a read wakes within one deadline period,
    /// observes the shutdown flag, and exits.
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
        // Reactors notice the shutdown flag on the next wakeup; poke
        // them so parked (idle) connections drain immediately instead of
        // waiting out a read deadline.
        for rs in &self.reactors {
            rs.wake();
        }
        // One overall drain budget shared by all shard gates.
        let deadline = Instant::now() + self.limits.drain_deadline();
        for shard in &self.shards {
            let remaining = deadline.saturating_duration_since(Instant::now());
            shard.gate.wait_drained(remaining);
        }
        // Reactor threads exit once their last connection closes; the
        // force flag covers a drain that timed out (the stragglers are
        // dropped unflushed, exactly as abandoned handler threads would
        // die with the process).
        for rs in &self.reactors {
            rs.force_exit();
        }
        for thread in self.reactor_threads {
            let _ = thread.join();
        }
        // With the reactors gone nothing enqueues jobs: close the queue,
        // let the dispatch pool finish what is in flight, and join it.
        if let Some(jobs) = &self.jobs {
            jobs.close();
        }
        for thread in self.dispatch_threads {
            let _ = thread.join();
        }
        // With the handlers gone nothing enqueues; the sequencer drains
        // its queue, syncs, and exits.
        if let Some(sequencer) = &self.sequencer {
            sequencer.shutdown();
        }
        if let Some(thread) = self.sequencer_thread {
            let _ = thread.join();
        }
        // Whatever the fsync policy, leave nothing in the page cache on
        // an orderly exit.
        if let Some(journal) = &self.journal {
            let _ = journal.lock().sync();
        }
    }

    /// Initiates shutdown from the hosting process, joins the acceptors,
    /// and drains the connection handlers. Terminates within roughly one
    /// `io_timeout` of the call even if clients hold connections open or
    /// sit mid-request — the deadline wakes their handlers, which observe
    /// the flag and exit.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        wake_workers(self.local_addr, self.workers.len());
        for rs in &self.reactors {
            rs.wake();
        }
        self.join();
    }
}

/// Binds the listener and spawns the acceptor pool. With
/// [`ServerConfig::durability`] set, the data directory is opened (and
/// created if absent) first: the newest loadable snapshot is restored
/// structurally and the WAL suffix is re-executed through the admission
/// engine, so the server answers `stats` and new admissions exactly as
/// the pre-crash instance would have.
///
/// # Errors
///
/// I/O errors binding the address or spawning threads; with durability,
/// an unreadable WAL or — worse — a replay whose re-derived outcome
/// diverges from a logged one (`InvalidData`: serving would break
/// promises clients already hold).
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let (mut initial_state, journal) = match &config.durability {
        Some(store_config) => {
            let (store, recovered) = DurableStore::open(store_config.clone())?;
            let (mut state, boot) = recover_state(config.admission, &recovered).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("refusing to serve from {}: {e}", store_config.dir.display()),
                )
            })?;
            state.add_counter(CounterKind::WalRecordReplayed, boot.replayed_records);
            (
                state,
                Some(Arc::new(Journal {
                    store: Mutex::new(store),
                    boot,
                })),
            )
        }
        None => (AdmissionState::new(config.admission), None),
    };
    let handoff_absorbed = match &config.handoff_from {
        Some(dir) => {
            let absorbed = import_handoff_cache(&mut initial_state, dir)?;
            if absorbed > 0 {
                if let Some(journal) = &journal {
                    // The imported entries exist in no snapshot or WAL
                    // record of *this* data directory, but they change
                    // which future admissions are logged as cache hits.
                    // Snapshot (and compact) before serving, so a later
                    // crash-recovery replay starts from the same warm
                    // cache those decisions were judged against instead
                    // of diverging on a cold one.
                    let mut store = journal.lock();
                    store.compact(&initial_state.export())?;
                    initial_state.add_counter(CounterKind::WalSnapshotWritten, 1);
                }
            }
            Some(absorbed)
        }
        None => None,
    };
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let limits = config.limits.sanitized();
    let worker_count = config.workers.max(1);
    let shard_count = effective_shards(config.shards);
    let cap = partition_cap(config.admission.template_cache_cap, shard_count);
    let shards: Vec<Arc<Shard>> = split_permits(limits.max_connections, shard_count)
        .into_iter()
        .enumerate()
        .map(|(index, permits)| {
            Arc::new(Shard {
                index,
                gate: Arc::new(Gate::new(permits)),
                counters: ShardCounters::default(),
                reactor: ReactorCounters::default(),
                stages: StageCounters::default(),
                compute: Mutex::new(ComputePartition::with_capacity(cap)),
            })
        })
        .collect();
    let sequencer = journal.as_ref().map(|_| Arc::new(WalSequencer::new()));
    let shared = Arc::new(Shared {
        state: Arc::new(Mutex::new(initial_state)),
        shutdown: Arc::new(AtomicBool::new(false)),
        counters: Arc::new(TransportCounters::default()),
        shards,
        limits,
        local_addr,
        workers: worker_count,
        journal,
        sequencer,
        stages: Arc::new(StageCounters::default()),
        policy: config.admission.fedcons.policy,
        rr: AtomicU64::new(0),
    });
    let sequencer_thread = match (&shared.journal, &shared.sequencer) {
        (Some(journal), Some(sequencer)) => {
            let journal = Arc::clone(journal);
            let sequencer = Arc::clone(sequencer);
            let state = Arc::clone(&shared.state);
            Some(
                std::thread::Builder::new()
                    .name("fedsched-wal-sequencer".to_owned())
                    .spawn(move || sequencer_loop(&sequencer, &journal, &state))?,
            )
        }
        _ => None,
    };
    // The connection plane: either a reactor per shard with a dispatch
    // pool, or the classic thread-per-connection handlers. Acceptors run
    // in both models; only what they do with an accepted socket differs.
    let (reactors, reactor_threads, dispatch_threads, jobs) = match config.conn_model {
        ConnModel::Threads => (Vec::new(), Vec::new(), Vec::new(), None),
        ConnModel::Reactor => {
            let mut reactors = Vec::with_capacity(shard_count);
            for _ in 0..shard_count {
                reactors.push(Arc::new(crate::reactor::ReactorShared::new()?));
            }
            let jobs = Arc::new(crate::reactor::JobQueue::new());
            let mut reactor_threads = Vec::with_capacity(shard_count);
            for (i, rs) in reactors.iter().enumerate() {
                let shared = Arc::clone(&shared);
                let rs = Arc::clone(rs);
                let jobs = Arc::clone(&jobs);
                reactor_threads.push(
                    std::thread::Builder::new()
                        .name(format!("fedsched-reactor-{i}"))
                        .spawn(move || crate::reactor::reactor_loop(i, &shared, &rs, &jobs))?,
                );
            }
            let dispatch_count = worker_count.max(shard_count);
            let mut dispatch_threads = Vec::with_capacity(dispatch_count);
            for i in 0..dispatch_count {
                let shared = Arc::clone(&shared);
                let reactors = reactors.clone();
                let jobs = Arc::clone(&jobs);
                dispatch_threads.push(
                    std::thread::Builder::new()
                        .name(format!("fedsched-dispatch-{i}"))
                        .spawn(move || crate::reactor::dispatch_loop(&shared, &reactors, &jobs))?,
                );
            }
            (reactors, reactor_threads, dispatch_threads, Some(jobs))
        }
    };
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let listener = Arc::clone(&listener);
        let shared = Arc::clone(&shared);
        let reactors = reactors.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("fedsched-acceptor-{i}"))
                .spawn(move || {
                    if reactors.is_empty() {
                        acceptor_loop(&listener, &shared);
                    } else {
                        acceptor_loop_reactor(&listener, &shared, &reactors);
                    }
                })?,
        );
    }
    Ok(ServerHandle {
        local_addr,
        shutdown: Arc::clone(&shared.shutdown),
        state: Arc::clone(&shared.state),
        counters: Arc::clone(&shared.counters),
        shards: shared.shards.clone(),
        limits,
        workers,
        journal: shared.journal.clone(),
        sequencer: shared.sequencer.clone(),
        sequencer_thread,
        handoff_absorbed,
        stages: Arc::clone(&shared.stages),
        reactors,
        reactor_threads,
        dispatch_threads,
        jobs,
    })
}

/// Imports the template-cache section of the newest loadable snapshot in
/// `dir` into `state`'s cache; see [`ServerConfig::handoff_from`]. Walks
/// the donor's snapshots newest-first, skipping damaged or
/// version-mismatched files exactly like boot recovery does, and absorbs
/// the first readable one. Returns the number of entries imported.
fn import_handoff_cache(state: &mut AdmissionState, dir: &Path) -> io::Result<u64> {
    let seqs = list_snapshots(dir)?;
    for seq in seqs.into_iter().rev() {
        let Ok(snapshot) = load_snapshot(dir, seq) else {
            continue;
        };
        if snapshot.version != FORMAT_VERSION {
            continue;
        }
        let entries = snapshot
            .cache
            .iter()
            .map(|e| {
                (
                    e.key.clone(),
                    e.sizing.as_ref().map(|s| CachedSizing {
                        processors: s.processors,
                        template: Arc::new(s.template.clone()),
                    }),
                )
            })
            .collect();
        return Ok(state.cache.absorb_entries(entries) as u64);
    }
    Ok(0)
}

/// Locks the state, recovering from a poisoned mutex: the state's own
/// methods leave it consistent even if a panic unwinds elsewhere.
pub(crate) fn lock(state: &Mutex<AdmissionState>) -> MutexGuard<'_, AdmissionState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return; // wake-up connection; drop it unserved
        }
        // Home shard round-robin; a full home steals a permit from the
        // first sibling with one free. Only when every shard is full —
        // i.e. max_connections is genuinely reached — does the client
        // get Busy. Nothing ever queues behind a saturated shard.
        let n = shared.shards.len();
        let home = (shared.rr.fetch_add(1, Ordering::Relaxed) as usize) % n;
        let mut acquired = None;
        for offset in 0..n {
            let idx = (home + offset) % n;
            if let Some(permit) = shared.shards[idx].gate.try_acquire() {
                if offset > 0 {
                    // Counted on the lending shard: its permit served a
                    // foreign connection.
                    bump(&shared.shards[idx].counters.permit_steals);
                }
                acquired = Some((idx, permit));
                break;
            }
        }
        let Some((idx, permit)) = acquired else {
            bump(&shared.counters.busy_rejections);
            bump(&shared.shards[home].counters.busy_rejections);
            lock(&shared.state).count_transport(CounterKind::BusyRejection);
            reject_busy(&stream);
            continue;
        };
        bump(&shared.counters.connections_served);
        bump(&shared.shards[idx].counters.connections_served);
        let shard = Arc::clone(&shared.shards[idx]);
        let handler_shared = Arc::clone(shared);
        // The permit moves into the closure; if the spawn fails and the
        // closure is dropped unrun, Permit::drop still releases the slot.
        let spawned = std::thread::Builder::new()
            .name("fedsched-conn".to_owned())
            .spawn(move || {
                let _permit = permit;
                let triggered = serve_connection(stream, &handler_shared, &shard).unwrap_or(false);
                if triggered {
                    wake_workers(handler_shared.local_addr, handler_shared.workers);
                }
            });
        if spawned.is_err() {
            // Thread exhaustion: the connection was dropped with the
            // closure. Count it as a rejection so the overload is visible.
            bump(&shared.counters.busy_rejections);
        }
    }
}

/// The acceptor under `--conn-model reactor`: identical permit
/// accounting (round-robin home, stealing, `Busy` when every shard is
/// full), but an accepted socket is handed to its shard's reactor inbox
/// instead of a freshly spawned handler thread.
fn acceptor_loop_reactor(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    reactors: &[Arc<crate::reactor::ReactorShared>],
) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return; // wake-up connection; drop it unserved
        }
        let n = shared.shards.len();
        let home = (shared.rr.fetch_add(1, Ordering::Relaxed) as usize) % n;
        let mut acquired = None;
        for offset in 0..n {
            let idx = (home + offset) % n;
            if let Some(permit) = shared.shards[idx].gate.try_acquire() {
                if offset > 0 {
                    bump(&shared.shards[idx].counters.permit_steals);
                }
                acquired = Some((idx, permit));
                break;
            }
        }
        let Some((idx, permit)) = acquired else {
            bump(&shared.counters.busy_rejections);
            bump(&shared.shards[home].counters.busy_rejections);
            lock(&shared.state).count_transport(CounterKind::BusyRejection);
            reject_busy(&stream);
            continue;
        };
        bump(&shared.counters.connections_served);
        bump(&shared.shards[idx].counters.connections_served);
        reactors[idx].push_conn(stream, permit);
    }
}

/// How long the acceptor spends delivering a `Busy` rejection (writing
/// the response and draining what the client already sent).
const BUSY_IO_TIMEOUT: Duration = Duration::from_millis(100);
/// Most bytes drained from a rejected connection before giving up.
const BUSY_DRAIN_CAP: usize = 64 * 1024;
/// The advisory backoff floor sent with every `Busy` response.
const BUSY_RETRY_AFTER_MS: u64 = 100;

/// Answers an over-capacity connection with a fast framed `Busy` and
/// closes it. The write FIN-then-drain dance keeps the rejection readable:
/// closing with unread client bytes in the receive queue would send an
/// RST, which can discard the `Busy` line from the client's buffer before
/// it is read.
fn reject_busy(stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(BUSY_IO_TIMEOUT));
    let _ = stream.set_read_timeout(Some(BUSY_IO_TIMEOUT));
    let mut writer = stream;
    let _ = write_message(
        &mut writer,
        &Response::Busy {
            retry_after_ms: BUSY_RETRY_AFTER_MS,
        },
    );
    let _ = stream.shutdown(Shutdown::Write);
    let mut reader = stream;
    let mut sink = [0u8; 1024];
    let mut drained = 0usize;
    while drained < BUSY_DRAIN_CAP {
        match reader.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// What one bounded, deadline-aware framing attempt produced.
#[derive(Debug, PartialEq, Eq)]
enum Frame {
    /// A complete newline-terminated line sits in the buffer.
    Line,
    /// The peer closed the stream (possibly mid-line).
    Eof,
    /// The read deadline expired before the line completed; bytes read so
    /// far stay in the buffer and the next call resumes the same line.
    TimedOut,
    /// The line exceeded the cap without a newline.
    Oversized,
}

/// Appends to `buf` until a newline, EOF, deadline expiry, or the
/// `max`-byte cap — whichever comes first. Reads raw bytes (UTF-8 is
/// validated later, per complete frame) so a deadline expiring mid
/// multi-byte character loses nothing.
fn read_frame<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>, max: usize) -> io::Result<Frame> {
    loop {
        let budget = (max + 1).saturating_sub(buf.len());
        if budget == 0 {
            return Ok(Frame::Oversized);
        }
        let mut limited = reader.take(budget as u64);
        match limited.read_until(b'\n', buf) {
            Ok(0) => return Ok(Frame::Eof),
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    return Ok(Frame::Line);
                }
                if buf.len() > max {
                    // The take limit (cap + 1) was reached newline-free.
                    return Ok(Frame::Oversized);
                }
                return Ok(Frame::Eof); // EOF mid-line
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(Frame::TimedOut)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection until it closes, misbehaves, exhausts its
/// request budget, or the server drains. Returns whether this connection
/// requested shutdown.
///
/// The connection normally carries newline-delimited JSON requests, but a
/// first line reading `GET /metrics` (the opening of a plain HTTP/1.x
/// request, as a Prometheus scraper sends it) is answered with one HTTP
/// response carrying the text exposition, after which the connection
/// closes — scrapers can point at the admission port directly.
///
/// An `Admit` request opens a *batch*: complete lines the client has
/// already pipelined into the read buffer are drained (never blocking
/// on the socket) and consecutive `Admit`s are decided under one ledger
/// acquisition; the first non-`Admit` line, if any, is handled right
/// after the batch as usual.
fn serve_connection(stream: TcpStream, shared: &Shared, shard: &Shard) -> io::Result<bool> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(shared.limits.io_timeout)?;
    stream.set_write_timeout(shared.limits.io_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf = Vec::new();
    let mut strikes = 0u32;
    let mut served = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            bump(&shared.counters.drained_connections);
            lock(&shared.state).count_transport(CounterKind::ConnectionDrained);
            return Ok(false);
        }
        buf.clear();
        let mut timer = StageTimer::start();
        // Idle wait: block until the *first byte* of the next request is
        // buffered, so the frame-read stage below measures socket work
        // alone, not open-loop client think time. A deadline expiring
        // here runs the exact strike logic a mid-frame expiry does.
        loop {
            match reader.fill_buf() {
                Ok(chunk) if !chunk.is_empty() => break,
                Ok(_) => return Ok(false), // EOF between requests
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    bump(&shared.counters.read_timeouts);
                    lock(&shared.state).count_transport(CounterKind::ReadTimeout);
                    if shared.shutdown.load(Ordering::Acquire) {
                        bump(&shared.counters.drained_connections);
                        lock(&shared.state).count_transport(CounterKind::ConnectionDrained);
                        return Ok(false);
                    }
                    strikes += 1;
                    if strikes >= shared.limits.idle_strikes {
                        bump(&shared.counters.connections_timed_out);
                        let _ = write_message(
                            &mut writer,
                            &Response::Error {
                                message: "idle timeout: no complete request before the deadline"
                                    .to_owned(),
                            },
                        );
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        timer.stamp(RequestStage::IdleWait);
        loop {
            match read_frame(&mut reader, &mut buf, shared.limits.max_frame_bytes)? {
                Frame::Line => break,
                Frame::Eof => return Ok(false),
                Frame::TimedOut => {
                    bump(&shared.counters.read_timeouts);
                    lock(&shared.state).count_transport(CounterKind::ReadTimeout);
                    if shared.shutdown.load(Ordering::Acquire) {
                        bump(&shared.counters.drained_connections);
                        lock(&shared.state).count_transport(CounterKind::ConnectionDrained);
                        return Ok(false);
                    }
                    strikes += 1;
                    if strikes >= shared.limits.idle_strikes {
                        bump(&shared.counters.connections_timed_out);
                        let _ = write_message(
                            &mut writer,
                            &Response::Error {
                                message: "idle timeout: no complete request before the deadline"
                                    .to_owned(),
                            },
                        );
                        return Ok(false);
                    }
                }
                Frame::Oversized => {
                    bump(&shared.counters.oversized_requests);
                    lock(&shared.state).count_transport(CounterKind::OversizedRequest);
                    let _ = write_message(
                        &mut writer,
                        &Response::Error {
                            message: format!(
                                "request exceeds the {}-byte frame cap",
                                shared.limits.max_frame_bytes
                            ),
                        },
                    );
                    return Ok(false);
                }
            }
        }
        strikes = 0;
        timer.stamp(RequestStage::FrameRead);
        let Ok(text) = std::str::from_utf8(&buf) else {
            bump(&shared.counters.malformed_requests);
            let _ = write_message(
                &mut writer,
                &Response::Error {
                    message: "request is not valid UTF-8".to_owned(),
                },
            );
            return Ok(false);
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "GET /metrics" || trimmed.starts_with("GET /metrics ") {
            serve_metrics_http(&mut writer, shared)?;
            return Ok(false);
        }
        match serde_json::from_str::<Request>(trimmed) {
            Ok(Request::Admit {
                task,
                trace_id,
                echo_timing,
            }) => {
                timer.stamp(RequestStage::Parse);
                let mut batch = vec![AdmitItem {
                    task,
                    trace_id,
                    echo_timing,
                    timer,
                }];
                // Drain already-buffered complete lines into the batch;
                // a pipelining client pays one ledger acquisition for
                // all of them, an unpipelined client none of this.
                let mut tail = None;
                while batch.len() < ADMIT_BATCH_MAX
                    && served + (batch.len() as u64) < shared.limits.max_requests_per_connection
                {
                    let Some(line) = take_buffered_line(&mut reader) else {
                        break;
                    };
                    let mut t = StageTimer::start();
                    // Already buffered: both read stages are ~0.
                    t.stamp(RequestStage::IdleWait);
                    t.stamp(RequestStage::FrameRead);
                    if line.len() > shared.limits.max_frame_bytes + 1 {
                        tail = Some(Tail::Oversized);
                        break;
                    }
                    let Ok(text) = std::str::from_utf8(&line) else {
                        tail = Some(Tail::Malformed("request is not valid UTF-8".to_owned()));
                        break;
                    };
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if trimmed == "GET /metrics" || trimmed.starts_with("GET /metrics ") {
                        tail = Some(Tail::Metrics);
                        break;
                    }
                    match serde_json::from_str::<Request>(trimmed) {
                        Ok(Request::Admit {
                            task,
                            trace_id,
                            echo_timing,
                        }) => {
                            t.stamp(RequestStage::Parse);
                            batch.push(AdmitItem {
                                task,
                                trace_id,
                                echo_timing,
                                timer: t,
                            });
                        }
                        Ok(other) => {
                            t.stamp(RequestStage::Parse);
                            tail = Some(Tail::Request(Box::new(other), t));
                            break;
                        }
                        Err(e) => {
                            tail = Some(Tail::Malformed(e.to_string()));
                            break;
                        }
                    }
                }
                let batch_len = batch.len() as u64;
                for mut answered in dispatch_admit_batch(batch, shared, shard) {
                    write_message(&mut writer, &answered.response)?;
                    answered.timer.stamp(RequestStage::Serialize);
                    shared.stages.record(&answered.timer);
                    shard.stages.record(&answered.timer);
                    log_slow_request(&shared.limits, answered.trace_id, &answered.timer);
                    served += 1;
                }
                shard
                    .counters
                    .admit_requests
                    .fetch_add(batch_len, Ordering::Relaxed);
                if batch_len > 1 {
                    shard
                        .counters
                        .batched_requests
                        .fetch_add(batch_len, Ordering::Relaxed);
                }
                match tail {
                    None => {}
                    Some(Tail::Request(request, mut t)) => {
                        let stop = matches!(*request, Request::Shutdown);
                        if stop {
                            shared.shutdown.store(true, Ordering::Release);
                        }
                        let response = dispatch(*request, shared, shard, &mut t);
                        write_message(&mut writer, &response)?;
                        t.stamp(RequestStage::Serialize);
                        shared.stages.record(&t);
                        shard.stages.record(&t);
                        log_slow_request(&shared.limits, None, &t);
                        if stop {
                            return Ok(true);
                        }
                        served += 1;
                    }
                    Some(Tail::Metrics) => {
                        serve_metrics_http(&mut writer, shared)?;
                        return Ok(false);
                    }
                    Some(Tail::Malformed(message)) => {
                        bump(&shared.counters.malformed_requests);
                        let _ = write_message(&mut writer, &Response::Error { message });
                        return Ok(false);
                    }
                    Some(Tail::Oversized) => {
                        bump(&shared.counters.oversized_requests);
                        lock(&shared.state).count_transport(CounterKind::OversizedRequest);
                        let _ = write_message(
                            &mut writer,
                            &Response::Error {
                                message: format!(
                                    "request exceeds the {}-byte frame cap",
                                    shared.limits.max_frame_bytes
                                ),
                            },
                        );
                        return Ok(false);
                    }
                }
            }
            Ok(request) => {
                timer.stamp(RequestStage::Parse);
                let stop = matches!(request, Request::Shutdown);
                if stop {
                    shared.shutdown.store(true, Ordering::Release);
                }
                let response = dispatch(request, shared, shard, &mut timer);
                write_message(&mut writer, &response)?;
                timer.stamp(RequestStage::Serialize);
                shared.stages.record(&timer);
                shard.stages.record(&timer);
                log_slow_request(&shared.limits, None, &timer);
                if stop {
                    return Ok(true);
                }
                served += 1;
            }
            Err(e) => {
                // Malformed request: report and drop the connection — the
                // line framing gives no reliable resynchronization point.
                bump(&shared.counters.malformed_requests);
                let _ = write_message(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return Ok(false);
            }
        }
        if served >= shared.limits.max_requests_per_connection {
            bump(&shared.counters.budget_exhausted);
            let _ = write_message(
                &mut writer,
                &Response::Error {
                    message: format!(
                        "per-connection request budget ({}) exhausted; reconnect",
                        shared.limits.max_requests_per_connection
                    ),
                },
            );
            return Ok(false);
        }
    }
}

/// Assembles the snapshot the server serves: the admission counters (one
/// short critical section — the guard is dropped before any rendering)
/// merged with the lock-free transport counters.
fn merged_snapshot(shared: &Shared) -> StatsSnapshot {
    // Binding the snapshot first bounds the lock to the copy itself;
    // rendering (and the scrape write) must never block admissions.
    let mut snapshot = lock(&shared.state).snapshot();
    snapshot.transport = shared.counters.snapshot();
    snapshot.stages = shared.stages.snapshot();
    snapshot.shards = shard_snapshots(&shared.shards);
    if let Some(journal) = &shared.journal {
        let store = journal.lock();
        let wal = store.wal_stats();
        snapshot.durability = DurabilityStats {
            enabled: true,
            wal_records_appended: wal.records_appended,
            wal_bytes_appended: wal.bytes_appended,
            wal_fsyncs: wal.fsyncs,
            wal_len_bytes: store.wal_len(),
            snapshots_written: store.snapshots_written(),
            last_snapshot_seq: store.last_snapshot_seq(),
            replayed_records: journal.boot.replayed_records,
            replay_nanos: journal.boot.replay_nanos,
            truncated_bytes: journal.boot.truncated_bytes,
            snapshots_skipped: journal.boot.snapshots_skipped,
        };
    }
    snapshot
}

/// Most `Admit` requests decided under one ledger acquisition. Chosen so
/// a deep pipeline still answers its first request promptly (the whole
/// batch is decided before anything is written back).
pub(crate) const ADMIT_BATCH_MAX: usize = 16;

/// One parsed `Admit` awaiting its batch decision.
pub(crate) struct AdmitItem {
    pub(crate) task: DagTask,
    pub(crate) trace_id: Option<u64>,
    pub(crate) echo_timing: bool,
    pub(crate) timer: StageTimer,
}

/// One decided `Admit`, ready to write back in arrival order.
pub(crate) struct AnsweredAdmit {
    pub(crate) response: Response,
    pub(crate) timer: StageTimer,
    pub(crate) trace_id: Option<u64>,
}

/// A decided `Admit` between the ledger phase and its WAL ack.
struct PendingAdmit {
    result: Result<Admitted, RejectReason>,
    ack: Option<Arc<AckSlot>>,
    cache_ns: u64,
    trace_id: Option<u64>,
    echo_timing: bool,
    timer: StageTimer,
}

/// What ended a batch's buffered-line drain early.
pub(crate) enum Tail {
    /// A complete non-`Admit` request was drained; handle it after the
    /// batch, exactly as the unbatched loop would have.
    Request(Box<Request>, StageTimer),
    /// A buffered `GET /metrics` line: answer the scrape and close.
    Metrics,
    Malformed(String),
    Oversized,
}

/// Takes one complete, already-buffered line out of the reader without
/// ever touching the socket: `None` means the buffer holds no full line
/// and the batch closes. (A buffered line can only exceed the frame cap
/// when the cap is smaller than the read buffer; the caller checks.)
fn take_buffered_line<R: Read>(reader: &mut BufReader<R>) -> Option<Vec<u8>> {
    let buffered = reader.buffer();
    let pos = buffered.iter().position(|&b| b == b'\n')?;
    let line = buffered[..=pos].to_vec();
    reader.consume(pos + 1);
    Some(line)
}

/// Resolves a task's `MINPROCS` sizing against its shape-routed compute
/// partition, computing it off every lock on a partition miss (the
/// fedsched-parallel workers fan out inside the sizing). Returns the
/// seed for the ledger plus the partition-lookup nanoseconds (credited
/// to the cache-lookup stage).
fn resolve_compute(shared: &Shared, task: &DagTask) -> (Option<SeededSizing>, u64) {
    // Shape-routed, *not* home-shard-routed: the same shape always lands
    // in the same partition, whichever connection carries it.
    let idx = (shape_hash(task, shared.policy) % shared.shards.len() as u64) as usize;
    let partition = &shared.shards[idx].compute;
    let lookup_start = monotonic_nanos();
    let hit = lock_partition(partition).lookup(task, shared.policy);
    let cache_ns = monotonic_nanos().saturating_sub(lookup_start);
    if hit.is_some() {
        return (hit, cache_ns);
    }
    // The stored probe is exactly what an inline compute would have
    // added, so merging it on an authoritative miss keeps counters
    // byte-identical at any shard count (MINPROCS is deterministic).
    let mut probe = AnalysisProbe::default();
    let sizing =
        intrinsic_min_procs_probed(task, shared.policy, &mut probe).map(|r| CachedSizing {
            processors: r.processors,
            template: Arc::new(r.template),
        });
    let entry = SeededSizing { sizing, probe };
    lock_partition(partition).insert(task, shared.policy, entry.clone());
    (Some(entry), cache_ns)
}

/// Decides a batch of `Admit`s: sizings resolved off-lock first, then
/// one state acquisition applies every decision to the ledger and
/// sequences its records, then — with the lock released — each item
/// waits for its WAL ack in order. Analysis and fsync therefore never
/// execute under any admission lock, batched or not.
pub(crate) fn dispatch_admit_batch(
    items: Vec<AdmitItem>,
    shared: &Shared,
    shard: &Shard,
) -> Vec<AnsweredAdmit> {
    // Phase 1: compute (or fetch) every sizing off-lock.
    let prepared: Vec<(AdmitItem, Option<SeededSizing>, u64)> = items
        .into_iter()
        .map(|item| {
            let (seed, cache_ns) = resolve_compute(shared, &item.task);
            (item, seed, cache_ns)
        })
        .collect();
    // Phase 2: one ledger acquisition for the whole batch.
    let mut pending = Vec::with_capacity(prepared.len());
    let mut guard = lock(&shared.state);
    let sink_enabled = guard.sink.is_enabled();
    for (item, seed, cache_ns) in prepared {
        let AdmitItem {
            task,
            trace_id,
            echo_timing,
            timer,
        } = item;
        let journaled = shared.sequencer.is_some().then(|| task.clone());
        let misses_before = guard.cache.misses();
        let hits_before = guard.cache.hits();
        let result = guard.admit_seeded(task, trace_id, seed);
        let ack = journaled.map(|task| {
            let records = admit_records(&guard, &task, &result, misses_before, hits_before);
            shared
                .sequencer
                .as_ref()
                .expect("journaled implies a sequencer")
                .enqueue(shard.index, records)
        });
        emit_request_spans(&mut guard, trace_id, &timer);
        pending.push(PendingAdmit {
            result,
            ack,
            cache_ns,
            trace_id,
            echo_timing,
            timer,
        });
    }
    drop(guard);
    // Phase 3: wait for the WAL acks in order and shape the responses.
    let mut answered = Vec::with_capacity(pending.len());
    let mut wal_spans = Vec::new();
    for item in pending {
        let mut timer = item.timer;
        let (wal_ns, wal_err) = match item.ack {
            Some(ack) => {
                let wal_start = monotonic_nanos();
                let result = ack.wait();
                let wal_end = monotonic_nanos();
                if sink_enabled {
                    wal_spans.push((item.trace_id, wal_start, wal_end));
                }
                (wal_end.saturating_sub(wal_start), result.err())
            }
            None => (0, None),
        };
        timer.stamp_dispatch(item.cache_ns, wal_ns);
        let response = match wal_err {
            Some(e) => journal_error(&e),
            None => {
                let timing = item.echo_timing.then(|| request_timing(&timer));
                match item.result {
                    Ok(admitted) => Response::Admitted {
                        token: admitted.token,
                        placement: admitted.placement,
                        cache_hit: admitted.cache_hit,
                        trace_id: item.trace_id,
                        timing,
                    },
                    Err(reason) => Response::Rejected {
                        reason: reason.to_string(),
                        trace_id: item.trace_id,
                        timing,
                    },
                }
            }
        };
        answered.push(AnsweredAdmit {
            response,
            timer,
            trace_id: item.trace_id,
        });
    }
    if !wal_spans.is_empty() {
        let mut guard = lock(&shared.state);
        for (trace, start_nanos, end_nanos) in wal_spans {
            guard.sink.record(TelemetryEvent::Span {
                trace_id: trace.map(TraceId),
                phase: SpanPhase::WalAppend,
                start_nanos,
                end_nanos,
            });
        }
    }
    answered
}

/// The response for a decision whose journal append failed. The decision
/// stays applied in memory (still sound — it passed admission), but it is
/// *not* acknowledged: after a crash the log has no record of it, and the
/// client saw an error, so both sides agree it may not survive.
fn journal_error(e: &io::Error) -> Response {
    Response::Error {
        message: format!("durability failure, decision not acknowledged: {e}"),
    }
}

/// Answers a `GET /metrics` scrape with one minimal HTTP response and the
/// Prometheus exposition body.
pub(crate) fn serve_metrics_http<W: Write>(writer: &mut W, shared: &Shared) -> io::Result<()> {
    let body = render_prometheus(&merged_snapshot(shared));
    write!(
        writer,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    writer.flush()
}

/// Builds the per-request timing echo from the stages the timer has
/// credited so far (everything but serialize, which cannot echo itself).
pub(crate) fn request_timing(timer: &StageTimer) -> RequestTiming {
    RequestTiming {
        idle_us: timer.micros(RequestStage::IdleWait),
        read_us: timer.micros(RequestStage::FrameRead),
        parse_us: timer.micros(RequestStage::Parse),
        cache_us: timer.micros(RequestStage::CacheLookup),
        analysis_us: timer.micros(RequestStage::Analysis),
        wal_us: timer.micros(RequestStage::WalAppend),
    }
}

/// Emits one structured `fedsched-slow-request` stderr line when the
/// request's *processing* time (every stage except the idle wait and the
/// frame read, which contain client think time) reached the configured
/// `--slow-ms` threshold.
pub(crate) fn log_slow_request(
    limits: &ConnectionLimits,
    trace_id: Option<u64>,
    timer: &StageTimer,
) {
    let Some(threshold) = limits.slow_request else {
        return;
    };
    let processing = timer.processing_nanos();
    if u128::from(processing) < threshold.as_nanos() {
        return;
    }
    let trace = match trace_id {
        Some(id) => id.to_string(),
        None => "-".to_owned(),
    };
    eprintln!(
        "fedsched-slow-request trace_id={trace} total_us={} idle_us={} read_us={} parse_us={} cache_us={} analysis_us={} wal_us={} serialize_us={}",
        processing / 1_000,
        timer.micros(RequestStage::IdleWait),
        timer.micros(RequestStage::FrameRead),
        timer.micros(RequestStage::Parse),
        timer.micros(RequestStage::CacheLookup),
        timer.micros(RequestStage::Analysis),
        timer.micros(RequestStage::WalAppend),
        timer.micros(RequestStage::Serialize),
    );
}

/// Replays the read/frame and parse intervals the handler stamped before
/// taking the state lock as retro-dated server-lane spans, so the Chrome
/// export shows the full request pipeline, not only what happens inside
/// dispatch.
fn emit_request_spans(guard: &mut AdmissionState, trace_id: Option<u64>, timer: &StageTimer) {
    if !guard.sink.is_enabled() {
        return;
    }
    for (stage, phase) in [
        (RequestStage::FrameRead, SpanPhase::RequestRead),
        (RequestStage::Parse, SpanPhase::RequestParse),
    ] {
        if let Some((start_nanos, end_nanos)) = timer.last_interval(stage) {
            guard.sink.record(TelemetryEvent::Span {
                trace_id: trace_id.map(TraceId),
                phase,
                start_nanos,
                end_nanos,
            });
        }
    }
}

/// Maps one request to its response against the shared state, crediting
/// the dispatch interval to the cache-lookup / analysis / WAL-append
/// stages of `timer` on the way out.
pub(crate) fn dispatch(
    request: Request,
    shared: &Shared,
    shard: &Shard,
    timer: &mut StageTimer,
) -> Response {
    let state = &shared.state;
    match request {
        Request::Admit {
            task,
            trace_id,
            echo_timing,
        } => {
            // A lone Admit is a batch of one: single code path, single
            // set of invariants.
            let items = vec![AdmitItem {
                task,
                trace_id,
                echo_timing,
                timer: *timer,
            }];
            let mut answered = dispatch_admit_batch(items, shared, shard);
            let one = answered.pop().expect("one admit in, one answer out");
            *timer = one.timer;
            one.response
        }
        Request::Remove { token } => {
            let mut guard = lock(state);
            let anomalies_before = guard.stats.remove_anomalies;
            match guard.remove(token) {
                Ok(removed) => {
                    let ack = shared.sequencer.as_ref().map(|sequencer| {
                        let record = remove_record(&guard, token, anomalies_before);
                        sequencer.enqueue(shard.index, vec![record])
                    });
                    drop(guard);
                    let mut wal_ns = 0u64;
                    if let Some(ack) = ack {
                        let wal_start = monotonic_nanos();
                        let appended = ack.wait();
                        wal_ns = monotonic_nanos().saturating_sub(wal_start);
                        if let Err(e) = appended {
                            timer.stamp_dispatch(0, wal_ns);
                            return journal_error(&e);
                        }
                    }
                    timer.stamp_dispatch(0, wal_ns);
                    Response::Removed {
                        token: removed.token,
                        migrated: removed.migrated,
                    }
                }
                Err(_) => {
                    drop(guard);
                    timer.stamp_dispatch(0, 0);
                    Response::NotFound { token }
                }
            }
        }
        Request::Query { token } => {
            let response = match lock(state).query(token) {
                Some(placement) => Response::TaskInfo { token, placement },
                None => Response::NotFound { token },
            };
            timer.stamp_dispatch(0, 0);
            response
        }
        Request::Stats => {
            let response = Response::Stats {
                snapshot: merged_snapshot(shared),
            };
            timer.stamp_dispatch(0, 0);
            response
        }
        Request::StatsPrometheus => {
            let response = Response::Metrics {
                text: render_prometheus(&merged_snapshot(shared)),
            };
            timer.stamp_dispatch(0, 0);
            response
        }
        Request::Shutdown => {
            // Flush the tail before acknowledging, whatever the policy:
            // first every sequenced-but-unappended decision, then the
            // page cache.
            if let Some(sequencer) = &shared.sequencer {
                sequencer.flush();
            }
            if let Some(journal) = &shared.journal {
                let _ = journal.lock().sync();
            }
            timer.stamp_dispatch(0, 0);
            Response::ShuttingDown
        }
    }
}

/// Unblocks acceptors sitting in `accept` by connecting once per worker.
pub(crate) fn wake_workers(addr: SocketAddr, worker_count: usize) {
    for _ in 0..worker_count {
        let _ = TcpStream::connect(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_frame_returns_complete_lines() {
        let mut reader = io::BufReader::new(&b"{\"op\":1}\nrest"[..]);
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut reader, &mut buf, 1024).unwrap(),
            Frame::Line
        );
        assert_eq!(buf, b"{\"op\":1}\n");
        buf.clear();
        // The trailing bytes have no newline: EOF mid-line.
        assert_eq!(read_frame(&mut reader, &mut buf, 1024).unwrap(), Frame::Eof);
        assert_eq!(buf, b"rest");
    }

    #[test]
    fn read_frame_caps_newline_free_streams() {
        let flood = vec![b'a'; 4096];
        let mut reader = io::BufReader::new(&flood[..]);
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut reader, &mut buf, 100).unwrap(),
            Frame::Oversized
        );
        // Bounded: the cap plus the one probe byte, never the whole flood.
        assert_eq!(buf.len(), 101);
    }

    #[test]
    fn read_frame_accepts_a_line_exactly_at_the_cap() {
        let mut line = vec![b'x'; 99];
        line.push(b'\n');
        let mut reader = io::BufReader::new(&line[..]);
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut reader, &mut buf, 100).unwrap(), Frame::Line);
        assert_eq!(buf.len(), 100);
    }

    /// A reader yielding one byte per call, then a timeout, repeatedly —
    /// a slowloris in miniature.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ticks: usize,
    }

    impl io::Read for Trickle {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            self.ticks += 1;
            if self.ticks.is_multiple_of(2) {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            match self.data.get(self.pos) {
                Some(&b) => {
                    out[0] = b;
                    self.pos += 1;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    #[test]
    fn read_frame_resumes_partial_lines_across_timeouts() {
        let mut reader = io::BufReader::with_capacity(
            1,
            Trickle {
                data: b"ab\n".to_vec(),
                pos: 0,
                ticks: 0,
            },
        );
        let mut buf = Vec::new();
        let mut timeouts = 0;
        loop {
            match read_frame(&mut reader, &mut buf, 64).unwrap() {
                Frame::Line => break,
                Frame::TimedOut => timeouts += 1,
                other => panic!("unexpected {other:?}"),
            }
            assert!(timeouts < 100, "never completed the line");
        }
        assert_eq!(buf, b"ab\n");
        assert!(timeouts > 0, "the trickle reader must have timed out");
    }

    #[test]
    fn limits_sanitize_to_usable_floors() {
        let limits = ConnectionLimits {
            io_timeout: Some(Duration::ZERO),
            idle_strikes: 0,
            max_frame_bytes: 0,
            max_connections: 0,
            max_requests_per_connection: 0,
            slow_request: Some(Duration::ZERO),
        }
        .sanitized();
        assert_eq!(limits.io_timeout, None, "zero deadline means no deadline");
        assert_eq!(limits.idle_strikes, 1);
        assert_eq!(limits.max_frame_bytes, 64);
        assert_eq!(limits.max_connections, 1);
        assert_eq!(limits.max_requests_per_connection, 1);
        assert_eq!(
            limits.slow_request, None,
            "a zero slow threshold would log everything; treat it as off"
        );
    }

    #[test]
    fn stage_timer_credits_intervals_and_sums_processing_time() {
        let mut timer = StageTimer::start();
        timer.stamp(RequestStage::IdleWait);
        timer.stamp(RequestStage::FrameRead);
        std::thread::sleep(Duration::from_millis(2));
        timer.stamp(RequestStage::Parse);
        timer.stamp_dispatch(0, 0);
        timer.stamp(RequestStage::Serialize);
        assert!(timer.nanos(RequestStage::Parse) >= 1_000_000);
        let (start, end) = timer
            .last_interval(RequestStage::Parse)
            .expect("parse was stamped");
        assert_eq!(end - start, timer.nanos(RequestStage::Parse));
        assert!(
            timer.last_interval(RequestStage::FrameRead).is_some(),
            "read was stamped"
        );
        let processing: u64 = RequestStage::ALL
            .iter()
            .filter(|s| !matches!(**s, RequestStage::IdleWait | RequestStage::FrameRead))
            .map(|s| timer.nanos(*s))
            .sum();
        assert_eq!(timer.processing_nanos(), processing);
        assert!(timer.micros(RequestStage::Parse) >= 1_000);
    }

    #[test]
    fn stage_counters_record_every_stage_once_per_request() {
        let counters = StageCounters::default();
        let mut timer = StageTimer::start();
        timer.stamp(RequestStage::IdleWait);
        timer.stamp(RequestStage::FrameRead);
        timer.stamp(RequestStage::Parse);
        timer.stamp_dispatch(5_000, 3_000);
        timer.stamp(RequestStage::Serialize);
        counters.record(&timer);
        counters.record(&timer);
        let stats = counters.snapshot();
        assert_eq!(stats.requests_total, 2);
        for stage in RequestStage::ALL {
            let total: u64 = stats.buckets(stage).iter().sum();
            assert_eq!(
                total,
                2,
                "stage {} must record exactly once per request",
                stage.name()
            );
        }
    }

    #[test]
    fn permits_split_across_shards_without_loss() {
        assert_eq!(split_permits(8, 3), vec![3, 3, 2]);
        assert_eq!(split_permits(1, 4), vec![1, 0, 0, 0]);
        assert_eq!(split_permits(4, 1), vec![4]);
        for (max, n) in [(1, 1), (7, 3), (256, 5), (3, 8)] {
            assert_eq!(
                split_permits(max, n).iter().sum::<usize>(),
                max,
                "every permit must be owned by exactly one shard"
            );
        }
    }

    #[test]
    fn partition_caps_cover_the_total_bound() {
        assert_eq!(partition_cap(0, 4), 0, "unbounded stays unbounded");
        assert_eq!(partition_cap(10, 4), 3, "ceiling division");
        assert_eq!(partition_cap(2, 8), 1, "floored at one entry");
        assert_eq!(partition_cap(64, 1), 64);
        assert!(effective_shards(0) >= 1, "auto resolves to at least one");
        assert_eq!(effective_shards(3), 3);
    }

    #[test]
    fn buffered_lines_drain_without_touching_the_socket() {
        // Capacity 16: fill_buf pulls at most 16 bytes at a time.
        let data = b"first\nsecond\npartial";
        let mut reader = BufReader::with_capacity(64, &data[..]);
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut reader, &mut buf, 64).unwrap(), Frame::Line);
        assert_eq!(buf, b"first\n");
        // "second\npartial" is now buffered; only the complete line comes out.
        assert_eq!(take_buffered_line(&mut reader).unwrap(), b"second\n");
        assert_eq!(
            take_buffered_line(&mut reader),
            None,
            "an incomplete buffered line must not be consumed"
        );
        buf.clear();
        assert_eq!(read_frame(&mut reader, &mut buf, 64).unwrap(), Frame::Eof);
        assert_eq!(buf, b"partial", "the tail survives for the normal path");
    }

    #[test]
    fn ack_slot_delivers_the_result_across_threads() {
        let slot = Arc::new(AckSlot::default());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        std::thread::sleep(Duration::from_millis(10));
        slot.complete(Err(io::Error::other("disk gone")));
        let result = waiter.join().expect("waiter thread");
        assert_eq!(result.unwrap_err().to_string(), "disk gone");
    }

    #[test]
    fn sequencer_flush_returns_once_idle_and_orders_enqueues() {
        let seq = WalSequencer::new();
        seq.flush(); // empty and not busy: immediate
        let a = seq.enqueue(0, Vec::new());
        let b = seq.enqueue(1, Vec::new());
        {
            let queue = seq.lock_queue();
            let seqs: Vec<u64> = queue.items.iter().map(|i| i.seq).collect();
            assert_eq!(seqs, vec![0, 1], "sequence numbers follow enqueue order");
            assert_eq!(queue.items[0].shard, 0);
            assert_eq!(queue.items[1].shard, 1);
        }
        // Drain as the sequencer thread would, then ack.
        let items: Vec<SeqItem> = seq.lock_queue().items.drain(..).collect();
        for item in &items {
            item.ack.complete(Ok(()));
        }
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        seq.flush();
    }

    #[test]
    fn gate_bounds_permits_and_reports_drain() {
        let gate = Arc::new(Gate::new(2));
        let a = gate.try_acquire().expect("first permit");
        let b = gate.try_acquire().expect("second permit");
        assert!(gate.try_acquire().is_none(), "cap reached");
        assert!(!gate.wait_drained(Duration::from_millis(10)));
        drop(a);
        drop(b);
        assert!(gate.wait_drained(Duration::from_millis(10)));
        assert!(gate.try_acquire().is_some(), "permits recycle");
    }
}
