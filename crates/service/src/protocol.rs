//! The wire protocol: newline-delimited JSON request/response messages.
//!
//! Every message is one JSON document on one line, terminated by `\n`
//! (the serde externally-tagged enum encoding of [`Request`] and
//! [`Response`]). A connection carries any number of request/response
//! pairs in order; the server answers each request before reading the
//! next, so a client can treat the connection as a synchronous call
//! channel.

use std::io::{self, BufRead, Write};

use fedsched_dag::task::DagTask;
use serde::{Deserialize, Serialize};

use crate::stats::StatsSnapshot;

/// Keeps `false` booleans off the wire so old peers see byte-identical
/// messages (unknown-field tolerance covers new peers).
#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_false(b: &bool) -> bool {
    !*b
}

/// The server-side stage breakdown echoed in an admission response when
/// the request set `echo_timing` — how a load generator splits server
/// time from network and queueing time without scraping `/metrics`.
///
/// All figures are microseconds, truncated. The serialize/ack stage is
/// absent by construction: the echo is part of the serialized response,
/// so that stage cannot time itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RequestTiming {
    /// Waiting for the first byte of the request — open-loop client
    /// think time, not server work. Absent in echoes from servers
    /// predating the idle/read split.
    #[serde(default)]
    pub idle_us: u64,
    /// Reading and framing the request line once its first byte
    /// arrived (socket work alone; think time lands in `idle_us`).
    pub read_us: u64,
    /// Parsing the framed line into a typed request.
    pub parse_us: u64,
    /// Template-cache lookup (zero on a cache miss: the probe time is
    /// real sizing work then, credited to analysis).
    pub cache_us: u64,
    /// Admission analysis, state-lock wait included.
    pub analysis_us: u64,
    /// Write-ahead-log append + fsync (zero without durability).
    pub wal_us: u64,
}

/// A client request.
// `Admit` dominates the enum's size (a `DagTask` inlines the CSR edge
// arenas), but requests are decoded one at a time and consumed
// immediately — they are never stored in bulk, so boxing the task would
// add an indirection to the hot admission path for no memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Admit one task; answered with `Admitted` or `Rejected`.
    Admit {
        /// The task to admit.
        task: DagTask,
        /// Optional client-minted correlation token. The server echoes it
        /// in the response and stamps it on every telemetry span the
        /// admission produces, so one request can be followed across the
        /// protocol, the analysis phases, and an exported trace.
        trace_id: Option<u64>,
        /// When `true`, the response carries a [`RequestTiming`] with the
        /// server-side per-stage breakdown. Defaults to `false` and is
        /// omitted from the wire then, so requests from older clients and
        /// to older servers are byte-identical.
        #[serde(default, skip_serializing_if = "is_false")]
        echo_timing: bool,
    },
    /// Remove a previously admitted task by its token.
    Remove {
        /// The token `Admitted` returned.
        token: u64,
    },
    /// Look up the current placement of an admitted task.
    Query {
        /// The token `Admitted` returned.
        token: u64,
    },
    /// Fetch the server's counters.
    Stats,
    /// Fetch the server's counters rendered in the Prometheus text
    /// exposition format; answered with `Metrics`.
    StatsPrometheus,
    /// Stop the server; answered with `ShuttingDown`, after which no
    /// further connections are accepted.
    Shutdown,
}

/// Where an admitted task runs on the platform. Processor indices are the
/// *current* global layout (dedicated clusters pack from processor 0 in
/// admission order, the shared pool sits above them) and may shift when
/// other tasks are removed; `Query` always reports the up-to-date layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// A dedicated cluster executing the task's frozen LS template.
    Dedicated {
        /// First processor of the cluster.
        first_processor: u32,
        /// Cluster width `μ*`.
        processors: u32,
    },
    /// A slot on one shared EDF processor.
    Shared {
        /// Global index of the shared processor.
        processor: u32,
    },
}

/// The server's answer to one [`Request`].
// `Stats` dominates the enum size, but responses are built once per request
// and serialized immediately — never stored in bulk — so boxing the snapshot
// would buy nothing and cost an allocation on the hot stats path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The task was admitted.
    Admitted {
        /// Handle for later `Remove`/`Query` requests.
        token: u64,
        /// Where the task was placed.
        placement: Placement,
        /// Whether the sizing came out of the template cache.
        cache_hit: bool,
        /// The request's `trace_id`, echoed back verbatim.
        trace_id: Option<u64>,
        /// Per-stage server timing, present iff the request asked for it
        /// with `echo_timing` (omitted from the wire otherwise).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        timing: Option<RequestTiming>,
    },
    /// The task was rejected; the state is unchanged.
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
        /// The request's `trace_id`, echoed back verbatim.
        trace_id: Option<u64>,
        /// Per-stage server timing, present iff the request asked for it
        /// with `echo_timing` (omitted from the wire otherwise).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        timing: Option<RequestTiming>,
    },
    /// The task was removed.
    Removed {
        /// The removed task's token.
        token: u64,
        /// How many shared tasks moved to another processor during the
        /// replay that reclaimed the freed capacity.
        migrated: u64,
    },
    /// Answer to `Query`.
    TaskInfo {
        /// The queried token.
        token: u64,
        /// The task's current placement.
        placement: Placement,
    },
    /// The token names no resident task.
    NotFound {
        /// The offending token.
        token: u64,
    },
    /// Answer to `Stats`.
    Stats {
        /// Counters at the time the request was handled.
        snapshot: StatsSnapshot,
    },
    /// Answer to `StatsPrometheus`: the counters in the Prometheus text
    /// exposition format (the same body `GET /metrics` serves over HTTP).
    Metrics {
        /// The exposition text, `# HELP`/`# TYPE` comments included.
        text: String,
    },
    /// Acknowledgement of `Shutdown`.
    ShuttingDown,
    /// The server is already serving its configured maximum number of
    /// connections and turned this one away without reading from it. The
    /// connection is closed after this response; retry on a fresh
    /// connection after a backoff (see `Client`'s automatic Busy retry).
    Busy {
        /// Advisory floor, in milliseconds, for the client's retry
        /// backoff.
        retry_after_ms: u64,
    },
    /// The request could not be understood or served.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Writes one message as a JSON line and flushes.
///
/// # Errors
///
/// I/O errors from the underlying writer; serialization failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn write_message<T: Serialize, W: Write>(writer: &mut W, message: &T) -> io::Result<()> {
    let line = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads the next message: one JSON document per line, blank lines skipped.
/// Returns `Ok(None)` on a clean end of stream.
///
/// # Errors
///
/// I/O errors from the underlying reader; malformed JSON surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_message<T: Deserialize, R: BufRead>(reader: &mut R) -> io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return serde_json::from_str(trimmed)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::time::Duration;

    fn task() -> DagTask {
        DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8)).unwrap()
    }

    #[test]
    fn requests_roundtrip_over_a_line_stream() {
        let mut buf = Vec::new();
        let requests = [
            Request::Admit {
                task: task(),
                trace_id: None,
                echo_timing: false,
            },
            Request::Admit {
                task: task(),
                trace_id: Some(99),
                echo_timing: true,
            },
            Request::Remove { token: 3 },
            Request::Query { token: 3 },
            Request::Stats,
            Request::StatsPrometheus,
            Request::Shutdown,
        ];
        for r in &requests {
            write_message(&mut buf, r).unwrap();
        }
        let mut reader = io::BufReader::new(&buf[..]);
        for r in &requests {
            let got: Request = read_message(&mut reader).unwrap().unwrap();
            assert_eq!(&got, r);
        }
        assert_eq!(read_message::<Request, _>(&mut reader).unwrap(), None);
    }

    #[test]
    fn responses_roundtrip() {
        let mut buf = Vec::new();
        let responses = [
            Response::Admitted {
                token: 7,
                placement: Placement::Dedicated {
                    first_processor: 2,
                    processors: 3,
                },
                cache_hit: true,
                trace_id: Some(99),
                timing: Some(RequestTiming {
                    idle_us: 5,
                    read_us: 12,
                    parse_us: 3,
                    cache_us: 0,
                    analysis_us: 450,
                    wal_us: 88,
                }),
            },
            Response::Rejected {
                reason: "no".into(),
                trace_id: None,
                timing: None,
            },
            Response::Metrics {
                text: "# HELP x y\nx 1\n".into(),
            },
            Response::Busy {
                retry_after_ms: 100,
            },
        ];
        for resp in &responses {
            write_message(&mut buf, resp).unwrap();
        }
        let mut reader = io::BufReader::new(&buf[..]);
        for resp in &responses {
            let got: Response = read_message(&mut reader).unwrap().unwrap();
            assert_eq!(&got, resp);
        }
    }

    /// Every request variant, struct payloads and units alike.
    fn all_requests() -> Vec<Request> {
        vec![
            Request::Admit {
                task: task(),
                trace_id: Some(99),
                echo_timing: true,
            },
            Request::Remove { token: 3 },
            Request::Query { token: 4 },
            Request::Stats,
            Request::StatsPrometheus,
            Request::Shutdown,
        ]
    }

    /// Every response variant, with both placement shapes represented.
    fn all_responses() -> Vec<Response> {
        let snapshot =
            crate::state::AdmissionState::new(crate::state::AdmissionConfig::new(4)).snapshot();
        vec![
            Response::Admitted {
                token: 7,
                placement: Placement::Dedicated {
                    first_processor: 2,
                    processors: 3,
                },
                cache_hit: true,
                trace_id: Some(99),
                timing: Some(RequestTiming {
                    idle_us: 5,
                    read_us: 12,
                    parse_us: 3,
                    cache_us: 7,
                    analysis_us: 450,
                    wal_us: 0,
                }),
            },
            Response::Admitted {
                token: 8,
                placement: Placement::Shared { processor: 5 },
                cache_hit: false,
                trace_id: None,
                timing: None,
            },
            Response::Rejected {
                reason: "no".into(),
                trace_id: Some(1),
                timing: None,
            },
            Response::Removed {
                token: 7,
                migrated: 2,
            },
            Response::TaskInfo {
                token: 8,
                placement: Placement::Shared { processor: 5 },
            },
            Response::NotFound { token: 42 },
            Response::Stats { snapshot },
            Response::Metrics {
                text: "# HELP x y\nx 1\n".into(),
            },
            Response::ShuttingDown,
            Response::Busy {
                retry_after_ms: 100,
            },
            Response::Error {
                message: "nope".into(),
            },
        ]
    }

    /// Injects an unknown field at the front of the variant's payload
    /// object: what a message from a newer peer looks like.
    fn with_unknown_field(json: &str) -> Option<String> {
        let idx = json.find(":{")? + 2;
        let comma = if json[idx..].starts_with('}') {
            ""
        } else {
            ","
        };
        Some(format!(
            "{}\"added_in_a_future_version\":[1,2,3]{comma}{}",
            &json[..idx],
            &json[idx..]
        ))
    }

    #[test]
    fn every_request_variant_roundtrips() {
        for request in all_requests() {
            let line = serde_json::to_string(&request).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, request, "through {line}");
        }
    }

    #[test]
    fn every_response_variant_roundtrips() {
        for response in all_responses() {
            let line = serde_json::to_string(&response).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, response, "through {line}");
        }
    }

    #[test]
    fn unknown_fields_from_newer_peers_are_tolerated() {
        // Struct-payload variants must ignore fields a newer server or
        // client adds; unit variants have no payload to extend.
        let mut exercised = 0;
        for request in all_requests() {
            let line = serde_json::to_string(&request).unwrap();
            if let Some(extended) = with_unknown_field(&line) {
                let back: Request =
                    serde_json::from_str(&extended).unwrap_or_else(|e| panic!("{extended}: {e}"));
                assert_eq!(back, request, "through {extended}");
                exercised += 1;
            }
        }
        for response in all_responses() {
            let line = serde_json::to_string(&response).unwrap();
            if let Some(extended) = with_unknown_field(&line) {
                let back: Response =
                    serde_json::from_str(&extended).unwrap_or_else(|e| panic!("{extended}: {e}"));
                assert_eq!(back, response, "through {extended}");
                exercised += 1;
            }
        }
        assert!(exercised >= 12, "only {exercised} payload variants seen");
    }

    #[test]
    fn unknown_fields_inside_a_stats_snapshot_are_tolerated() {
        // The snapshot is the widest, most version-churned payload: a
        // newer server adding a counter must not break an older client.
        let snapshot =
            crate::state::AdmissionState::new(crate::state::AdmissionConfig::new(4)).snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let extended = json.replacen('{', "{\"a_new_counter\":0,", 1);
        let back: crate::stats::StatsSnapshot = serde_json::from_str(&extended).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn timing_fields_stay_off_the_wire_unless_asked_for() {
        // An old server must see byte-identical admits from a new client
        // that doesn't opt in, and an old client must parse responses
        // from a server that never echoes.
        let silent = serde_json::to_string(&Request::Admit {
            task: task(),
            trace_id: None,
            echo_timing: false,
        })
        .unwrap();
        assert!(!silent.contains("echo_timing"), "through {silent}");
        let opted_in = serde_json::to_string(&Request::Admit {
            task: task(),
            trace_id: None,
            echo_timing: true,
        })
        .unwrap();
        assert!(
            opted_in.contains("\"echo_timing\":true"),
            "through {opted_in}"
        );

        let response = serde_json::to_string(&Response::Rejected {
            reason: "no".into(),
            trace_id: None,
            timing: None,
        })
        .unwrap();
        assert!(!response.contains("timing"), "through {response}");

        // A pre-timing peer's messages (no new fields at all) still parse.
        let old_admit = "{\"Admit\":{\"task\":".to_owned()
            + &serde_json::to_string(&task()).unwrap()
            + ",\"trace_id\":null}}";
        let back: Request = serde_json::from_str(&old_admit).unwrap();
        assert_eq!(
            back,
            Request::Admit {
                task: task(),
                trace_id: None,
                echo_timing: false,
            }
        );
        let old_rejected = "{\"Rejected\":{\"reason\":\"no\",\"trace_id\":null}}";
        let back: Response = serde_json::from_str(old_rejected).unwrap();
        assert_eq!(
            back,
            Response::Rejected {
                reason: "no".into(),
                trace_id: None,
                timing: None,
            }
        );
    }

    #[test]
    fn unknown_variants_are_rejected_not_misread() {
        let err = serde_json::from_str::<Request>("{\"AdmitBatch\":{\"tasks\":[]}}");
        assert!(err.is_err(), "an unknown request variant cannot parse");
        let err = serde_json::from_str::<Response>("\"Rebooting\"");
        assert!(err.is_err(), "an unknown response variant cannot parse");
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_is_invalid_data() {
        let mut framed = Vec::from(&b"\n\n"[..]);
        write_message(&mut framed, &Request::Stats).unwrap();
        let mut reader = io::BufReader::new(&framed[..]);
        let got: Request = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(got, Request::Stats);

        let mut bad = io::BufReader::new(&b"{not json\n"[..]);
        let err = read_message::<Request, _>(&mut bad).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
