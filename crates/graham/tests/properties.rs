//! Property-based tests: LS always emits valid schedules within Graham's
//! bound, on arbitrary DAGs, processor counts and priority policies.

use fedsched_dag::graph::{Dag, DagBuilder};
use fedsched_dag::time::Duration;
use fedsched_graham::list::{
    graham_upper_bound, list_schedule_with, makespan_lower_bound, PriorityPolicy,
};
use proptest::prelude::*;

fn arb_dag(max_vertices: usize) -> impl Strategy<Value = Dag> {
    (1..=max_vertices)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(1u64..=9, n),
                prop::collection::vec(0.0f64..1.0, n * (n - 1) / 2),
                0.0f64..0.8,
            )
        })
        .prop_map(|(wcets, edge_rolls, p)| {
            let mut b = DagBuilder::new();
            let vs = b.add_vertices(wcets.into_iter().map(Duration::new));
            let mut k = 0;
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    if edge_rolls[k] < p {
                        b.add_edge(vs[i], vs[j]).expect("forward edges are fresh");
                    }
                    k += 1;
                }
            }
            b.build().expect("forward-only edges cannot cycle")
        })
}

fn arb_policy() -> impl Strategy<Value = PriorityPolicy> {
    prop_oneof![
        Just(PriorityPolicy::ListOrder),
        Just(PriorityPolicy::CriticalPathFirst),
        Just(PriorityPolicy::LongestWcetFirst),
    ]
}

proptest! {
    /// Every LS schedule is a valid non-preemptive schedule of its DAG.
    #[test]
    fn ls_schedules_are_valid(dag in arb_dag(14), m in 1u32..=6, policy in arb_policy()) {
        let s = list_schedule_with(&dag, m, policy);
        prop_assert_eq!(s.validate(&dag), Ok(()));
        prop_assert_eq!(s.total_busy_time(), dag.volume());
    }

    /// Every LS makespan lies between the optimal lower bound and Graham's
    /// upper bound — the inequality Lemma 1 rests on.
    #[test]
    fn ls_makespan_within_graham_bounds(dag in arb_dag(14), m in 1u32..=6, policy in arb_policy()) {
        let s = list_schedule_with(&dag, m, policy);
        prop_assert!(s.makespan() >= makespan_lower_bound(&dag, m));
        prop_assert!(s.makespan() <= graham_upper_bound(&dag, m));
    }

    /// LS is exact on a single processor: makespan equals the volume.
    #[test]
    fn ls_single_processor_is_volume(dag in arb_dag(12), policy in arb_policy()) {
        let s = list_schedule_with(&dag, 1, policy);
        prop_assert_eq!(s.makespan(), dag.volume());
    }

    /// Monotonicity in the *lower bound* sense: more processors never push
    /// the makespan below `len` nor above the m-processor Graham bound.
    /// (Note: LS makespans themselves are NOT monotone in m — that is the
    /// anomaly — so we only assert the bound envelope.)
    #[test]
    fn bounds_envelope_shrinks_with_processors(dag in arb_dag(12), m in 1u32..=5) {
        let lb_m = makespan_lower_bound(&dag, m);
        let lb_m1 = makespan_lower_bound(&dag, m + 1);
        prop_assert!(lb_m1 <= lb_m);
        let ub_m = graham_upper_bound(&dag, m);
        // Upper bound is not monotone in general form but the formula
        // (vol + (m-1)len)/m decreases in m when vol ≥ len, which always
        // holds.
        let ub_m1 = graham_upper_bound(&dag, m + 1);
        prop_assert!(ub_m1 <= ub_m + Duration::new(1)); // ceil slack
    }

    /// Work conservation: at any template start time, no processor was left
    /// idle while the started job was already available. We verify a
    /// consequence that is cheap to check: the schedule of an *independent*
    /// job set (no edges) has no idle gap before the last start.
    #[test]
    fn independent_jobs_have_no_internal_idle(
        wcets in prop::collection::vec(1u64..=9, 1..12),
        m in 1u32..=4,
    ) {
        let mut b = DagBuilder::new();
        b.add_vertices(wcets.iter().map(|&w| Duration::new(w)));
        let dag = b.build().unwrap();
        let s = list_schedule_with(&dag, m, PriorityPolicy::ListOrder);
        // With independent jobs, every processor's jobs are back-to-back
        // from time zero.
        for p in 0..m {
            let jobs = s.jobs_on(p);
            let mut expected_start = Duration::ZERO;
            for v in jobs {
                let e = s.entry(v);
                prop_assert_eq!(e.start, expected_start);
                expected_start = e.finish;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact optimum sits between the analytic lower bound and every LS
    /// schedule — and Graham's ratio bound holds against the *true* optimum.
    #[test]
    fn optimum_brackets_and_graham_ratio(dag in arb_dag(9), m in 1u32..=4) {
        use fedsched_graham::optimal::optimal_makespan;
        let opt = optimal_makespan(&dag, m, 3_000_000);
        prop_assume!(opt.is_exact());
        let opt = opt.value();
        prop_assert!(opt >= makespan_lower_bound(&dag, m));
        for policy in [
            PriorityPolicy::ListOrder,
            PriorityPolicy::CriticalPathFirst,
            PriorityPolicy::LongestWcetFirst,
        ] {
            let ls = list_schedule_with(&dag, m, policy).makespan();
            prop_assert!(ls >= opt, "LS beat the optimum?!");
            // Lemma 1 against the true optimum:
            // ls ≤ (2 − 1/m)·opt ⇔ ls·m ≤ (2m − 1)·opt.
            prop_assert!(
                u128::from(ls.ticks()) * u128::from(m)
                    <= u128::from(2 * m - 1) * u128::from(opt.ticks()),
                "Graham ratio violated: ls={ls}, opt={opt}, m={m}"
            );
        }
    }
}

proptest! {
    /// Precedence semantics are invariant under transitive reduction: the
    /// reduced DAG admits exactly the same LS schedules (entry-for-entry)
    /// and the same exact optimum.
    #[test]
    fn schedules_invariant_under_transitive_reduction(
        dag in arb_dag(10),
        m in 1u32..=4,
        policy in arb_policy(),
    ) {
        let reduced = dag.transitive_reduction();
        prop_assert!(reduced.edge_count() <= dag.edge_count());
        let a = list_schedule_with(&dag, m, policy);
        let b = list_schedule_with(&reduced, m, policy);
        prop_assert_eq!(a.entries(), b.entries());
        // The schedule of the original validates against the reduction and
        // vice versa (same precedence relation).
        prop_assert_eq!(a.validate(&reduced), Ok(()));
        prop_assert_eq!(b.validate(&dag), Ok(()));
    }
}
