//! Allocation gate for the List-Scheduling kernel.
//!
//! The CSR/workspace refactor's contract is behavioural, not just fast:
//! after warm-up, the kernel's makespan-only path performs **zero** heap
//! allocations and the template path exactly one (the returned entry
//! vector). A counting global allocator turns that contract into a test,
//! so a regression shows up as a failed assertion rather than a slow
//! benchmark.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fedsched_dag::graph::{Dag, DagBuilder};
use fedsched_dag::time::Duration;
use fedsched_graham::list::{list_makespan_ranked, list_schedule_ranked, PriorityPolicy};
use fedsched_graham::workspace::LsWorkspace;

thread_local! {
    /// Per-thread allocation count: tests run on harness threads, so a
    /// process-global counter would pick up other tests' noise.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// `u64` has no destructor, so the thread-local slot is accessible for the
// whole thread lifetime — safe to touch from inside the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// A layered DAG wide enough to exercise the bitset and both heaps: 64
/// vertices in 8 layers, each vertex depending on two vertices of the
/// previous layer.
fn layered_dag() -> Dag {
    let mut b = DagBuilder::new();
    let vs = b.add_vertices((0..64).map(|i| Duration::new(1 + (i * 7) % 13)));
    for layer in 1..8 {
        for i in 0..8 {
            let v = vs[layer * 8 + i];
            b.add_edge(vs[(layer - 1) * 8 + i], v).unwrap();
            b.add_edge(vs[(layer - 1) * 8 + (i + 3) % 8], v).unwrap();
        }
    }
    b.build().unwrap()
}

#[test]
fn warm_workspace_kernel_runs_are_allocation_free() {
    let dag = layered_dag();
    let ranks = PriorityPolicy::CriticalPathFirst.ranks(&dag);
    let mut ws = LsWorkspace::new();
    ws.prepare(&ranks);
    // Warm-up at the largest processor count the loop will see, so every
    // buffer (heaps included) reaches its steady-state capacity.
    let warm = ws.template(&dag, 8, dag.wcets());
    assert!(warm.makespan() > Duration::ZERO);

    // Makespan-only path: zero allocations across processor counts.
    let before = allocations();
    let mut checksum = Duration::ZERO;
    for mu in 1..=8 {
        checksum += ws.makespan(&dag, mu, dag.wcets());
    }
    assert_eq!(
        allocations() - before,
        0,
        "the warm makespan-only kernel loop must not allocate"
    );
    assert!(checksum > Duration::ZERO);

    // Re-preparing with identical ranks is memoized: still no allocations.
    let before = allocations();
    ws.prepare(&ranks);
    let _ = ws.makespan(&dag, 4, dag.wcets());
    assert_eq!(allocations() - before, 0, "memoized prepare must be free");
}

#[test]
fn warm_template_path_allocates_exactly_one_entry_vector_per_run() {
    let dag = layered_dag();
    let ranks = PriorityPolicy::ListOrder.ranks(&dag);
    let mut ws = LsWorkspace::new();
    ws.prepare(&ranks);
    let warm = ws.template(&dag, 8, dag.wcets());

    let before = allocations();
    let runs = 8u64;
    let mut templates = Vec::with_capacity(runs as usize);
    let vec_alloc = allocations() - before;
    let before = allocations();
    for mu in 1..=runs {
        templates.push(ws.template(&dag, mu as u32, dag.wcets()));
    }
    assert_eq!(
        allocations() - before,
        runs,
        "each warm template run should allocate exactly its entry vector"
    );
    assert_eq!(vec_alloc, 1, "sanity: the counter counts Vec allocations");
    assert_eq!(templates[7], warm, "same inputs, same template");
}

#[test]
fn public_entry_points_stay_lean_through_the_thread_workspace() {
    let dag = layered_dag();
    let ranks = PriorityPolicy::CriticalPathFirst.ranks(&dag);
    // Warm this thread's shared workspace through the public API.
    let warm = list_schedule_ranked(&dag, 8, &ranks, dag.wcets());

    let before = allocations();
    for mu in 1..=8 {
        let _ = list_makespan_ranked(&dag, mu, &ranks, dag.wcets());
    }
    assert_eq!(
        allocations() - before,
        0,
        "list_makespan_ranked must be allocation-free when warm"
    );

    let before = allocations();
    let again = list_schedule_ranked(&dag, 8, &ranks, dag.wcets());
    let after = allocations();
    assert_eq!(
        after - before,
        1,
        "list_schedule_ranked allocates only the returned entries"
    );
    assert_eq!(again, warm);
}
