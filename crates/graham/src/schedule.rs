//! Template schedules: the `σ_i` lookup tables of the paper.
//!
//! A [`TemplateSchedule`] fixes, for every vertex of one dag-job, the
//! processor it runs on and its start/finish offsets relative to the dag-job
//! release. FEDCONS freezes the List-Scheduling output as such a template and
//! replays it at run time (paper Section IV and footnote 2: re-running the
//! scheduler on-line is unsafe because of Graham's timing anomalies).

use core::fmt;

use fedsched_dag::graph::{Dag, VertexId};
use fedsched_dag::time::Duration;
use serde::{Deserialize, Serialize};

/// Placement of one vertex in a template schedule, relative to the dag-job
/// release instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Index of the processor within the task's dedicated cluster,
    /// `0 .. processor_count`.
    pub processor: u32,
    /// Start offset from the release.
    pub start: Duration,
    /// Finish offset from the release (`start + wcet`).
    pub finish: Duration,
}

/// A way a template schedule can be inconsistent with its DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule has entries for a different number of vertices than the
    /// DAG.
    VertexCountMismatch {
        /// Entries in the schedule.
        schedule: usize,
        /// Vertices in the DAG.
        dag: usize,
    },
    /// An entry's duration does not equal the vertex WCET.
    DurationMismatch {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// An entry starts before all predecessors have finished.
    PrecedenceViolation {
        /// The predecessor.
        before: VertexId,
        /// The vertex that started too early.
        after: VertexId,
    },
    /// Two vertices overlap in time on the same processor.
    ProcessorOverlap {
        /// First vertex.
        a: VertexId,
        /// Second vertex.
        b: VertexId,
        /// The shared processor.
        processor: u32,
    },
    /// An entry references a processor outside `0..processor_count`.
    ProcessorOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The referenced processor.
        processor: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::VertexCountMismatch { schedule, dag } => write!(
                f,
                "schedule covers {schedule} vertices but the DAG has {dag}"
            ),
            ScheduleError::DurationMismatch { vertex } => {
                write!(f, "entry for {vertex} does not span its WCET")
            }
            ScheduleError::PrecedenceViolation { before, after } => {
                write!(f, "{after} starts before its predecessor {before} finishes")
            }
            ScheduleError::ProcessorOverlap { a, b, processor } => {
                write!(f, "{a} and {b} overlap on processor {processor}")
            }
            ScheduleError::ProcessorOutOfRange { vertex, processor } => {
                write!(f, "{vertex} placed on out-of-range processor {processor}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An immutable per-dag-job schedule on a dedicated cluster of identical
/// processors: vertex → (processor, start, finish), all offsets relative to
/// the dag-job release.
///
/// Produced by [`crate::list::list_schedule`]; validated against its DAG by
/// [`TemplateSchedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateSchedule {
    processor_count: u32,
    entries: Vec<ScheduleEntry>,
    makespan: Duration,
}

impl TemplateSchedule {
    /// Assembles a template from per-vertex entries.
    ///
    /// The makespan is the maximum finish offset (zero for no entries).
    /// Consistency with a DAG is *not* checked here; call
    /// [`TemplateSchedule::validate`].
    #[must_use]
    pub fn from_entries(processor_count: u32, entries: Vec<ScheduleEntry>) -> TemplateSchedule {
        let makespan = entries
            .iter()
            .map(|e| e.finish)
            .max()
            .unwrap_or(Duration::ZERO);
        TemplateSchedule {
            processor_count,
            entries,
            makespan,
        }
    }

    /// Number of processors in the dedicated cluster.
    #[must_use]
    pub fn processor_count(&self) -> u32 {
        self.processor_count
    }

    /// The schedule length: the latest finish offset.
    #[must_use]
    pub fn makespan(&self) -> Duration {
        self.makespan
    }

    /// The entry for vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this schedule.
    #[must_use]
    pub fn entry(&self, v: VertexId) -> ScheduleEntry {
        self.entries[v.index()]
    }

    /// All entries, indexed by [`VertexId::index`].
    #[must_use]
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Number of scheduled vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the schedule contains no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The vertices assigned to `processor`, sorted by start offset.
    #[must_use]
    pub fn jobs_on(&self, processor: u32) -> Vec<VertexId> {
        let mut on: Vec<VertexId> = (0..self.entries.len())
            .filter(|&i| self.entries[i].processor == processor)
            .map(VertexId::from_index)
            .collect();
        on.sort_by_key(|v| self.entries[v.index()].start);
        on
    }

    /// Total busy time across all processors (should equal the DAG volume
    /// for a valid schedule).
    #[must_use]
    pub fn total_busy_time(&self) -> Duration {
        self.entries.iter().map(|e| e.finish - e.start).sum()
    }

    /// Checks that this template is a correct non-preemptive schedule of
    /// `dag`: every vertex spans exactly its WCET, precedence constraints
    /// hold, and no two vertices overlap on a processor.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self, dag: &Dag) -> Result<(), ScheduleError> {
        if self.entries.len() != dag.vertex_count() {
            return Err(ScheduleError::VertexCountMismatch {
                schedule: self.entries.len(),
                dag: dag.vertex_count(),
            });
        }
        for v in dag.vertices() {
            let e = self.entry(v);
            if e.processor >= self.processor_count {
                return Err(ScheduleError::ProcessorOutOfRange {
                    vertex: v,
                    processor: e.processor,
                });
            }
            if e.finish.saturating_sub(e.start) != dag.wcet(v) || e.finish < e.start {
                return Err(ScheduleError::DurationMismatch { vertex: v });
            }
            for &p in dag.predecessors(v) {
                if self.entry(p).finish > e.start {
                    return Err(ScheduleError::PrecedenceViolation {
                        before: p,
                        after: v,
                    });
                }
            }
        }
        for proc in 0..self.processor_count {
            let jobs = self.jobs_on(proc);
            for w in jobs.windows(2) {
                if self.entry(w[0]).finish > self.entry(w[1]).start {
                    return Err(ScheduleError::ProcessorOverlap {
                        a: w[0],
                        b: w[1],
                        processor: proc,
                    });
                }
            }
        }
        Ok(())
    }

    /// Renders an ASCII Gantt chart, one row per processor, one column per
    /// tick. Intended for debugging and examples; panics-free for schedules
    /// of any size but most legible when the makespan is modest.
    #[must_use]
    pub fn to_gantt(&self) -> String {
        use core::fmt::Write as _;
        let span = self.makespan.ticks() as usize;
        let mut out = String::new();
        for proc in 0..self.processor_count {
            let mut row = vec!['.'; span];
            for v in self.jobs_on(proc) {
                let e = self.entry(v);
                let glyph = char::from_digit((v.index() % 36) as u32, 36).unwrap_or('?');
                for c in row
                    .iter_mut()
                    .take(e.finish.ticks() as usize)
                    .skip(e.start.ticks() as usize)
                {
                    *c = glyph;
                }
            }
            let _ = writeln!(out, "P{proc}: {}", row.iter().collect::<String>());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;

    fn fork() -> Dag {
        // a(2) → b(3), a → c(1)
        let mut b = DagBuilder::new();
        let vs = b.add_vertices([2, 3, 1].map(Duration::new));
        b.add_edge(vs[0], vs[1]).unwrap();
        b.add_edge(vs[0], vs[2]).unwrap();
        b.build().unwrap()
    }

    fn entry(p: u32, s: u64, f: u64) -> ScheduleEntry {
        ScheduleEntry {
            processor: p,
            start: Duration::new(s),
            finish: Duration::new(f),
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let dag = fork();
        let sched =
            TemplateSchedule::from_entries(2, vec![entry(0, 0, 2), entry(0, 2, 5), entry(1, 2, 3)]);
        assert_eq!(sched.validate(&dag), Ok(()));
        assert_eq!(sched.makespan(), Duration::new(5));
        assert_eq!(sched.total_busy_time(), Duration::new(6));
        assert_eq!(
            sched.jobs_on(0),
            vec![VertexId::from_index(0), VertexId::from_index(1)]
        );
    }

    #[test]
    fn detects_vertex_count_mismatch() {
        let dag = fork();
        let sched = TemplateSchedule::from_entries(1, vec![entry(0, 0, 2)]);
        assert!(matches!(
            sched.validate(&dag),
            Err(ScheduleError::VertexCountMismatch { .. })
        ));
    }

    #[test]
    fn detects_duration_mismatch() {
        let dag = fork();
        let sched =
            TemplateSchedule::from_entries(2, vec![entry(0, 0, 2), entry(0, 2, 4), entry(1, 2, 3)]);
        assert!(matches!(
            sched.validate(&dag),
            Err(ScheduleError::DurationMismatch { .. })
        ));
    }

    #[test]
    fn detects_precedence_violation() {
        let dag = fork();
        let sched =
            TemplateSchedule::from_entries(2, vec![entry(0, 0, 2), entry(1, 1, 4), entry(1, 4, 5)]);
        assert!(matches!(
            sched.validate(&dag),
            Err(ScheduleError::PrecedenceViolation { .. })
        ));
    }

    #[test]
    fn detects_processor_overlap() {
        let dag = fork();
        let sched =
            TemplateSchedule::from_entries(1, vec![entry(0, 0, 2), entry(0, 2, 5), entry(0, 4, 5)]);
        assert!(matches!(
            sched.validate(&dag),
            Err(ScheduleError::ProcessorOverlap { .. })
        ));
    }

    #[test]
    fn detects_out_of_range_processor() {
        let dag = fork();
        let sched =
            TemplateSchedule::from_entries(1, vec![entry(0, 0, 2), entry(0, 2, 5), entry(3, 2, 3)]);
        assert!(matches!(
            sched.validate(&dag),
            Err(ScheduleError::ProcessorOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_schedule() {
        let sched = TemplateSchedule::from_entries(1, Vec::new());
        assert!(sched.is_empty());
        assert_eq!(sched.makespan(), Duration::ZERO);
        let empty = DagBuilder::new().build().unwrap();
        assert_eq!(sched.validate(&empty), Ok(()));
    }

    #[test]
    fn gantt_renders_rows() {
        let sched =
            TemplateSchedule::from_entries(2, vec![entry(0, 0, 2), entry(0, 2, 5), entry(1, 2, 3)]);
        let g = sched.to_gantt();
        assert!(g.contains("P0: 00111"));
        assert!(g.contains("P1: ..2.."));
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::ProcessorOverlap {
            a: VertexId::from_index(1),
            b: VertexId::from_index(2),
            processor: 0,
        };
        assert!(e.to_string().contains("overlap"));
    }
}
