//! Graham's multiprocessing timing anomalies \[11\].
//!
//! Footnote 2 of the paper: *"it is not safe to simply re-run LS during
//! run-time — it was shown that LS exhibits anomalous behavior in the sense
//! that reducing the execution-times of jobs may increase the schedule
//! length. Therefore, we choose to use the schedule σ_i as a lookup table
//! during run-time."*
//!
//! This module reproduces the classic 9-job / 3-processor instance from
//! Graham's *Bounds on Multiprocessing Timing Anomalies* (SIAM J. Appl.
//! Math., 1969) in which reducing every execution time by one unit *grows*
//! the LS makespan from 12 to 13, and provides a randomized anomaly search
//! used by the E8 experiment.

use fedsched_dag::graph::{Dag, DagBuilder};
use fedsched_dag::time::Duration;

use crate::list::{list_schedule_ranked, PriorityPolicy};
use crate::schedule::TemplateSchedule;

/// The classic anomaly instance: 9 jobs, 3 processors, list order
/// `T1, …, T9`.
///
/// Processing times `(3, 2, 2, 2, 4, 4, 4, 4, 9)`; precedence edges
/// `T1 → T9` and `T4 → {T5, T6, T7, T8}`.
///
/// * With the nominal times, LS produces makespan **12**.
/// * With every time reduced by 1, LS produces makespan **13**.
///
/// # Examples
///
/// ```
/// use fedsched_graham::anomaly::{classic_anomaly_dag, demonstrate_classic_anomaly};
///
/// let demo = demonstrate_classic_anomaly();
/// assert_eq!(demo.nominal_makespan.ticks(), 12);
/// assert_eq!(demo.reduced_makespan.ticks(), 13);
/// assert!(demo.is_anomalous());
/// ```
#[must_use]
pub fn classic_anomaly_dag() -> Dag {
    let mut b = DagBuilder::new();
    let v = b.add_vertices([3, 2, 2, 2, 4, 4, 4, 4, 9].map(Duration::new));
    b.add_edge(v[0], v[8]).expect("fresh edge"); // T1 → T9
    for &succ in &[4usize, 5, 6, 7] {
        b.add_edge(v[3], v[succ]).expect("fresh edge"); // T4 → T5..T8
    }
    b.build().expect("acyclic")
}

/// Outcome of scheduling the same DAG twice with re-run LS: once with the
/// nominal (worst-case) execution times and once with reduced actual times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyDemo {
    /// Makespan of the LS schedule built from the nominal times.
    pub nominal_makespan: Duration,
    /// Makespan of the LS schedule rebuilt from the reduced times.
    pub reduced_makespan: Duration,
    /// The schedule built from nominal times (the safe template).
    pub nominal_schedule: TemplateSchedule,
    /// The schedule re-run with reduced times (the unsafe on-line rerun).
    pub reduced_schedule: TemplateSchedule,
}

impl AnomalyDemo {
    /// `true` if reducing execution times *increased* the makespan — the
    /// anomaly the template lookup table defends against.
    #[must_use]
    pub fn is_anomalous(&self) -> bool {
        self.reduced_makespan > self.nominal_makespan
    }
}

/// Schedules `dag` with LS (list order) on `processors` twice: with the
/// vertex WCETs, and with the given `actual` execution times, returning both
/// makespans.
///
/// # Panics
///
/// Panics if `processors` is zero or `actual` is not one entry per vertex.
#[must_use]
pub fn rerun_with_times(dag: &Dag, processors: u32, actual: &[Duration]) -> AnomalyDemo {
    let ranks = PriorityPolicy::ListOrder.ranks(dag);
    let nominal_schedule = list_schedule_ranked(dag, processors, &ranks, dag.wcets());
    let reduced_schedule = list_schedule_ranked(dag, processors, &ranks, actual);
    AnomalyDemo {
        nominal_makespan: nominal_schedule.makespan(),
        reduced_makespan: reduced_schedule.makespan(),
        nominal_schedule,
        reduced_schedule,
    }
}

/// Runs the classic instance: nominal times vs. every time reduced by one.
#[must_use]
pub fn demonstrate_classic_anomaly() -> AnomalyDemo {
    let dag = classic_anomaly_dag();
    let reduced: Vec<Duration> = dag
        .wcets()
        .iter()
        .map(|w| Duration::new(w.ticks() - 1))
        .collect();
    rerun_with_times(&dag, 3, &reduced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_instance_shape() {
        let dag = classic_anomaly_dag();
        assert_eq!(dag.vertex_count(), 9);
        assert_eq!(dag.edge_count(), 5);
        assert_eq!(dag.volume(), Duration::new(34));
        // Longest chain: T1(3) → T9(9) = 12.
        assert_eq!(dag.longest_chain().length, Duration::new(12));
    }

    #[test]
    fn nominal_ls_makespan_is_twelve() {
        let dag = classic_anomaly_dag();
        let ranks = PriorityPolicy::ListOrder.ranks(&dag);
        let s = list_schedule_ranked(&dag, 3, &ranks, dag.wcets());
        s.validate(&dag).unwrap();
        assert_eq!(s.makespan(), Duration::new(12));
    }

    #[test]
    fn reducing_times_grows_makespan_to_thirteen() {
        let demo = demonstrate_classic_anomaly();
        assert_eq!(demo.nominal_makespan, Duration::new(12));
        assert_eq!(demo.reduced_makespan, Duration::new(13));
        assert!(demo.is_anomalous());
    }

    #[test]
    fn template_from_nominal_times_is_a_valid_wcet_schedule() {
        let dag = classic_anomaly_dag();
        let demo = demonstrate_classic_anomaly();
        demo.nominal_schedule.validate(&dag).unwrap();
    }

    #[test]
    fn no_anomaly_when_times_unchanged() {
        let dag = classic_anomaly_dag();
        let demo = rerun_with_times(&dag, 3, dag.wcets());
        assert!(!demo.is_anomalous());
        assert_eq!(demo.nominal_makespan, demo.reduced_makespan);
    }
}
