//! Graham's List Scheduling for sporadic DAG tasks.
//!
//! FEDCONS (Baruah, DATE 2015) schedules each high-density task's DAG with
//! Graham's List Scheduling algorithm \[12\] on a dedicated processor cluster
//! and freezes the result as a *template* replayed at run time. This crate
//! provides:
//!
//! * [`list`] — the LS algorithm (with selectable priority lists), plus the
//!   exact Graham makespan upper bound and the `max(len, ⌈vol/m⌉)` lower
//!   bound that together yield the `(2 − 1/m)` factor of the paper's
//!   Lemma 1;
//! * [`schedule`] — the [`schedule::TemplateSchedule`] lookup table `σ_i`,
//!   with full validity checking and Gantt rendering;
//! * [`anomaly`] — Graham's timing anomaly \[11\], the reason templates (not
//!   on-line re-runs) are used at run time (paper footnote 2);
//! * [`optimal`] — exact minimum makespan for small DAGs (branch-and-bound
//!   over semi-active schedules), the oracle experiment E12 measures LS
//!   against.
//!
//! # Examples
//!
//! ```
//! use fedsched_dag::examples::paper_figure1;
//! use fedsched_graham::list::{list_schedule, makespan_lower_bound, graham_upper_bound};
//!
//! let tau1 = paper_figure1();
//! let sigma = list_schedule(tau1.dag(), 2);
//! sigma.validate(tau1.dag()).expect("valid schedule");
//! assert!(sigma.makespan() >= makespan_lower_bound(tau1.dag(), 2));
//! assert!(sigma.makespan() <= graham_upper_bound(tau1.dag(), 2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod anomaly;
pub mod list;
pub mod optimal;
pub mod schedule;
pub mod workspace;

pub use anomaly::{classic_anomaly_dag, demonstrate_classic_anomaly, AnomalyDemo};
pub use list::{
    graham_upper_bound, list_makespan_ranked, list_schedule, list_schedule_ranked,
    list_schedule_with, makespan_lower_bound, PriorityPolicy,
};
pub use optimal::{optimal_makespan, OptimalMakespan};
pub use schedule::{ScheduleEntry, ScheduleError, TemplateSchedule};
pub use workspace::{with_thread_workspace, LsWorkspace};
