//! Graham's List Scheduling algorithm (LS).
//!
//! LS builds a *work-conserving* non-preemptive schedule of one DAG on `μ`
//! identical processors: whenever a processor is idle and some job is
//! *available* (all predecessors complete), the highest-priority available
//! job starts immediately. Graham \[12\] showed the resulting makespan is at
//! most `(2 − 1/μ)` times optimal, which is exactly the speedup factor
//! Lemma 1 of the paper inherits.
//!
//! The priority list only affects typical-case quality, never the bound;
//! [`PriorityPolicy`] offers the common choices.

use fedsched_dag::graph::Dag;
use fedsched_dag::time::Duration;
use serde::{Deserialize, Serialize};

use crate::schedule::TemplateSchedule;
use crate::workspace::with_thread_workspace;

/// How the priority list handed to LS is derived from the DAG.
///
/// All policies are deterministic; ties break toward the smaller vertex
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PriorityPolicy {
    /// Vertices in their insertion (index) order — the "plain list" of
    /// Graham's original formulation and the default.
    #[default]
    ListOrder,
    /// Critical-path-first: vertices with the longest WCET-weighted path to
    /// a sink come first (a.k.a. *upward rank* / HLF). Usually the best
    /// heuristic in practice.
    CriticalPathFirst,
    /// Longest-processing-time-first by vertex WCET.
    LongestWcetFirst,
}

impl PriorityPolicy {
    /// Computes the priority rank of every vertex under this policy:
    /// smaller rank = scheduled earlier among simultaneously available jobs.
    #[must_use]
    pub fn ranks(self, dag: &Dag) -> Vec<u64> {
        let n = dag.vertex_count();
        match self {
            PriorityPolicy::ListOrder => (0..n as u64).collect(),
            PriorityPolicy::LongestWcetFirst => {
                ranks_by_key(n, |i| core::cmp::Reverse(dag.wcets()[i]))
            }
            PriorityPolicy::CriticalPathFirst => {
                // Downward distance to a sink, inclusive of own WCET,
                // computed in reverse topological order.
                let mut tail = vec![Duration::ZERO; n];
                for &v in dag.topological_order().iter().rev() {
                    let best = dag
                        .successors(v)
                        .iter()
                        .map(|s| tail[s.index()])
                        .max()
                        .unwrap_or(Duration::ZERO);
                    tail[v.index()] = best + dag.wcet(v);
                }
                ranks_by_key(n, |i| core::cmp::Reverse(tail[i]))
            }
        }
    }
}

/// Dense ranks from a sort key: vertices are ordered by `(key, index)` and
/// each receives its position in that order as its rank. Shared by every
/// [`PriorityPolicy`] arm, so "smaller rank = earlier, ties toward the
/// smaller index" is encoded exactly once.
fn ranks_by_key<K: Ord>(n: usize, key: impl Fn(usize) -> K) -> Vec<u64> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (key(i), i));
    let mut ranks = vec![0u64; n];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank as u64;
    }
    ranks
}

/// Runs Graham's List Scheduling on `dag` with `processors` identical
/// processors using the default [`PriorityPolicy::ListOrder`] list.
///
/// See [`list_schedule_with`] for a custom policy.
///
/// # Panics
///
/// Panics if `processors` is zero.
#[must_use]
pub fn list_schedule(dag: &Dag, processors: u32) -> TemplateSchedule {
    list_schedule_with(dag, processors, PriorityPolicy::ListOrder)
}

/// Runs Graham's List Scheduling with an explicit priority policy.
///
/// The schedule is *work-conserving*: no processor idles while an available
/// job exists. Execution times are the vertex WCETs (this is the template
/// construction of the paper; run-time variation is handled by the lookup
/// dispatcher, never by re-running LS).
///
/// # Panics
///
/// Panics if `processors` is zero.
///
/// # Examples
///
/// ```
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_dag::time::Duration;
/// use fedsched_graham::list::list_schedule;
///
/// let tau1 = paper_figure1();
/// let sched = list_schedule(tau1.dag(), 2);
/// sched.validate(tau1.dag()).expect("LS always emits a valid schedule");
/// assert!(sched.makespan() <= tau1.deadline());
/// ```
#[must_use]
pub fn list_schedule_with(dag: &Dag, processors: u32, policy: PriorityPolicy) -> TemplateSchedule {
    assert!(
        processors > 0,
        "list scheduling needs at least one processor"
    );
    let ranks = policy.ranks(dag);
    list_schedule_ranked(dag, processors, &ranks, dag.wcets())
}

/// Core LS entry point, shared by template construction and the anomaly
/// demonstrations: schedules `dag` with per-vertex execution times `times`
/// (which may differ from the WCETs — that is precisely what the anomaly
/// experiments vary) and explicit priority `ranks`.
///
/// Runs on the calling thread's reusable
/// [`LsWorkspace`](crate::workspace::LsWorkspace), so steady-state calls
/// perform exactly one allocation: the returned template's entry vector.
///
/// # Panics
///
/// Panics if `processors` is zero or `times`/`ranks` are not
/// `dag.vertex_count()` long.
#[must_use]
pub fn list_schedule_ranked(
    dag: &Dag,
    processors: u32,
    ranks: &[u64],
    times: &[Duration],
) -> TemplateSchedule {
    assert_eq!(ranks.len(), dag.vertex_count(), "one rank per vertex");
    with_thread_workspace(|ws| {
        ws.prepare(ranks);
        ws.template(dag, processors, times)
    })
}

/// The decision-only variant of [`list_schedule_ranked`]: the same kernel
/// run, returning just the makespan without materialising a template.
/// Allocation-free in steady state — callers that only compare against a
/// deadline (the non-certified `MINPROCS` fit test) use this.
///
/// # Panics
///
/// Panics if `processors` is zero or `times`/`ranks` are not
/// `dag.vertex_count()` long.
#[must_use]
pub fn list_makespan_ranked(
    dag: &Dag,
    processors: u32,
    ranks: &[u64],
    times: &[Duration],
) -> Duration {
    assert_eq!(ranks.len(), dag.vertex_count(), "one rank per vertex");
    with_thread_workspace(|ws| {
        ws.prepare(ranks);
        ws.makespan(dag, processors, times)
    })
}

/// Lower bound on the optimal makespan of `dag` on `m` processors:
/// `max(len, ⌈vol / m⌉)`. Any schedule — clairvoyant or not — is at least
/// this long.
///
/// # Panics
///
/// Panics if `m` is zero.
#[must_use]
pub fn makespan_lower_bound(dag: &Dag, m: u32) -> Duration {
    assert!(m > 0, "at least one processor required");
    let len = dag.longest_chain().length;
    let fair = Duration::new(dag.volume().div_ceil(Duration::new(u64::from(m))));
    len.max(fair)
}

/// Graham's upper bound on the LS makespan: `vol/m + (1 − 1/m)·len`,
/// returned exactly as the ceiling of the rational expression.
///
/// Every LS schedule satisfies `makespan ≤ graham_upper_bound`, and combining
/// with [`makespan_lower_bound`] yields the `(2 − 1/m)` factor of Lemma 1.
///
/// # Panics
///
/// Panics if `m` is zero.
#[must_use]
pub fn graham_upper_bound(dag: &Dag, m: u32) -> Duration {
    assert!(m > 0, "at least one processor required");
    let m = u64::from(m);
    let vol = dag.volume().ticks();
    let len = dag.longest_chain().length.ticks();
    // vol/m + (m-1)/m * len, rounded up: ⌈(vol + (m-1)·len) / m⌉.
    Duration::new((vol + (m - 1) * len).div_ceil(m))
}

/// The smallest processor count `μ` whose Graham upper bound fits within
/// `deadline`, or `None` if no finite `μ` does.
///
/// Since [`graham_upper_bound`] is an upper bound on *every* LS makespan,
/// `graham_bracket(dag, d) = Some(μ)` is a certificate that List Scheduling
/// meets the deadline on `μ` processors under any priority policy — no LS
/// run is needed to know it. `MINPROCS` uses this to bracket the top of its
/// candidate window: no candidate above the bracket can be the minimal
/// answer, because the bracket itself is guaranteed to pass.
///
/// Derivation: with integer ticks, `⌈(vol + (μ−1)·len)/μ⌉ ≤ d` is
/// equivalent to `vol − len ≤ μ·(d − len)`, so the smallest such `μ` is
/// `⌈(vol − len)/(d − len)⌉` when `d > len` (clamped to ≥ 1). When
/// `d < len`, or `d = len` with `vol > len`, no finite `μ` satisfies the
/// bound and the result is `None`; a bracket larger than `u32::MAX` is also
/// reported as `None`.
#[must_use]
pub fn graham_bracket(dag: &Dag, deadline: Duration) -> Option<u32> {
    graham_bracket_from_lengths(dag.volume(), dag.longest_chain().length, deadline)
}

/// [`graham_bracket`] from precomputed `vol` and `len`.
///
/// The bracket depends on the DAG only through its volume and longest-chain
/// length; callers that cache those (such as
/// `DagTask`, which carries both) can bracket in constant
/// time without re-running the chain dynamic program.
#[must_use]
pub fn graham_bracket_from_lengths(
    volume: Duration,
    chain: Duration,
    deadline: Duration,
) -> Option<u32> {
    let vol = volume.ticks();
    let len = chain.ticks();
    let d = deadline.ticks();
    if d < len {
        return None;
    }
    if vol <= len {
        // A chain (or empty DAG): GUB(1) = vol ≤ len ≤ d.
        return Some(1);
    }
    if d == len {
        return None;
    }
    u32::try_from((vol - len).div_ceil(d - len))
        .ok()
        .map(|b| b.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::examples::paper_figure1;
    use fedsched_dag::graph::DagBuilder;

    fn chain(wcets: &[u64]) -> Dag {
        let mut b = DagBuilder::new();
        let vs = b.add_vertices(wcets.iter().map(|&w| Duration::new(w)));
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    fn independent(wcets: &[u64]) -> Dag {
        let mut b = DagBuilder::new();
        b.add_vertices(wcets.iter().map(|&w| Duration::new(w)));
        b.build().unwrap()
    }

    #[test]
    fn chain_is_sequential_regardless_of_processors() {
        let dag = chain(&[2, 3, 4]);
        for m in [1, 2, 5] {
            let s = list_schedule(&dag, m);
            s.validate(&dag).unwrap();
            assert_eq!(s.makespan(), Duration::new(9));
        }
    }

    #[test]
    fn independent_jobs_pack_across_processors() {
        let dag = independent(&[3, 3, 3, 3]);
        let s1 = list_schedule(&dag, 1);
        assert_eq!(s1.makespan(), Duration::new(12));
        let s2 = list_schedule(&dag, 2);
        assert_eq!(s2.makespan(), Duration::new(6));
        let s4 = list_schedule(&dag, 4);
        assert_eq!(s4.makespan(), Duration::new(3));
        for s in [s1, s2, s4] {
            s.validate(&dag).unwrap();
        }
    }

    #[test]
    fn figure1_on_two_processors_meets_deadline() {
        let t = paper_figure1();
        let s = list_schedule(t.dag(), 2);
        s.validate(t.dag()).unwrap();
        // vol = 9, len = 6: on 2 processors LS finishes within
        // vol/m + (1-1/m)len = 4.5 + 3 = 7.5, far under D = 16.
        assert!(s.makespan() <= Duration::new(8));
        assert!(s.makespan() >= Duration::new(6));
    }

    #[test]
    fn respects_graham_upper_bound_and_lower_bound() {
        let t = paper_figure1();
        for m in 1..=5 {
            let s = list_schedule(t.dag(), m);
            assert!(s.makespan() <= graham_upper_bound(t.dag(), m));
            assert!(s.makespan() >= makespan_lower_bound(t.dag(), m));
        }
    }

    #[test]
    fn work_conserving_single_processor_has_no_idle() {
        let t = paper_figure1();
        let s = list_schedule(t.dag(), 1);
        s.validate(t.dag()).unwrap();
        assert_eq!(s.makespan(), t.volume());
    }

    #[test]
    fn policies_yield_valid_schedules() {
        let t = paper_figure1();
        for policy in [
            PriorityPolicy::ListOrder,
            PriorityPolicy::CriticalPathFirst,
            PriorityPolicy::LongestWcetFirst,
        ] {
            let s = list_schedule_with(t.dag(), 3, policy);
            s.validate(t.dag()).unwrap();
            assert!(s.makespan() <= graham_upper_bound(t.dag(), 3));
        }
    }

    #[test]
    fn critical_path_ranks_prefer_long_tails() {
        // v0(1) → v1(5); v2(2) isolated. Tail lengths: v0=6, v1=5, v2=2.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([1, 5, 2].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let dag = b.build().unwrap();
        let ranks = PriorityPolicy::CriticalPathFirst.ranks(&dag);
        assert!(ranks[0] < ranks[1]);
        assert!(ranks[1] < ranks[2]);
    }

    #[test]
    fn longest_wcet_ranks() {
        let dag = independent(&[1, 9, 5]);
        let ranks = PriorityPolicy::LongestWcetFirst.ranks(&dag);
        assert_eq!(ranks, vec![2, 0, 1]);
    }

    #[test]
    fn empty_dag_schedules_to_zero() {
        let dag = DagBuilder::new().build().unwrap();
        let s = list_schedule(&dag, 2);
        assert!(s.is_empty());
        assert_eq!(s.makespan(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = list_schedule(&independent(&[1]), 0);
    }

    #[test]
    fn bounds_formulas() {
        let t = paper_figure1(); // vol 9, len 6
        assert_eq!(makespan_lower_bound(t.dag(), 1), Duration::new(9));
        assert_eq!(makespan_lower_bound(t.dag(), 2), Duration::new(6));
        assert_eq!(makespan_lower_bound(t.dag(), 9), Duration::new(6));
        assert_eq!(graham_upper_bound(t.dag(), 1), Duration::new(9));
        // ⌈(9 + 6)/2⌉ = 8
        assert_eq!(graham_upper_bound(t.dag(), 2), Duration::new(8));
        // ⌈(9 + 2·6)/3⌉ = 7
        assert_eq!(graham_upper_bound(t.dag(), 3), Duration::new(7));
    }

    #[test]
    fn bracket_is_the_smallest_mu_with_gub_within_deadline() {
        let t = paper_figure1(); // vol 9, len 6
        for d in [7u64, 8, 9, 12, 100] {
            let deadline = Duration::new(d);
            let b =
                graham_bracket(t.dag(), deadline).expect("vol > len and d > len ⇒ finite bracket");
            assert!(
                graham_upper_bound(t.dag(), b) <= deadline,
                "d = {d}: bracket {b} must certify"
            );
            if b > 1 {
                assert!(
                    graham_upper_bound(t.dag(), b - 1) > deadline,
                    "d = {d}: bracket {b} must be minimal"
                );
            }
        }
        // ⌈(9−6)/(7−6)⌉ = 3 and ⌈(9−6)/(8−6)⌉ = 2, matching the GUB table.
        assert_eq!(graham_bracket(t.dag(), Duration::new(7)), Some(3));
        assert_eq!(graham_bracket(t.dag(), Duration::new(8)), Some(2));
        assert_eq!(graham_bracket(t.dag(), Duration::new(9)), Some(1));
    }

    #[test]
    fn bracket_edge_cases() {
        let t = paper_figure1(); // vol 9, len 6

        // Deadline below the chain: hopeless.
        assert_eq!(graham_bracket(t.dag(), Duration::new(5)), None);
        // Deadline exactly the chain with parallel slack: GUB never reaches
        // len for finite μ, so there is no certificate (LS may still fit).
        assert_eq!(graham_bracket(t.dag(), Duration::new(6)), None);
        // A pure chain certifies on one processor at its own length.
        let c = chain(&[2, 3, 4]);
        assert_eq!(graham_bracket(&c, Duration::new(9)), Some(1));
        assert_eq!(graham_bracket(&c, Duration::new(8)), None);
        // Empty DAG: any deadline is fine on one processor.
        let empty = DagBuilder::new().build().unwrap();
        assert_eq!(graham_bracket(&empty, Duration::ZERO), Some(1));
    }

    #[test]
    fn ranked_scheduling_with_reduced_times_still_valid_schedule() {
        let t = paper_figure1();
        let ranks = PriorityPolicy::ListOrder.ranks(t.dag());
        let reduced: Vec<Duration> = t
            .dag()
            .wcets()
            .iter()
            .map(|w| Duration::new(w.ticks().saturating_sub(1).max(1)))
            .collect();
        let s = list_schedule_ranked(t.dag(), 2, &ranks, &reduced);
        // Not valid against the *WCETs*, but internally consistent: starts
        // respect precedence under the reduced times.
        assert_eq!(s.len(), t.dag().vertex_count());
        assert!(s.makespan() > Duration::ZERO);
    }
}
