//! Exact minimum non-preemptive makespan of a DAG on `m` identical
//! processors, for small instances.
//!
//! `P | prec | C_max` is strongly NP-hard \[15\], but small DAGs (≲ 14
//! vertices) are solved exactly by branch-and-bound over *active* schedules
//! (a serial schedule-generation scheme: repeatedly pick an eligible vertex
//! and start it as early as the partial schedule allows). Active schedules
//! are dominant for makespan, so the search is exact.
//!
//! Used by experiment E12 to measure List Scheduling against the *true*
//! optimum — sharpening the lower-bound proxies of E5 — and by tests as an
//! oracle for [`crate::list::makespan_lower_bound`] /
//! [`crate::list::graham_upper_bound`].

use fedsched_dag::graph::{Dag, VertexId};
use fedsched_dag::time::Duration;

/// Result of an exact makespan search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimalMakespan {
    /// The search completed; this is the exact optimum.
    Exact(Duration),
    /// The node budget ran out; the value is the best makespan found so far
    /// (an upper bound on the optimum).
    BudgetExhausted(Duration),
}

impl OptimalMakespan {
    /// The makespan value, exact or best-effort.
    #[must_use]
    pub fn value(self) -> Duration {
        match self {
            OptimalMakespan::Exact(d) | OptimalMakespan::BudgetExhausted(d) => d,
        }
    }

    /// `true` if the search proved optimality.
    #[must_use]
    pub fn is_exact(self) -> bool {
        matches!(self, OptimalMakespan::Exact(_))
    }
}

struct Search<'a> {
    dag: &'a Dag,
    m: usize,
    /// Longest WCET-weighted path from each vertex to a sink (inclusive).
    tails: Vec<u64>,
    best: u64,
    nodes_left: u64,
    exhausted: bool,
}

/// Exact minimum makespan of `dag` on `processors` identical processors.
///
/// `node_budget` caps the branch-and-bound tree size; when it is exhausted
/// the best incumbent (initialised with a List-Scheduling schedule, so
/// always within Graham's bound) is returned as
/// [`OptimalMakespan::BudgetExhausted`].
///
/// # Panics
///
/// Panics if `processors` is zero.
///
/// # Examples
///
/// ```
/// use fedsched_graham::anomaly::classic_anomaly_dag;
/// use fedsched_graham::optimal::optimal_makespan;
///
/// // Graham's anomaly instance: LS gives 12 on 3 processors, and 12 is
/// // in fact optimal (the chain T1→T9 alone takes 12).
/// let opt = optimal_makespan(&classic_anomaly_dag(), 3, 1_000_000);
/// assert!(opt.is_exact());
/// assert_eq!(opt.value().ticks(), 12);
/// ```
#[must_use]
pub fn optimal_makespan(dag: &Dag, processors: u32, node_budget: u64) -> OptimalMakespan {
    assert!(processors > 0, "at least one processor required");
    let n = dag.vertex_count();
    if n == 0 {
        return OptimalMakespan::Exact(Duration::ZERO);
    }
    // Tail lengths (critical path to a sink) for the lower bound.
    let mut tails = vec![0u64; n];
    for &v in dag.topological_order().iter().rev() {
        let best = dag
            .successors(v)
            .iter()
            .map(|s| tails[s.index()])
            .max()
            .unwrap_or(0);
        tails[v.index()] = best + dag.wcet(v).ticks();
    }
    // Incumbent: a List-Scheduling schedule (critical-path-first list).
    let incumbent = crate::list::list_schedule_with(
        dag,
        processors,
        crate::list::PriorityPolicy::CriticalPathFirst,
    )
    .makespan()
    .ticks();

    let mut search = Search {
        dag,
        m: processors as usize,
        tails,
        best: incumbent,
        nodes_left: node_budget,
        exhausted: false,
    };
    let mut finish: Vec<Option<u64>> = vec![None; n];
    let mut proc_free = vec![0u64; processors as usize];
    search.dfs(&mut finish, &mut proc_free, 0, 0);
    if search.exhausted {
        OptimalMakespan::BudgetExhausted(Duration::new(search.best))
    } else {
        OptimalMakespan::Exact(Duration::new(search.best))
    }
}

impl Search<'_> {
    fn dfs(
        &mut self,
        finish: &mut Vec<Option<u64>>,
        proc_free: &mut Vec<u64>,
        scheduled: usize,
        makespan_so_far: u64,
    ) {
        if self.nodes_left == 0 {
            self.exhausted = true;
            return;
        }
        self.nodes_left -= 1;
        let n = self.dag.vertex_count();
        if scheduled == n {
            self.best = self.best.min(makespan_so_far);
            return;
        }
        // Aggregate lower bound: remaining work cannot beat total capacity.
        let remaining_work: u64 = (0..n)
            .filter(|&i| finish[i].is_none())
            .map(|i| self.dag.wcet(VertexId::from_index(i)).ticks())
            .sum();
        let capacity_base: u64 = proc_free.iter().sum();
        let work_lb = (remaining_work + capacity_base).div_ceil(self.m as u64);
        if work_lb.max(makespan_so_far) >= self.best {
            return;
        }

        // Eligible vertices: unscheduled, all predecessors scheduled.
        // Branch in a deterministic order (by earliest start, then tail
        // descending) so good branches come first.
        let mut eligible: Vec<(u64, core::cmp::Reverse<u64>, usize)> = Vec::new();
        for i in 0..n {
            if finish[i].is_some() {
                continue;
            }
            let v = VertexId::from_index(i);
            let mut ready = 0u64;
            let mut ok = true;
            for &p in self.dag.predecessors(v) {
                match finish[p.index()] {
                    Some(f) => ready = ready.max(f),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let free = *proc_free.iter().min().expect("m > 0");
            let start = ready.max(free);
            // Per-vertex critical-path bound.
            if start + self.tails[i] >= self.best {
                continue;
            }
            eligible.push((start, core::cmp::Reverse(self.tails[i]), i));
        }
        eligible.sort_unstable();

        for (start, _, i) in eligible {
            let v = VertexId::from_index(i);
            let end = start + self.dag.wcet(v).ticks();
            if end >= self.best {
                continue; // the completed schedule would be no better
            }
            // Assign to the earliest-free processor (identical machines:
            // symmetric, so one representative suffices).
            let proc = (0..self.m).min_by_key(|&p| proc_free[p]).expect("m > 0");
            let saved_free = proc_free[proc];
            proc_free[proc] = end;
            finish[i] = Some(end);
            self.dfs(finish, proc_free, scheduled + 1, makespan_so_far.max(end));
            finish[i] = None;
            proc_free[proc] = saved_free;
            if self.exhausted {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{graham_upper_bound, list_schedule, makespan_lower_bound};
    use fedsched_dag::graph::DagBuilder;

    const BUDGET: u64 = 2_000_000;

    fn chain(wcets: &[u64]) -> Dag {
        let mut b = DagBuilder::new();
        let vs = b.add_vertices(wcets.iter().map(|&w| Duration::new(w)));
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    fn independent(wcets: &[u64]) -> Dag {
        let mut b = DagBuilder::new();
        b.add_vertices(wcets.iter().map(|&w| Duration::new(w)));
        b.build().unwrap()
    }

    #[test]
    fn chain_optimum_is_volume() {
        let dag = chain(&[3, 1, 4, 1, 5]);
        for m in 1..=3 {
            let opt = optimal_makespan(&dag, m, BUDGET);
            assert!(opt.is_exact());
            assert_eq!(opt.value(), dag.volume());
        }
    }

    #[test]
    fn independent_jobs_bin_packing() {
        // {5, 4, 3, 3, 3} on 2 processors: optimum 9 (5+4 | 3+3+3).
        let dag = independent(&[5, 4, 3, 3, 3]);
        let opt = optimal_makespan(&dag, 2, BUDGET);
        assert!(opt.is_exact());
        assert_eq!(opt.value(), Duration::new(9));
        // LS in list order: 5,4 then 3→(4-proc? ) — either way LS ≥ opt.
        assert!(list_schedule(&dag, 2).makespan() >= opt.value());
    }

    #[test]
    fn single_processor_is_volume() {
        let dag = independent(&[2, 7, 1]);
        let opt = optimal_makespan(&dag, 1, BUDGET);
        assert_eq!(opt.value(), Duration::new(10));
    }

    #[test]
    fn anomaly_instance_optimum_is_twelve() {
        let dag = crate::anomaly::classic_anomaly_dag();
        let opt = optimal_makespan(&dag, 3, BUDGET);
        assert!(opt.is_exact());
        assert_eq!(opt.value(), Duration::new(12));
    }

    #[test]
    fn ls_can_be_strictly_suboptimal() {
        // A case where plain list-order LS loses to the optimum:
        // jobs 1,1,2 with the long job last, 2 processors, plus a chain
        // gating. Simplest: {2, 2, 3} no edges, m=2: opt = 4 (3+? no:
        // 2+2 | 3 → 4); LS list order: P0:2, P1:2, then 3 at t=2 → 5.
        let dag = independent(&[2, 2, 3]);
        let opt = optimal_makespan(&dag, 2, BUDGET).value();
        assert_eq!(opt, Duration::new(4));
        let ls = list_schedule(&dag, 2).makespan();
        assert_eq!(ls, Duration::new(5));
        assert!(ls > opt);
    }

    #[test]
    fn optimum_within_analytic_bounds() {
        let dag = crate::anomaly::classic_anomaly_dag();
        for m in 1..=4 {
            let opt = optimal_makespan(&dag, m, BUDGET).value();
            assert!(opt >= makespan_lower_bound(&dag, m));
            assert!(opt <= graham_upper_bound(&dag, m));
        }
    }

    #[test]
    fn empty_dag() {
        let dag = DagBuilder::new().build().unwrap();
        assert_eq!(
            optimal_makespan(&dag, 2, BUDGET),
            OptimalMakespan::Exact(Duration::ZERO)
        );
    }

    #[test]
    fn budget_exhaustion_returns_incumbent_upper_bound() {
        // A dense instance with a 1-node budget: falls back to the LS
        // incumbent, which still satisfies Graham's bound.
        let dag = independent(&[7, 3, 9, 4, 6, 2, 8, 5]);
        let r = optimal_makespan(&dag, 3, 1);
        assert!(!r.is_exact());
        assert!(r.value() <= graham_upper_bound(&dag, 3));
        // And the exact run can only improve on it.
        let exact = optimal_makespan(&dag, 3, BUDGET);
        assert!(exact.is_exact());
        assert!(exact.value() <= r.value());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = optimal_makespan(&independent(&[1]), 0, 10);
    }
}
