//! A reusable, allocation-free workspace for the List-Scheduling kernel.
//!
//! [`crate::list::list_schedule_ranked`] is the hot loop of every analysis
//! in this workspace: `MINPROCS` runs it once per candidate cluster size,
//! FEDCONS once per admitted task, the simulator once per watched dag-job
//! release. The original kernel allocated three `BinaryHeap`s, a
//! predecessor-counter `Vec` and an entry `Vec` on *every* call;
//! [`LsWorkspace`] hoists all of that state into one arena that is created
//! once (per analysis, or per pool thread via [`with_thread_workspace`])
//! and reused, so a warmed-up kernel run performs no heap allocation at
//! all on the makespan-only path and exactly one (the returned entry
//! vector) when a [`TemplateSchedule`] is materialised.
//!
//! # Equivalence with the heap-based kernel
//!
//! The produced schedules are bit-for-bit identical to the retired
//! `BinaryHeap` implementation. All three queues order tuples whose second
//! component is unique — `(rank, vertex)`, `(free_at, processor)`,
//! `(finish, vertex)` — so each queue's pop sequence is a *total* order
//! and any correct min-priority queue reproduces it exactly. The ready set
//! exploits this: `prepare` sorts the vertices once by `(rank, vertex)`
//! into a priority permutation, after which "pop the minimum-rank
//! available vertex" becomes "pop the lowest set bit" of a bitset indexed
//! by priority position.

use std::cell::RefCell;

use fedsched_dag::graph::{Dag, VertexId};
use fedsched_dag::time::Duration;

use crate::schedule::{ScheduleEntry, TemplateSchedule};

/// Reusable state for the List-Scheduling kernel; see the module docs.
///
/// A workspace is prepared for one priority assignment with
/// [`LsWorkspace::prepare`] and then runs any number of schedules under it
/// (different processor counts, different execution-time vectors) without
/// allocating.
#[derive(Debug, Default)]
pub struct LsWorkspace {
    /// Priority position → vertex: the vertices sorted by `(rank, index)`.
    order: Vec<u32>,
    /// Vertex → priority position; inverse of `order`.
    position: Vec<u32>,
    /// The ranks `prepare` was last called with, for memoized re-prepares.
    prepared_ranks: Vec<u64>,
    /// Unscheduled-predecessor counters, reset per run.
    remaining_preds: Vec<u32>,
    /// Bit-packed set of available jobs, indexed by priority position.
    ready: Vec<u64>,
    /// Number of bits set in `ready`.
    ready_count: usize,
    /// Lowest word of `ready` that may contain a set bit.
    ready_hint: usize,
    /// Min-heap of `(free_at, processor)`, replacing a `BinaryHeap`.
    procs: Vec<(u64, u32)>,
    /// Min-heap of `(finish, vertex)`, replacing a `BinaryHeap`.
    running: Vec<(u64, u32)>,
    /// Entry buffer reused across runs; cloned once per template.
    entries: Vec<ScheduleEntry>,
    /// Vertex count of the prepared priority assignment.
    n: usize,
}

impl LsWorkspace {
    /// An empty workspace; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> LsWorkspace {
        LsWorkspace::default()
    }

    /// Installs the priority assignment `ranks` (one rank per vertex;
    /// smaller = scheduled earlier, ties toward the smaller vertex index).
    ///
    /// Re-preparing with ranks equal to the previous call is free: the
    /// sorted priority permutation only depends on the rank values, so it
    /// is memoized.
    pub fn prepare(&mut self, ranks: &[u64]) {
        let n = ranks.len();
        if self.n == n && self.prepared_ranks == ranks {
            return;
        }
        self.n = n;
        self.prepared_ranks.clear();
        self.prepared_ranks.extend_from_slice(ranks);
        self.order.clear();
        self.order.extend(0..n as u32);
        let (order, prepared) = (&mut self.order, &self.prepared_ranks);
        order.sort_unstable_by_key(|&v| (prepared[v as usize], v));
        self.position.clear();
        self.position.resize(n, 0);
        for (pos, &v) in self.order.iter().enumerate() {
            self.position[v as usize] = pos as u32;
        }
    }

    /// Runs the kernel and materialises the schedule as a
    /// [`TemplateSchedule`] (one allocation: the returned entry vector).
    ///
    /// # Panics
    ///
    /// Panics if `processors` is zero or if `dag`/`times` do not match the
    /// prepared vertex count.
    #[must_use]
    pub fn template(&mut self, dag: &Dag, processors: u32, times: &[Duration]) -> TemplateSchedule {
        let _ = self.run(dag, processors, times);
        TemplateSchedule::from_entries(processors, self.entries.clone())
    }

    /// Runs the kernel and returns only the makespan — the decision-only
    /// path, allocation-free once the workspace is warm.
    ///
    /// # Panics
    ///
    /// Panics if `processors` is zero or if `dag`/`times` do not match the
    /// prepared vertex count.
    pub fn makespan(&mut self, dag: &Dag, processors: u32, times: &[Duration]) -> Duration {
        self.run(dag, processors, times)
    }

    /// The core work-conserving loop. Fills `self.entries` and returns the
    /// makespan.
    fn run(&mut self, dag: &Dag, processors: u32, times: &[Duration]) -> Duration {
        assert!(
            processors > 0,
            "list scheduling needs at least one processor"
        );
        let n = self.n;
        assert_eq!(dag.vertex_count(), n, "one rank per vertex");
        assert_eq!(times.len(), n, "one execution time per vertex");

        self.remaining_preds.clear();
        self.remaining_preds
            .extend(dag.vertices().map(|v| dag.in_degree(v) as u32));
        self.ready.clear();
        self.ready.resize(n.div_ceil(64), 0);
        self.ready_count = 0;
        self.ready_hint = 0;
        for v in 0..n {
            if self.remaining_preds[v] == 0 {
                self.ready_insert(self.position[v] as usize);
            }
        }
        self.procs.clear();
        // All keys equal: the vector is already a valid min-heap.
        self.procs.extend((0..processors).map(|p| (0u64, p)));
        self.running.clear();
        self.entries.clear();
        self.entries.resize(
            n,
            ScheduleEntry {
                processor: 0,
                start: Duration::ZERO,
                finish: Duration::ZERO,
            },
        );

        let mut now = 0u64;
        let mut scheduled = 0usize;
        let mut makespan = 0u64;
        while scheduled < n {
            // Retire every job finishing at or before `now`.
            while let Some(&(f, v)) = self.running.first() {
                if f > now {
                    break;
                }
                heap_pop(&mut self.running);
                for &s in dag.successors(VertexId::from_index(v as usize)) {
                    let si = s.index();
                    self.remaining_preds[si] -= 1;
                    if self.remaining_preds[si] == 0 {
                        self.ready_insert(self.position[si] as usize);
                    }
                }
            }
            // Start available jobs on idle processors (work conservation).
            while let Some(&(free_at, _)) = self.procs.first() {
                if free_at > now || self.ready_count == 0 {
                    break;
                }
                let (_, p) = heap_pop(&mut self.procs).expect("peeked");
                let pos = self.ready_pop_min();
                let vi = self.order[pos] as usize;
                let finish = now + times[vi].ticks();
                self.entries[vi] = ScheduleEntry {
                    processor: p,
                    start: Duration::new(now),
                    finish: Duration::new(finish),
                };
                scheduled += 1;
                makespan = makespan.max(finish);
                heap_push(&mut self.running, (finish, vi as u32));
                heap_push(&mut self.procs, (finish, p));
            }
            if scheduled == n {
                break;
            }
            // Advance to the next job completion (the only event that can
            // free a processor or release new available jobs).
            now = self
                .running
                .first()
                .expect("jobs remain but nothing is running or available")
                .0;
        }
        Duration::new(makespan)
    }

    fn ready_insert(&mut self, pos: usize) {
        self.ready[pos / 64] |= 1u64 << (pos % 64);
        self.ready_count += 1;
        self.ready_hint = self.ready_hint.min(pos / 64);
    }

    /// Pops the lowest set priority position; caller checks `ready_count`.
    fn ready_pop_min(&mut self) -> usize {
        let mut w = self.ready_hint;
        while self.ready[w] == 0 {
            w += 1;
        }
        self.ready_hint = w;
        let bit = self.ready[w].trailing_zeros() as usize;
        self.ready[w] &= self.ready[w] - 1;
        self.ready_count -= 1;
        w * 64 + bit
    }
}

/// Sift-up push onto a binary min-heap stored in a plain `Vec`.
fn heap_push(heap: &mut Vec<(u64, u32)>, item: (u64, u32)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent] <= heap[i] {
            break;
        }
        heap.swap(parent, i);
        i = parent;
    }
}

/// Pops the minimum of a binary min-heap stored in a plain `Vec`.
fn heap_pop(heap: &mut Vec<(u64, u32)>) -> Option<(u64, u32)> {
    if heap.is_empty() {
        return None;
    }
    let min = heap.swap_remove(0);
    let len = heap.len();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < len && heap[l] < heap[smallest] {
            smallest = l;
        }
        if r < len && heap[r] < heap[smallest] {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
    Some(min)
}

thread_local! {
    static WORKSPACE: RefCell<LsWorkspace> = RefCell::new(LsWorkspace::new());
}

/// Runs `f` with this thread's shared [`LsWorkspace`].
///
/// Every thread — the caller of an analysis as much as each
/// `fedsched-parallel` pool worker — owns one lazily created workspace, so
/// the public `list_schedule*` entry points stay allocation-free in steady
/// state without any signature change.
///
/// # Panics
///
/// Panics if `f` itself re-enters `with_thread_workspace` (the workspace
/// is a single mutable resource per thread).
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut LsWorkspace) -> R) -> R {
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_arbitrary_pushes() {
        let mut heap = Vec::new();
        for item in [(5u64, 1u32), (3, 2), (5, 0), (1, 9), (3, 1), (0, 4)] {
            heap_push(&mut heap, item);
        }
        let mut popped = Vec::new();
        while let Some(item) = heap_pop(&mut heap) {
            popped.push(item);
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn ready_set_pops_in_position_order() {
        let mut ws = LsWorkspace {
            ready: vec![0; 3],
            ..LsWorkspace::default()
        };
        for pos in [150, 3, 64, 0, 149] {
            ws.ready_insert(pos);
        }
        let mut popped = Vec::new();
        while ws.ready_count > 0 {
            popped.push(ws.ready_pop_min());
        }
        assert_eq!(popped, vec![0, 3, 64, 149, 150]);
    }

    #[test]
    fn prepare_is_memoized_and_permutation_is_rank_sorted() {
        let mut ws = LsWorkspace::new();
        ws.prepare(&[7, 7, 2, 9]);
        // Sorted by (rank, vertex): v2, v0, v1, v3.
        assert_eq!(ws.order, vec![2, 0, 1, 3]);
        assert_eq!(ws.position, vec![1, 2, 0, 3]);
        let before = ws.order.clone();
        ws.prepare(&[7, 7, 2, 9]);
        assert_eq!(ws.order, before);
        ws.prepare(&[0, 1, 2, 3]);
        assert_eq!(ws.order, vec![0, 1, 2, 3]);
    }
}
