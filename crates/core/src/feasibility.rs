//! Necessary feasibility conditions and the demand *load* of a system.
//!
//! The speedup definitions of the paper compare against an "optimal
//! clairvoyant federated scheduling algorithm", which is not computable.
//! What *is* computable are necessary conditions that any scheduler —
//! clairvoyant or not — must satisfy; they bound the optimum from below and
//! let the experiments measure empirical speedup factors soundly (every
//! measured factor is an upper bound on the true one, so the Lemma/Theorem
//! inequalities stay falsifiable).

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::edf::demand_horizon;
use fedsched_dag::rational::Rational;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::time::Duration;

/// The *load* of the system's sequential demand:
///
/// ```text
/// LOAD(τ) = max_{t > 0}  Σ_i dbf(τ_i, t) / t
/// ```
///
/// computed over deadline points up to the demand horizon, visiting at most
/// `max_points` of them. Because every job really does need `vol_i` units of
/// work between release and deadline, `LOAD(τ) ≤ m` is necessary for
/// feasibility on `m` unit-speed processors (regardless of intra-task
/// parallelism).
///
/// Truncation is safe: the ratio at *any* prefix of deadline points is a
/// valid lower bound on the true load (and the result is always at least
/// `U_sum`), so exhausting `max_points` merely weakens the bound — it never
/// makes it wrong.
#[must_use]
pub fn demand_load(system: &TaskSystem, max_points: usize) -> Rational {
    let views: Vec<SequentialView> = system.iter().map(|(_, t)| SequentialView::of(t)).collect();
    if views.is_empty() {
        return Rational::ZERO;
    }
    let horizon = demand_horizon(&views);

    use core::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = views
        .iter()
        .enumerate()
        .map(|(i, v)| Reverse((v.deadline.ticks(), i)))
        .collect();
    let mut demand: u128 = 0;
    let mut best = Rational::ZERO;
    let mut spent = 0usize;
    while let Some(&Reverse((t, _))) = heap.peek() {
        if t > horizon.ticks() {
            break;
        }
        while let Some(&Reverse((t2, i))) = heap.peek() {
            if t2 != t {
                break;
            }
            heap.pop();
            demand += u128::from(views[i].wcet.ticks());
            if let Some(next) = t2.checked_add(views[i].period.ticks()) {
                heap.push(Reverse((next, i)));
            }
            spent += 1;
        }
        let ratio = Rational::new(
            i128::try_from(demand).expect("demand fits i128"),
            i128::from(t),
        );
        best = best.max(ratio);
        if spent >= max_points {
            break;
        }
    }
    // The long-run ratio tends to U_sum; include it (relevant when the
    // horizon cuts off before the utilization dominates).
    best.max(system.total_utilization())
}

/// The standard necessary feasibility conditions for `m` unit-speed
/// processors:
///
/// 1. `len_i ≤ D_i` for every task (chain feasibility);
/// 2. `U_sum(τ) ≤ m` (long-run capacity);
/// 3. `vol_i ≤ m · min(D_i, T_i)` for every task (window capacity).
///
/// Any system failing these is unschedulable by *every* algorithm, federated
/// or otherwise. (The sharper [`demand_load`] condition is separate because
/// it needs a computation budget.)
#[must_use]
pub fn necessary_feasible(system: &TaskSystem, m: u32) -> bool {
    let m_rat = Rational::from_integer(i128::from(m));
    system.all_chains_feasible()
        && system.total_utilization() <= m_rat
        && system.iter().all(|(_, t)| {
            Rational::from(t.volume().ticks())
                <= m_rat * Rational::from(t.deadline_period_min().ticks())
        })
}

/// The maximum demand/supply ratio of a *single* task scheduled alone:
/// `max(len_i / D_i, vol_i / (m · min(D_i, T_i)))`, the factor by which unit
/// processors are too slow for the task on an `m`-processor cluster.
///
/// Used by experiment E5: the optimal makespan of a DAG on `m` processors is
/// at least `max(len, vol/m)`, so the reciprocal of this ratio bounds the
/// clairvoyant speed advantage.
#[must_use]
pub fn isolation_pressure(len: Duration, vol: Duration, window: Duration, m: u32) -> Rational {
    let chain = Rational::ratio(len, window);
    let work = Rational::new(
        i128::from(vol.ticks()),
        i128::from(m) * i128::from(window.ticks()),
    );
    chain.max(work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::examples::{paper_example2, paper_figure1};
    use fedsched_dag::task::DagTask;

    fn seq(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    #[test]
    fn load_of_example2_is_n() {
        // Example 2: n unit jobs all due at t = 1 ⇒ LOAD = n. This is the
        // paper's unbounded-capacity-augmentation argument, quantified.
        for n in [1u32, 4, 16] {
            let sys = paper_example2(n);
            let load = demand_load(&sys, 1_000_000);
            assert_eq!(load, Rational::from_integer(i128::from(n)), "n = {n}");
        }
    }

    #[test]
    fn load_at_least_utilization() {
        let sys: TaskSystem = [paper_figure1()].into_iter().collect();
        let load = demand_load(&sys, 1_000_000);
        assert!(load >= sys.total_utilization());
        // Single low-density task: the peak is δ = 9/16 at t = D.
        assert_eq!(load, Rational::new(9, 16));
    }

    #[test]
    fn empty_system_has_zero_load() {
        assert_eq!(demand_load(&TaskSystem::new(), 10), Rational::ZERO);
    }

    #[test]
    fn necessary_conditions() {
        let sys: TaskSystem = [seq(2, 4, 8), seq(2, 4, 8)].into_iter().collect();
        assert!(necessary_feasible(&sys, 1));
        // Infeasible chain.
        let bad: TaskSystem = [seq(5, 4, 8)].into_iter().collect();
        assert!(!necessary_feasible(&bad, 8));
        // Over-utilized.
        let heavy: TaskSystem = (0..3).map(|_| seq(8, 8, 8)).collect();
        assert!(!necessary_feasible(&heavy, 2));
        assert!(necessary_feasible(&heavy, 3));
    }

    #[test]
    fn window_capacity_condition() {
        // vol = 6, min(D,T) = 2 ⇒ needs m ≥ 3 even with full parallelism.
        let mut b = fedsched_dag::graph::DagBuilder::new();
        b.add_vertices([2, 2, 2].map(Duration::new));
        let t = DagTask::new(b.build().unwrap(), Duration::new(2), Duration::new(4)).unwrap();
        let sys: TaskSystem = [t].into_iter().collect();
        assert!(!necessary_feasible(&sys, 2));
        assert!(necessary_feasible(&sys, 3));
    }

    #[test]
    fn isolation_pressure_picks_binding_constraint() {
        // len 6, vol 9, window 16.
        let p1 = isolation_pressure(Duration::new(6), Duration::new(9), Duration::new(16), 1);
        assert_eq!(p1, Rational::new(9, 16)); // work-bound binds on 1 proc
        let p4 = isolation_pressure(Duration::new(6), Duration::new(9), Duration::new(16), 4);
        assert_eq!(p4, Rational::new(6, 16)); // chain binds on 4 procs
    }

    #[test]
    fn truncation_still_lower_bounds() {
        // With a single point visited, the load is still a valid (weaker)
        // lower bound: at least U_sum, at most the untruncated value.
        let sys: TaskSystem = [seq(1, 2, 4), seq(1, 5, 6)].into_iter().collect();
        let truncated = demand_load(&sys, 1);
        let full = demand_load(&sys, 1_000_000);
        assert!(truncated >= sys.total_utilization());
        assert!(truncated <= full);
    }
}
