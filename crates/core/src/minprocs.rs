//! `MINPROCS` — the per-task processor sizing of paper Fig. 3.
//!
//! For a high-density constrained-deadline task, all jobs of one dag-job
//! must finish before the next is released (`D ≤ T`), so scheduling the task
//! on a dedicated cluster reduces to a makespan problem: find the smallest
//! `μ` for which Graham's List Scheduling finishes the DAG within `D`.
//!
//! # Bound-guided search
//!
//! The literal Fig. 3 sweep tries every `μ ∈ [⌈δ⌉, m_r]`. This module
//! narrows that window with Graham's two bounds before running a single LS
//! simulation:
//!
//! * **Bottom:** `makespan_lower_bound(G, μ) = max(len, ⌈vol/μ⌉) ≤ D` is
//!   necessary, and holds exactly for `μ ≥ ⌈vol/D⌉ = ⌈δ⌉` — the paper's own
//!   starting point, so the bottom of the window is already optimal.
//! * **Top:** `graham_upper_bound(G, μ) ≤ D` is *sufficient* for LS to fit,
//!   and [`graham_bracket`](fedsched_graham::list::graham_bracket) computes the smallest such `μ` in closed form.
//!   No candidate above `min(bracket, vertex_count)` can be the minimal
//!   answer, because that candidate itself is guaranteed to pass (with
//!   `μ = vertex_count` every vertex starts at its earliest start time and
//!   the makespan equals the longest chain). Everything above is recorded
//!   in [`AnalysisProbe::ls_runs_pruned`] without an LS run.
//!
//! Inside the surviving window the search must still return the *smallest*
//! passing `μ`: the LS makespan is **not** monotone in `μ` (Graham's
//! timing anomalies), so binary search is unsound. Candidates are evaluated
//! in geometrically growing waves (1, 2, 4, 8, 8, …); each wave fans out
//! through [`fedsched_parallel::par_map`] and the first wave containing a
//! pass answers with its smallest passing member. The wave schedule is
//! fixed, so the exact set of LS runs — and every probe counter — is
//! byte-identical at any pool width.

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_dag::task::DagTask;
use fedsched_graham::list::{
    graham_bracket_from_lengths, list_makespan_ranked, list_schedule_ranked, PriorityPolicy,
};
use fedsched_graham::schedule::TemplateSchedule;

/// A successful `MINPROCS` sizing: the processor count and the frozen
/// template schedule `σ_i` that witnesses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinProcsResult {
    /// The minimum processor count found (`μ` in Fig. 3).
    pub processors: u32,
    /// The LS schedule of the task's DAG on `processors` processors,
    /// used as the run-time lookup table.
    pub template: TemplateSchedule,
}

/// Upper limit on the number of candidates evaluated speculatively per
/// wave. The schedule 1, 2, 4, 8, 8, … keeps the first probe as cheap as
/// the sequential early-exit loop (windows that pass at `⌈δ⌉` run exactly
/// one LS) while bounding the overshoot on late passes to one wave.
pub const SPECULATION_WAVE_LIMIT: u32 = 8;

/// The surviving candidate window of one `MINPROCS` search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CandidateWindow {
    /// Smallest candidate: `max(1, ⌈δ⌉)`, the first `μ` whose makespan
    /// lower bound fits within the deadline.
    lo: u32,
    /// Largest candidate worth an LS run.
    hi: u32,
    /// `true` when `hi` carries a pass certificate (`graham_upper_bound ≤ D`
    /// or `hi = vertex_count`), i.e. when the cap was not imposed by the
    /// caller's `available` budget.
    certified: bool,
    /// Candidates of `[lo, available]` above `hi`, excluded by the bounds
    /// without an LS run.
    pruned: u64,
}

/// Computes the bound-guided window for `task` on `available` processors,
/// or `None` when `[⌈δ⌉, available]` is already empty. The caller must have
/// checked chain feasibility.
fn candidate_window(task: &DagTask, available: u32) -> Option<CandidateWindow> {
    debug_assert!(task.is_chain_feasible());
    let lo = task.min_processors_lower_bound().max(1);
    if lo > available {
        return None;
    }
    let vertices = u32::try_from(task.dag().vertex_count())
        .unwrap_or(u32::MAX)
        .max(1);
    // The task caches its volume and chain length, so the bracket costs
    // constant time here — no chain dynamic program per sizing.
    let bracket =
        graham_bracket_from_lengths(task.volume(), task.longest_chain_length(), task.deadline());
    let cap = match bracket {
        Some(bracket) => bracket.min(vertices),
        None => vertices,
    }
    // `cap ≥ lo` always holds (a certified pass cannot sit below the lower
    // bound); the clamp guards degenerate arithmetic only.
    .max(lo);
    if cap <= available {
        Some(CandidateWindow {
            lo,
            hi: cap,
            certified: true,
            pruned: u64::from(available - cap),
        })
    } else {
        Some(CandidateWindow {
            lo,
            hi: available,
            certified: false,
            pruned: 0,
        })
    }
}

/// Sweeps `window` in geometric waves, returning the smallest passing `μ`
/// and its template. Ranks are computed once per task (not per candidate)
/// and every wave wider than one candidate fans out through the parallel
/// façade; a one-candidate wave runs inline on the caller's kernel
/// workspace without building a candidate vector. The accounting in
/// `probe` is independent of the pool width.
fn sweep_window(
    task: &DagTask,
    window: CandidateWindow,
    policy: PriorityPolicy,
    probe: &mut AnalysisProbe,
) -> Option<(u32, TemplateSchedule)> {
    let dag = task.dag();
    let deadline = task.deadline();
    let ranks = policy.ranks(dag);
    let times = dag.wcets();
    let mut next = window.lo;
    let mut wave = 1u32;
    while next <= window.hi {
        let last = next.saturating_add(wave - 1).min(window.hi);
        let count = u64::from(last - next) + 1;
        probe.ls_runs = probe.ls_runs.saturating_add(count);
        probe.makespan_evaluations = probe.makespan_evaluations.saturating_add(count);
        if count == 1 {
            let template = list_schedule_ranked(dag, next, &ranks, times);
            if template.makespan() <= deadline {
                return Some((next, template));
            }
        } else {
            probe.par_tasks_dispatched = probe.par_tasks_dispatched.saturating_add(count);
            let candidates: Vec<u32> = (next..=last).collect();
            let templates = fedsched_parallel::par_map(&candidates, |&mu| {
                list_schedule_ranked(dag, mu, &ranks, times)
            });
            for (&mu, template) in candidates.iter().zip(templates) {
                if template.makespan() <= deadline {
                    return Some((mu, template));
                }
            }
        }
        next = match last.checked_add(1) {
            Some(n) => n,
            None => break,
        };
        wave = (wave * 2).min(SPECULATION_WAVE_LIMIT);
    }
    debug_assert!(!window.certified, "a certified window always passes");
    None
}

/// The decision-only twin of [`sweep_window`]: identical wave schedule and
/// probe accounting, but each candidate runs the allocation-free
/// makespan-only kernel path and no template is materialised. Used by the
/// fit test on windows truncated by `available`, where only the verdict
/// matters.
fn sweep_window_fits(
    task: &DagTask,
    window: CandidateWindow,
    policy: PriorityPolicy,
    probe: &mut AnalysisProbe,
) -> bool {
    let dag = task.dag();
    let deadline = task.deadline();
    let ranks = policy.ranks(dag);
    let times = dag.wcets();
    let mut next = window.lo;
    let mut wave = 1u32;
    while next <= window.hi {
        let last = next.saturating_add(wave - 1).min(window.hi);
        let count = u64::from(last - next) + 1;
        probe.ls_runs = probe.ls_runs.saturating_add(count);
        probe.makespan_evaluations = probe.makespan_evaluations.saturating_add(count);
        if count == 1 {
            if list_makespan_ranked(dag, next, &ranks, times) <= deadline {
                return true;
            }
        } else {
            probe.par_tasks_dispatched = probe.par_tasks_dispatched.saturating_add(count);
            let candidates: Vec<u32> = (next..=last).collect();
            let makespans = fedsched_parallel::par_map(&candidates, |&mu| {
                list_makespan_ranked(dag, mu, &ranks, times)
            });
            if makespans.iter().any(|&makespan| makespan <= deadline) {
                return true;
            }
        }
        next = match last.checked_add(1) {
            Some(n) => n,
            None => break,
        };
        wave = (wave * 2).min(SPECULATION_WAVE_LIMIT);
    }
    debug_assert!(!window.certified, "a certified window always passes");
    false
}

/// `MINPROCS(τ_i, m_r)` (paper Fig. 3): the minimum `μ ∈ [⌈δ_i⌉, m_r]` for
/// which List Scheduling produces a schedule of `G_i` with makespan `≤ D_i`,
/// together with that schedule. Returns `None` (the paper's `∞`) if no
/// `μ ≤ available` suffices.
///
/// Three deviations from the literal pseudocode, all answer-preserving:
///
/// * if `len_i > D_i`, no processor count can help (the chain alone misses
///   the deadline), so we fail fast without running LS;
/// * the search starts at `max(1, ⌈δ_i⌉)` — `⌈δ_i⌉` exactly as in Fig. 3,
///   clamped to one processor for degenerate inputs;
/// * the top of the window is bracketed by [`graham_bracket`](fedsched_graham::list::graham_bracket) and the
///   vertex count (see the module docs): candidates above the bracket are
///   counted in [`AnalysisProbe::ls_runs_pruned`] instead of being run.
///   Since the bracket candidate is *guaranteed* to pass, the minimal
///   passing `μ` is never above it and the returned sizing — and its
///   template — is identical to the full Fig. 3 sweep.
///
/// # Examples
///
/// ```
/// use fedsched_core::minprocs::min_procs;
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_graham::list::PriorityPolicy;
///
/// let tau1 = paper_figure1(); // low-density, but MINPROCS still sizes it
/// let r = min_procs(&tau1, 4, PriorityPolicy::ListOrder).expect("fits");
/// assert_eq!(r.processors, 1); // vol 9 ≤ D 16: one processor suffices
/// ```
#[must_use]
pub fn min_procs(task: &DagTask, available: u32, policy: PriorityPolicy) -> Option<MinProcsResult> {
    let mut scratch = AnalysisProbe::default();
    min_procs_probed(task, available, policy, &mut scratch)
}

/// [`min_procs`] with cost accounting: every candidate `μ` tried costs one
/// List-Scheduling simulation and one makespan-versus-deadline evaluation,
/// every candidate excluded by the Graham bounds costs one
/// `ls_runs_pruned` tick, and wave fan-outs are recorded in
/// `par_tasks_dispatched` — all independent of the pool width.
#[must_use]
pub fn min_procs_probed(
    task: &DagTask,
    available: u32,
    policy: PriorityPolicy,
    probe: &mut AnalysisProbe,
) -> Option<MinProcsResult> {
    if !task.is_chain_feasible() {
        return None;
    }
    let window = candidate_window(task, available)?;
    probe.ls_runs_pruned = probe.ls_runs_pruned.saturating_add(window.pruned);
    sweep_window(task, window, policy, probe).map(|(processors, template)| MinProcsResult {
        processors,
        template,
    })
}

/// The feasibility verdict of [`min_procs`] without the sizing: `true` iff
/// `min_procs(task, available, policy)` would return `Some`.
///
/// The decision problem is strictly cheaper than the sizing problem: when
/// the bound-guided window is *certified* — its top candidate carries a
/// `graham_upper_bound ≤ D` (or `μ = vertex_count`) pass certificate within
/// the `available` budget — the verdict is `true` with **zero** LS runs,
/// and the whole window is recorded as pruned. Only windows truncated by
/// `available` (where acceptance is genuinely open) are swept. Speed-search
/// drivers (E5, `required_speed`) probe acceptance hundreds of times per
/// task and never look at the template, so they use this entry point.
#[must_use]
pub fn min_procs_fits(task: &DagTask, available: u32, policy: PriorityPolicy) -> bool {
    let mut scratch = AnalysisProbe::default();
    min_procs_fits_probed(task, available, policy, &mut scratch)
}

/// [`min_procs_fits`] with cost accounting (see [`min_procs_probed`]).
#[must_use]
pub fn min_procs_fits_probed(
    task: &DagTask,
    available: u32,
    policy: PriorityPolicy,
    probe: &mut AnalysisProbe,
) -> bool {
    if !task.is_chain_feasible() {
        return false;
    }
    let Some(window) = candidate_window(task, available) else {
        return false;
    };
    if window.certified {
        // Certificate accept: some μ ≤ available is guaranteed to pass, and
        // the verdict does not need to know which one is minimal.
        let span = u64::from(window.hi - window.lo) + 1;
        probe.ls_runs_pruned = probe
            .ls_runs_pruned
            .saturating_add(span.saturating_add(window.pruned));
        return true;
    }
    probe.ls_runs_pruned = probe.ls_runs_pruned.saturating_add(window.pruned);
    sweep_window_fits(task, window, policy, probe)
}

/// The *intrinsic* sizing `μ*_i` of a task: [`min_procs`] with the cap set
/// to the task's vertex count, which is always enough.
///
/// With at least as many processors as vertices, List Scheduling never makes
/// a ready vertex wait, so every vertex starts at its earliest start time
/// and the makespan equals the longest chain — which fits within `D_i`
/// whenever the task is chain-feasible, under *every* priority policy.
/// Hence the search is exhaustive: this returns `Some` iff the task is
/// chain-feasible, and the result is independent of any platform-size cap
/// `m_r ≥ μ*_i`. Online admission control relies on exactly that
/// independence to size clusters without knowing the residual platform.
///
/// The candidate window is additionally capped by the [`graham_bracket`](fedsched_graham::list::graham_bracket)
/// certificate, so wide DAGs no longer sweep toward the vertex count: the
/// search stops at the first `μ` Graham's bound already proves sufficient.
#[must_use]
pub fn intrinsic_min_procs(task: &DagTask, policy: PriorityPolicy) -> Option<MinProcsResult> {
    let mut scratch = AnalysisProbe::default();
    intrinsic_min_procs_probed(task, policy, &mut scratch)
}

/// [`intrinsic_min_procs`] with cost accounting (see [`min_procs_probed`]).
#[must_use]
pub fn intrinsic_min_procs_probed(
    task: &DagTask,
    policy: PriorityPolicy,
    probe: &mut AnalysisProbe,
) -> Option<MinProcsResult> {
    let cap = u32::try_from(task.dag().vertex_count()).unwrap_or(u32::MAX);
    min_procs_probed(task, cap.max(1), policy, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::examples::paper_figure1;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::time::Duration;
    use fedsched_graham::list::makespan_lower_bound;

    /// k independent vertices of WCET w, deadline d, period t.
    fn parallel_task(k: usize, w: u64, d: u64, t: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(w), k));
        DagTask::new(b.build().unwrap(), Duration::new(d), Duration::new(t)).unwrap()
    }

    #[test]
    fn wide_task_needs_many_processors() {
        // 6 unit jobs, D = 2: needs 3 processors.
        let t = parallel_task(6, 1, 2, 10);
        let r = min_procs(&t, 8, PriorityPolicy::ListOrder).unwrap();
        assert_eq!(r.processors, 3);
        assert!(r.template.makespan() <= t.deadline());
        r.template.validate(t.dag()).unwrap();
    }

    #[test]
    fn search_starts_at_density_ceiling() {
        // δ = 6/2 = 3 ⇒ the result can never be below 3, and here equals it.
        let t = parallel_task(6, 1, 2, 10);
        assert_eq!(t.min_processors_lower_bound(), 3);
    }

    #[test]
    fn fails_when_available_too_small() {
        let t = parallel_task(6, 1, 2, 10);
        assert_eq!(min_procs(&t, 2, PriorityPolicy::ListOrder), None);
    }

    #[test]
    fn fails_fast_on_infeasible_chain() {
        // Chain of length 5 with D = 4: hopeless on any cluster size.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let t = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        assert_eq!(min_procs(&t, 100, PriorityPolicy::ListOrder), None);
    }

    #[test]
    fn sequential_low_density_task_takes_one_processor() {
        let t = paper_figure1();
        let r = min_procs(&t, 4, PriorityPolicy::ListOrder).unwrap();
        assert_eq!(r.processors, 1);
        assert_eq!(r.template.makespan(), t.volume());
    }

    #[test]
    fn result_is_minimal() {
        // Check minimality by re-running LS on fewer processors.
        let t = parallel_task(7, 2, 6, 10); // vol 14, D 6 ⇒ ⌈14/6⌉ = 3
        let r = min_procs(&t, 10, PriorityPolicy::ListOrder).unwrap();
        for mu in 1..r.processors {
            let s = fedsched_graham::list::list_schedule(t.dag(), mu);
            assert!(s.makespan() > t.deadline(), "μ = {mu} should not fit");
        }
    }

    #[test]
    fn intrinsic_sizing_matches_uncapped_search() {
        let t = parallel_task(6, 1, 2, 10);
        let intrinsic = intrinsic_min_procs(&t, PriorityPolicy::ListOrder).unwrap();
        let capped = min_procs(&t, 1_000, PriorityPolicy::ListOrder).unwrap();
        assert_eq!(intrinsic.processors, capped.processors);
        assert!(intrinsic.processors <= t.dag().vertex_count() as u32);
    }

    #[test]
    fn intrinsic_sizing_fails_only_on_infeasible_chains() {
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let t = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        assert_eq!(intrinsic_min_procs(&t, PriorityPolicy::ListOrder), None);
        let ok = parallel_task(4, 1, 1, 4);
        assert!(intrinsic_min_procs(&ok, PriorityPolicy::CriticalPathFirst).is_some());
    }

    #[test]
    fn probe_counts_one_ls_run_per_candidate_mu() {
        // 6 unit jobs, D = 2: lower bound ⌈6/2⌉ = 3 fits on the first try.
        let t = parallel_task(6, 1, 2, 10);
        let mut probe = AnalysisProbe::default();
        let r = min_procs_probed(&t, 8, PriorityPolicy::ListOrder, &mut probe).unwrap();
        assert_eq!(r.processors, 3);
        assert_eq!(probe.ls_runs, 1);
        assert_eq!(probe.makespan_evaluations, 1);

        // A failing search tries every μ in [lower bound, available].
        let mut probe = AnalysisProbe::default();
        assert!(min_procs_probed(&t, 2, PriorityPolicy::ListOrder, &mut probe).is_none());
        assert_eq!(probe.ls_runs, 0, "search space [3, 2] is empty");
        assert_eq!(probe.ls_runs_pruned, 0, "an empty window prunes nothing");

        // An infeasible chain fails before any LS run.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let infeasible =
            DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        let mut probe = AnalysisProbe::default();
        assert!(
            min_procs_probed(&infeasible, 100, PriorityPolicy::ListOrder, &mut probe).is_none()
        );
        assert_eq!(probe.ls_runs, 0);
    }

    #[test]
    fn bound_pruning_skips_exactly_the_claimed_candidates() {
        // 6 unit jobs, D = 2: vol 6, len 1 ⇒ lo = ⌈6/2⌉ = 3 and the Graham
        // bracket is ⌈(6−1)/(2−1)⌉ = 5 (< vertex count 6). Against 8
        // available processors the literal Fig. 3 window is [3, 8]; the
        // bounds cut it to [3, 5], pruning exactly candidates {6, 7, 8}.
        // μ = 3 passes on the first wave, so exactly one LS runs.
        let t = parallel_task(6, 1, 2, 10);
        let mut probe = AnalysisProbe::default();
        let r = min_procs_probed(&t, 8, PriorityPolicy::ListOrder, &mut probe).unwrap();
        assert_eq!(r.processors, 3);
        assert_eq!(probe.ls_runs, 1);
        assert_eq!(probe.ls_runs_pruned, 3, "candidates 6, 7, 8 are pruned");
        assert_eq!(
            probe.par_tasks_dispatched, 0,
            "a one-candidate wave runs inline"
        );

        // The same task with available exactly at the bracket: nothing to
        // prune above the top, identical answer.
        let mut probe = AnalysisProbe::default();
        let r = min_procs_probed(&t, 5, PriorityPolicy::ListOrder, &mut probe).unwrap();
        assert_eq!(r.processors, 3);
        assert_eq!(probe.ls_runs_pruned, 0);
    }

    #[test]
    fn wave_sweep_returns_minimum_passing_candidate() {
        // Two unit-cost independent vertices a1(3), a2(3) plus a chain
        // c1(2) → c2(2) → c3(2): vol 12, len 6, D 7 ⇒ lo = ⌈12/7⌉ = 2,
        // bracket ⌈(12−6)/(7−6)⌉ = 6 capped by vertex count 5. Hand-run of
        // ListOrder LS: μ = 2 finishes at 9 (fail), μ = 3 at 6 (pass).
        // Waves are {2} then {3, 4}: three LS runs, answer μ = 3 even
        // though μ = 4 was evaluated speculatively in the same wave.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([3, 3, 2, 2, 2].map(Duration::new));
        b.add_edge(v[2], v[3]).unwrap();
        b.add_edge(v[3], v[4]).unwrap();
        let t = DagTask::new(b.build().unwrap(), Duration::new(7), Duration::new(10)).unwrap();
        let mut probe = AnalysisProbe::default();
        let r = min_procs_probed(&t, 10, PriorityPolicy::ListOrder, &mut probe).unwrap();
        assert_eq!(r.processors, 3, "smallest passing μ, not just any pass");
        assert_eq!(probe.ls_runs, 3, "waves {{2}} and {{3, 4}}");
        assert_eq!(probe.ls_runs_pruned, 5, "candidates 6..=10 never run");
        assert_eq!(
            probe.par_tasks_dispatched, 2,
            "the two-candidate wave fans out"
        );
        // Cross-check minimality the expensive way.
        let s2 = fedsched_graham::list::list_schedule(t.dag(), 2);
        assert!(s2.makespan() > t.deadline());
    }

    #[test]
    fn fits_verdict_always_matches_full_sizing() {
        let tasks = [
            parallel_task(6, 1, 2, 10),
            parallel_task(7, 2, 6, 10),
            parallel_task(4, 1, 1, 4),
            paper_figure1(),
        ];
        for t in &tasks {
            for available in 0..=12u32 {
                for policy in [PriorityPolicy::ListOrder, PriorityPolicy::CriticalPathFirst] {
                    assert_eq!(
                        min_procs_fits(t, available, policy),
                        min_procs(t, available, policy).is_some(),
                        "available = {available}"
                    );
                }
            }
        }
    }

    #[test]
    fn fits_accepts_certified_windows_without_ls_runs() {
        // 6 unit jobs, D = 2, 8 available: the window [3, 5] is certified
        // (bracket 5 ≤ 8), so the verdict needs no LS at all and the whole
        // Fig. 3 window [3, 8] is pruned.
        let t = parallel_task(6, 1, 2, 10);
        let mut probe = AnalysisProbe::default();
        assert!(min_procs_fits_probed(
            &t,
            8,
            PriorityPolicy::ListOrder,
            &mut probe
        ));
        assert_eq!(probe.ls_runs, 0, "certificate accept");
        assert_eq!(probe.ls_runs_pruned, 6, "all of [3, 8] decided by bounds");

        // Truncated window: available = 4 < bracket 5 ⇒ acceptance is open
        // and the sweep must actually run ({3} passes immediately).
        let mut probe = AnalysisProbe::default();
        assert!(min_procs_fits_probed(
            &t,
            4,
            PriorityPolicy::ListOrder,
            &mut probe
        ));
        assert_eq!(probe.ls_runs, 1);

        // Certificate reject: empty window costs nothing.
        let mut probe = AnalysisProbe::default();
        assert!(!min_procs_fits_probed(
            &t,
            2,
            PriorityPolicy::ListOrder,
            &mut probe
        ));
        assert_eq!(probe.ls_runs, 0);
        assert_eq!(probe.ls_runs_pruned, 0);
    }

    #[test]
    fn template_never_beats_lower_bound() {
        let t = parallel_task(5, 3, 9, 12);
        let r = min_procs(&t, 6, PriorityPolicy::CriticalPathFirst).unwrap();
        assert!(r.template.makespan() >= makespan_lower_bound(t.dag(), r.processors));
    }

    #[test]
    fn bound_guided_search_agrees_with_literal_sweep() {
        // Oracle: the unpruned, unhoisted Fig. 3 loop, exactly as seeded.
        fn literal_sweep(
            task: &DagTask,
            available: u32,
            policy: PriorityPolicy,
        ) -> Option<MinProcsResult> {
            if !task.is_chain_feasible() {
                return None;
            }
            let start = task.min_processors_lower_bound().max(1);
            for mu in start..=available {
                let template = fedsched_graham::list::list_schedule_with(task.dag(), mu, policy);
                if template.makespan() <= task.deadline() {
                    return Some(MinProcsResult {
                        processors: mu,
                        template,
                    });
                }
            }
            None
        }

        let mut b = DagBuilder::new();
        let v = b.add_vertices([3, 3, 2, 2, 2].map(Duration::new));
        b.add_edge(v[2], v[3]).unwrap();
        b.add_edge(v[3], v[4]).unwrap();
        let fork = DagTask::new(b.build().unwrap(), Duration::new(7), Duration::new(10)).unwrap();
        let tasks = [
            parallel_task(6, 1, 2, 10),
            parallel_task(7, 2, 6, 10),
            parallel_task(9, 3, 5, 30),
            fork,
            paper_figure1(),
        ];
        for t in &tasks {
            for available in 0..=12u32 {
                for policy in [
                    PriorityPolicy::ListOrder,
                    PriorityPolicy::CriticalPathFirst,
                    PriorityPolicy::LongestWcetFirst,
                ] {
                    assert_eq!(
                        min_procs(t, available, policy),
                        literal_sweep(t, available, policy),
                        "available = {available}, policy = {policy:?}"
                    );
                }
            }
        }
    }
}
