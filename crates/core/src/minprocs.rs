//! `MINPROCS` — the per-task processor sizing of paper Fig. 3.
//!
//! For a high-density constrained-deadline task, all jobs of one dag-job
//! must finish before the next is released (`D ≤ T`), so scheduling the task
//! on a dedicated cluster reduces to a makespan problem: find the smallest
//! `μ` for which Graham's List Scheduling finishes the DAG within `D`.

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_dag::task::DagTask;
use fedsched_graham::list::{list_schedule_with, PriorityPolicy};
use fedsched_graham::schedule::TemplateSchedule;

/// A successful `MINPROCS` sizing: the processor count and the frozen
/// template schedule `σ_i` that witnesses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinProcsResult {
    /// The minimum processor count found (`μ` in Fig. 3).
    pub processors: u32,
    /// The LS schedule of the task's DAG on `processors` processors,
    /// used as the run-time lookup table.
    pub template: TemplateSchedule,
}

/// `MINPROCS(τ_i, m_r)` (paper Fig. 3): the minimum `μ ∈ [⌈δ_i⌉, m_r]` for
/// which List Scheduling produces a schedule of `G_i` with makespan `≤ D_i`,
/// together with that schedule. Returns `None` (the paper's `∞`) if no
/// `μ ≤ available` suffices.
///
/// Two deviations from the literal pseudocode, both conservative:
///
/// * if `len_i > D_i`, no processor count can help (the chain alone misses
///   the deadline), so we fail fast without running LS;
/// * the search starts at `max(1, ⌈δ_i⌉)` — `⌈δ_i⌉` exactly as in Fig. 3,
///   clamped to one processor for degenerate inputs.
///
/// # Examples
///
/// ```
/// use fedsched_core::minprocs::min_procs;
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_graham::list::PriorityPolicy;
///
/// let tau1 = paper_figure1(); // low-density, but MINPROCS still sizes it
/// let r = min_procs(&tau1, 4, PriorityPolicy::ListOrder).expect("fits");
/// assert_eq!(r.processors, 1); // vol 9 ≤ D 16: one processor suffices
/// ```
#[must_use]
pub fn min_procs(task: &DagTask, available: u32, policy: PriorityPolicy) -> Option<MinProcsResult> {
    let mut scratch = AnalysisProbe::default();
    min_procs_probed(task, available, policy, &mut scratch)
}

/// [`min_procs`] with cost accounting: every candidate `μ` tried costs one
/// List-Scheduling simulation and one makespan-versus-deadline evaluation,
/// both recorded in `probe`.
#[must_use]
pub fn min_procs_probed(
    task: &DagTask,
    available: u32,
    policy: PriorityPolicy,
    probe: &mut AnalysisProbe,
) -> Option<MinProcsResult> {
    if !task.is_chain_feasible() {
        return None;
    }
    let start = task.min_processors_lower_bound().max(1);
    for mu in start..=available {
        probe.ls_runs = probe.ls_runs.saturating_add(1);
        let template = list_schedule_with(task.dag(), mu, policy);
        probe.makespan_evaluations = probe.makespan_evaluations.saturating_add(1);
        if template.makespan() <= task.deadline() {
            return Some(MinProcsResult {
                processors: mu,
                template,
            });
        }
    }
    None
}

/// The *intrinsic* sizing `μ*_i` of a task: [`min_procs`] with the cap set
/// to the task's vertex count, which is always enough.
///
/// With at least as many processors as vertices, List Scheduling never makes
/// a ready vertex wait, so every vertex starts at its earliest start time
/// and the makespan equals the longest chain — which fits within `D_i`
/// whenever the task is chain-feasible, under *every* priority policy.
/// Hence the search is exhaustive: this returns `Some` iff the task is
/// chain-feasible, and the result is independent of any platform-size cap
/// `m_r ≥ μ*_i`. Online admission control relies on exactly that
/// independence to size clusters without knowing the residual platform.
#[must_use]
pub fn intrinsic_min_procs(task: &DagTask, policy: PriorityPolicy) -> Option<MinProcsResult> {
    let mut scratch = AnalysisProbe::default();
    intrinsic_min_procs_probed(task, policy, &mut scratch)
}

/// [`intrinsic_min_procs`] with cost accounting (see [`min_procs_probed`]).
#[must_use]
pub fn intrinsic_min_procs_probed(
    task: &DagTask,
    policy: PriorityPolicy,
    probe: &mut AnalysisProbe,
) -> Option<MinProcsResult> {
    let cap = u32::try_from(task.dag().vertex_count()).unwrap_or(u32::MAX);
    min_procs_probed(task, cap.max(1), policy, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::examples::paper_figure1;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::time::Duration;
    use fedsched_graham::list::makespan_lower_bound;

    /// k independent vertices of WCET w, deadline d, period t.
    fn parallel_task(k: usize, w: u64, d: u64, t: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(w), k));
        DagTask::new(b.build().unwrap(), Duration::new(d), Duration::new(t)).unwrap()
    }

    #[test]
    fn wide_task_needs_many_processors() {
        // 6 unit jobs, D = 2: needs 3 processors.
        let t = parallel_task(6, 1, 2, 10);
        let r = min_procs(&t, 8, PriorityPolicy::ListOrder).unwrap();
        assert_eq!(r.processors, 3);
        assert!(r.template.makespan() <= t.deadline());
        r.template.validate(t.dag()).unwrap();
    }

    #[test]
    fn search_starts_at_density_ceiling() {
        // δ = 6/2 = 3 ⇒ the result can never be below 3, and here equals it.
        let t = parallel_task(6, 1, 2, 10);
        assert_eq!(t.min_processors_lower_bound(), 3);
    }

    #[test]
    fn fails_when_available_too_small() {
        let t = parallel_task(6, 1, 2, 10);
        assert_eq!(min_procs(&t, 2, PriorityPolicy::ListOrder), None);
    }

    #[test]
    fn fails_fast_on_infeasible_chain() {
        // Chain of length 5 with D = 4: hopeless on any cluster size.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let t = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        assert_eq!(min_procs(&t, 100, PriorityPolicy::ListOrder), None);
    }

    #[test]
    fn sequential_low_density_task_takes_one_processor() {
        let t = paper_figure1();
        let r = min_procs(&t, 4, PriorityPolicy::ListOrder).unwrap();
        assert_eq!(r.processors, 1);
        assert_eq!(r.template.makespan(), t.volume());
    }

    #[test]
    fn result_is_minimal() {
        // Check minimality by re-running LS on fewer processors.
        let t = parallel_task(7, 2, 6, 10); // vol 14, D 6 ⇒ ⌈14/6⌉ = 3
        let r = min_procs(&t, 10, PriorityPolicy::ListOrder).unwrap();
        for mu in 1..r.processors {
            let s = fedsched_graham::list::list_schedule(t.dag(), mu);
            assert!(s.makespan() > t.deadline(), "μ = {mu} should not fit");
        }
    }

    #[test]
    fn intrinsic_sizing_matches_uncapped_search() {
        let t = parallel_task(6, 1, 2, 10);
        let intrinsic = intrinsic_min_procs(&t, PriorityPolicy::ListOrder).unwrap();
        let capped = min_procs(&t, 1_000, PriorityPolicy::ListOrder).unwrap();
        assert_eq!(intrinsic.processors, capped.processors);
        assert!(intrinsic.processors <= t.dag().vertex_count() as u32);
    }

    #[test]
    fn intrinsic_sizing_fails_only_on_infeasible_chains() {
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let t = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        assert_eq!(intrinsic_min_procs(&t, PriorityPolicy::ListOrder), None);
        let ok = parallel_task(4, 1, 1, 4);
        assert!(intrinsic_min_procs(&ok, PriorityPolicy::CriticalPathFirst).is_some());
    }

    #[test]
    fn probe_counts_one_ls_run_per_candidate_mu() {
        // 6 unit jobs, D = 2: lower bound ⌈6/2⌉ = 3 fits on the first try.
        let t = parallel_task(6, 1, 2, 10);
        let mut probe = AnalysisProbe::default();
        let r = min_procs_probed(&t, 8, PriorityPolicy::ListOrder, &mut probe).unwrap();
        assert_eq!(r.processors, 3);
        assert_eq!(probe.ls_runs, 1);
        assert_eq!(probe.makespan_evaluations, 1);

        // A failing search tries every μ in [lower bound, available].
        let mut probe = AnalysisProbe::default();
        assert!(min_procs_probed(&t, 2, PriorityPolicy::ListOrder, &mut probe).is_none());
        assert_eq!(probe.ls_runs, 0, "search space [3, 2] is empty");

        // An infeasible chain fails before any LS run.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let infeasible =
            DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        let mut probe = AnalysisProbe::default();
        assert!(
            min_procs_probed(&infeasible, 100, PriorityPolicy::ListOrder, &mut probe).is_none()
        );
        assert_eq!(probe.ls_runs, 0);
    }

    #[test]
    fn template_never_beats_lower_bound() {
        let t = parallel_task(5, 3, 9, 12);
        let r = min_procs(&t, 6, PriorityPolicy::CriticalPathFirst).unwrap();
        assert!(r.template.makespan() >= makespan_lower_bound(t.dag(), r.processors));
    }
}
