//! Empirical speedup measurement (Definition 1 of the paper).
//!
//! A speed-`s` processor executes work `s` times faster; equivalently, every
//! deadline and period stretches by `s` while the work stays fixed. For a
//! rational speed `s = p/q` this can be modelled *exactly* in integer ticks:
//! scale every WCET by `q` and every deadline/period by `p` — a uniform
//! rescaling of the timeline that preserves schedulability relations.
//!
//! [`required_speed`] binary-searches the smallest grid speed at which a
//! given admission test accepts a system. Both FEDCONS and the partitioning
//! test are monotone in speed (all their inequalities are linear in the
//! scaled quantities), so the search is sound.

use fedsched_dag::graph::DagBuilder;
use fedsched_dag::rational::Rational;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;

/// The system as seen by speed-`speed` processors: WCETs multiplied by the
/// denominator, deadlines and periods by the numerator.
///
/// # Panics
///
/// Panics if `speed` is not positive, or if scaling overflows the tick
/// range.
///
/// # Examples
///
/// ```
/// use fedsched_core::speedup::system_at_speed;
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_dag::rational::Rational;
/// use fedsched_dag::system::TaskSystem;
///
/// let sys: TaskSystem = [paper_figure1()].into_iter().collect();
/// let doubled = system_at_speed(&sys, Rational::from_integer(2));
/// // Density halves on speed-2 processors.
/// assert_eq!(doubled.tasks()[0].density(), Rational::new(9, 32));
/// ```
#[must_use]
pub fn system_at_speed(system: &TaskSystem, speed: Rational) -> TaskSystem {
    assert!(speed > Rational::ZERO, "speed must be positive");
    let p = u64::try_from(speed.numer()).expect("speed numerator fits u64");
    let q = u64::try_from(speed.denom()).expect("speed denominator fits u64");
    system
        .iter()
        .map(|(_, task)| {
            let mut b = DagBuilder::with_capacity(task.dag().vertex_count());
            let ids = b.add_vertices(
                task.dag()
                    .wcets()
                    .iter()
                    .map(|w| Duration::new(w.ticks() * q)),
            );
            for (a, z) in task.dag().edges() {
                b.add_edge(ids[a.index()], ids[z.index()])
                    .expect("edges copied from a valid DAG");
            }
            DagTask::new(
                b.build().expect("copied DAG stays acyclic"),
                Duration::new(task.deadline().ticks() * p),
                Duration::new(task.period().ticks() * p),
            )
            .expect("scaling preserves validity")
        })
        .collect()
}

/// Default denominator of the speed search grid: speeds are multiples of
/// `1/64`.
pub const DEFAULT_SPEED_DENOMINATOR: u32 = 64;

/// Binary-searches the minimum speed `s = k / grid` (for integer `k`,
/// `s ≤ max_speed`) at which `accepts` admits the scaled system, assuming
/// `accepts` is monotone in speed. Returns `None` if even `max_speed` is
/// rejected.
///
/// # Panics
///
/// Panics if `grid` is zero or `max_speed < 1`.
pub fn required_speed<F>(
    system: &TaskSystem,
    accepts: F,
    grid: u32,
    max_speed: u32,
) -> Option<Rational>
where
    F: Fn(&TaskSystem) -> bool,
{
    assert!(grid > 0, "speed grid must be positive");
    assert!(max_speed >= 1, "maximum speed must be at least 1");
    let hi_k = u64::from(max_speed) * u64::from(grid);
    let probe = |k: u64| {
        let s = Rational::new(i128::from(k), i128::from(grid));
        accepts(&system_at_speed(system, s))
    };
    if !probe(hi_k) {
        return None;
    }
    // Smallest accepted k in [1, hi_k].
    let mut lo = 1u64; // exclusive candidates below lo are unknown-accepted
    let mut hi = hi_k; // known accepted
    if probe(lo) {
        return Some(Rational::new(1, i128::from(grid)));
    }
    // Invariant: probe(lo) = false, probe(hi) = true.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(Rational::new(i128::from(hi), i128::from(grid)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedcons::{fedcons, FedConsConfig};
    use fedsched_dag::examples::{paper_example2, paper_figure1};

    #[test]
    fn scaling_preserves_structure() {
        let sys: TaskSystem = [paper_figure1()].into_iter().collect();
        let scaled = system_at_speed(&sys, Rational::new(3, 2));
        let t = &scaled.tasks()[0];
        assert_eq!(t.volume(), Duration::new(18)); // ×2 (denominator)
        assert_eq!(t.deadline(), Duration::new(48)); // ×3 (numerator)
        assert_eq!(t.period(), Duration::new(60));
        assert_eq!(t.dag().edge_count(), 5);
        // Density scales by 1/s.
        assert_eq!(t.density(), Rational::new(9, 16) / Rational::new(3, 2));
    }

    #[test]
    fn speed_one_is_identity_up_to_ticks() {
        let sys: TaskSystem = [paper_figure1()].into_iter().collect();
        let same = system_at_speed(&sys, Rational::ONE);
        assert_eq!(same, sys);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn non_positive_speed_panics() {
        let sys = TaskSystem::new();
        let _ = system_at_speed(&sys, Rational::ZERO);
    }

    #[test]
    fn example2_requires_speed_n() {
        // The paper's Example 2: on m = n processors, FEDCONS needs speed 1
        // (each task gets a cluster). On m = 1 processor, the n unit jobs
        // due at time 1 need speed n.
        let n = 4u32;
        let sys = paper_example2(n);
        let accepts_on_one = |s: &TaskSystem| fedcons(s, 1, FedConsConfig::default()).is_ok();
        let speed = required_speed(&sys, accepts_on_one, 1, 16).unwrap();
        assert_eq!(speed, Rational::from_integer(i128::from(n)));
    }

    #[test]
    fn figure1_needs_speed_nine_sixteenths_on_one_processor() {
        // vol = 9 must fit in D = 16 on one processor: the exact break-even
        // speed is 9/16, and it lies on the 1/64 grid.
        let sys: TaskSystem = [paper_figure1()].into_iter().collect();
        let accepts = |s: &TaskSystem| fedcons(s, 1, FedConsConfig::default()).is_ok();
        let speed = required_speed(&sys, accepts, 64, 4).unwrap();
        assert_eq!(speed, Rational::new(9, 16));
    }

    #[test]
    fn returns_none_when_even_max_speed_fails() {
        let sys = paper_example2(64);
        let accepts = |s: &TaskSystem| fedcons(s, 1, FedConsConfig::default()).is_ok();
        assert_eq!(required_speed(&sys, accepts, 1, 4), None);
    }

    #[test]
    fn search_matches_linear_scan() {
        let sys = paper_example2(6);
        let accepts = |s: &TaskSystem| fedcons(s, 2, FedConsConfig::default()).is_ok();
        let found = required_speed(&sys, accepts, 2, 8).unwrap();
        // Linear scan over the same grid.
        let mut expected = None;
        for k in 1..=16u64 {
            let s = Rational::new(i128::from(k), 2);
            if accepts(&system_at_speed(&sys, s)) {
                expected = Some(s);
                break;
            }
        }
        assert_eq!(Some(found), expected);
    }
}
