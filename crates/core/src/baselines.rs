//! Baseline schedulers and tests the paper positions FEDCONS against.
//!
//! * [`li_federated`] — the implicit-deadline federated algorithm of Li,
//!   Saifullah, Agrawal, Gill & Lu (ECRTS'14) \[17\]: high-*utilization* tasks
//!   get `m_i = ⌈(vol_i − len_i) / (T_i − len_i)⌉` dedicated processors;
//!   low-utilization tasks are partitioned by utilization. Capacity
//!   augmentation bound 2 (hence speedup 2).
//! * [`global_edf_li_test`] — the global-EDF capacity-augmentation test of
//!   Li et al. (ECRTS'13) \[16\] for implicit deadlines (bound `4 − 2/m`).
//! * [`global_edf_density_test`] — a *sequentialising* density baseline for
//!   constrained deadlines: execute every dag-job sequentially (`C = vol`)
//!   under global EDF and apply the Goossens–Funk–Baruah density condition
//!   `Σ δ_i ≤ m − (m − 1)·δ_max`. Sound, but blind to intra-task
//!   parallelism — exactly the kind of baseline federated scheduling is
//!   meant to beat on high-density workloads.

use core::fmt;

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::probe::AnalysisProbe;
use fedsched_dag::rational::Rational;
use fedsched_dag::system::{TaskId, TaskSystem};
use fedsched_dag::task::DeadlineClass;
use fedsched_graham::list::{list_schedule_with, PriorityPolicy};
use fedsched_graham::schedule::TemplateSchedule;
use serde::{Deserialize, Serialize};

/// A dedicated assignment made by the Li et al. federated algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiCluster {
    /// The high-utilization task.
    pub task: TaskId,
    /// Dedicated processor count `m_i = ⌈(vol−len)/(T−len)⌉`.
    pub processors: u32,
    /// A work-conserving (LS) template witnessing the deadline on
    /// `processors` processors.
    pub template: TemplateSchedule,
}

/// Result of the Li et al. implicit-deadline federated admission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiFederatedSchedule {
    /// Dedicated clusters for the high-utilization tasks.
    pub clusters: Vec<LiCluster>,
    /// Per-shared-processor task lists for the low-utilization tasks
    /// (first-fit decreasing by utilization, per-processor `U ≤ 1`).
    pub shared: Vec<Vec<TaskId>>,
}

/// Why the Li et al. federated admission declined a system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiFederatedFailure {
    /// The algorithm is defined for implicit-deadline systems only.
    NotImplicitDeadline {
        /// The first offending task.
        task: TaskId,
    },
    /// A high-utilization task is infeasible (`len = T` with extra work) or
    /// needs more processors than remain.
    HighUtilizationTask {
        /// The task that could not be placed.
        task: TaskId,
        /// Remaining processors when it was considered.
        remaining: u32,
    },
    /// A low-utilization task fits on no shared processor.
    LowUtilizationTask {
        /// The task that could not be placed.
        task: TaskId,
    },
}

impl fmt::Display for LiFederatedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiFederatedFailure::NotImplicitDeadline { task } => {
                write!(f, "task {task} is not implicit-deadline")
            }
            LiFederatedFailure::HighUtilizationTask { task, remaining } => write!(
                f,
                "high-utilization task {task} fits in no cluster within {remaining} processors"
            ),
            LiFederatedFailure::LowUtilizationTask { task } => {
                write!(f, "low-utilization task {task} fits on no shared processor")
            }
        }
    }
}

impl std::error::Error for LiFederatedFailure {}

/// The federated scheduling algorithm of Li et al. \[17\] for
/// implicit-deadline sporadic DAG task systems.
///
/// High-utilization tasks (`u_i ≥ 1`) receive
/// `m_i = ⌈(vol_i − len_i) / (T_i − len_i)⌉` dedicated processors (with
/// `m_i = 1` when `vol_i = len_i`); Graham's bound guarantees any
/// work-conserving scheduler meets the deadline on that many. Low-utilization
/// tasks are partitioned first-fit-decreasing by utilization with a
/// per-processor budget of 1 (exact for EDF with implicit deadlines).
///
/// # Errors
///
/// See [`LiFederatedFailure`].
pub fn li_federated(
    system: &TaskSystem,
    m: u32,
) -> Result<LiFederatedSchedule, LiFederatedFailure> {
    let mut scratch = AnalysisProbe::default();
    li_federated_probed(system, m, &mut scratch)
}

/// [`li_federated`] with cost accounting: each dedicated cluster costs one
/// List-Scheduling simulation plus one makespan evaluation, and each
/// low-utilization placement attempt is counted as a `fits()` call.
///
/// # Errors
///
/// Same as [`li_federated`].
pub fn li_federated_probed(
    system: &TaskSystem,
    m: u32,
    probe: &mut AnalysisProbe,
) -> Result<LiFederatedSchedule, LiFederatedFailure> {
    if let Some((id, _)) = system
        .iter()
        .find(|(_, t)| t.deadline_class() != DeadlineClass::Implicit)
    {
        return Err(LiFederatedFailure::NotImplicitDeadline { task: id });
    }

    let mut remaining = m;
    let mut clusters = Vec::new();
    for (id, task) in system.iter() {
        if !task.is_high_utilization() {
            continue;
        }
        let vol = task.volume().ticks();
        let len = task.longest_chain_length().ticks();
        let t = task.period().ticks();
        let needed = if vol == len {
            if len <= t {
                1
            } else {
                return Err(LiFederatedFailure::HighUtilizationTask {
                    task: id,
                    remaining,
                });
            }
        } else {
            if len >= t {
                return Err(LiFederatedFailure::HighUtilizationTask {
                    task: id,
                    remaining,
                });
            }
            u32::try_from((vol - len).div_ceil(t - len)).expect("cluster size fits u32")
        };
        if needed > remaining {
            return Err(LiFederatedFailure::HighUtilizationTask {
                task: id,
                remaining,
            });
        }
        probe.ls_runs = probe.ls_runs.saturating_add(1);
        let template = list_schedule_with(task.dag(), needed, PriorityPolicy::ListOrder);
        probe.makespan_evaluations = probe.makespan_evaluations.saturating_add(1);
        debug_assert!(
            template.makespan() <= task.deadline(),
            "Graham bound guarantees the Li cluster size"
        );
        clusters.push(LiCluster {
            task: id,
            processors: needed,
            template,
        });
        remaining -= needed;
    }

    // Low-utilization tasks: first-fit decreasing by utilization.
    let mut low: Vec<TaskId> = system
        .iter()
        .filter(|(_, t)| !t.is_high_utilization())
        .map(|(id, _)| id)
        .collect();
    low.sort_by(|&a, &b| {
        system
            .task(b)
            .utilization()
            .cmp(&system.task(a).utilization())
            .then(a.cmp(&b))
    });
    let mut shared: Vec<Vec<TaskId>> = vec![Vec::new(); remaining as usize];
    let mut budgets: Vec<Rational> = vec![Rational::ONE; remaining as usize];
    for id in low {
        let u = system.task(id).utilization();
        probe.fits_calls = probe.fits_calls.saturating_add(1);
        match budgets.iter().position(|b| *b >= u) {
            Some(k) => {
                budgets[k] = budgets[k] - u;
                shared[k].push(id);
            }
            None => return Err(LiFederatedFailure::LowUtilizationTask { task: id }),
        }
    }
    Ok(LiFederatedSchedule { clusters, shared })
}

/// The global-EDF sufficient test of Li et al. \[16\] for implicit-deadline
/// DAG task systems (capacity augmentation bound `b = 4 − 2/m`): accept iff
///
/// ```text
/// U_sum ≤ m / b   and   len_i ≤ T_i / b  for all i.
/// ```
///
/// Returns `false` for non-implicit systems (the bound does not apply).
#[must_use]
pub fn global_edf_li_test(system: &TaskSystem, m: u32) -> bool {
    if m == 0 {
        return system.is_empty();
    }
    if system.deadline_class() != DeadlineClass::Implicit {
        return false;
    }
    let m_rat = Rational::from_integer(i128::from(m));
    // b = 4 − 2/m = (4m − 2)/m.
    let b = Rational::new(4 * i128::from(m) - 2, i128::from(m));
    if system.total_utilization() > m_rat / b {
        return false;
    }
    system.iter().all(|(_, t)| {
        Rational::from(t.longest_chain_length().ticks()) <= Rational::from(t.period().ticks()) / b
    })
}

/// A sound global-EDF baseline for constrained deadlines that *ignores*
/// intra-task parallelism: run each dag-job sequentially (`C_i = vol_i`)
/// under global EDF and apply the density condition
/// `Σ δ_i ≤ m − (m − 1)·δ_max` (with `δ_max ≤ 1` required for the
/// sequentialisation to be feasible at all).
///
/// This is the "natural analog of what you could do without a DAG-aware
/// scheduler"; FEDCONS should dominate it whenever high-density tasks are
/// present, since those have `δ > 1` and fail here outright.
#[must_use]
pub fn global_edf_density_test(system: &TaskSystem, m: u32) -> bool {
    if system.is_empty() {
        return true;
    }
    if m == 0 {
        return false;
    }
    let views: Vec<SequentialView> = system.iter().map(|(_, t)| SequentialView::of(t)).collect();
    let max_density = views
        .iter()
        .map(SequentialView::density)
        .max()
        .expect("non-empty");
    if max_density > Rational::ONE {
        return false;
    }
    let total: Rational = views.iter().map(SequentialView::density).sum();
    let m_rat = Rational::from_integer(i128::from(m));
    total <= m_rat - (m_rat - Rational::ONE) * max_density
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::task::DagTask;
    use fedsched_dag::time::Duration;

    fn parallel_implicit(k: usize, w: u64, t: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(w), k));
        DagTask::implicit_deadline(b.build().unwrap(), Duration::new(t)).unwrap()
    }

    fn seq_implicit(c: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(t), Duration::new(t)).unwrap()
    }

    #[test]
    fn li_cluster_sizing_formula() {
        // 8 unit jobs, T = 2: vol 8, len 1 ⇒ ⌈7/1⌉ = 7 processors.
        let system: TaskSystem = [parallel_implicit(8, 1, 2)].into_iter().collect();
        let s = li_federated(&system, 8).unwrap();
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.clusters[0].processors, 7);
        assert!(s.clusters[0].template.makespan() <= Duration::new(2));
    }

    #[test]
    fn li_sequential_high_utilization_edge_case() {
        // vol = len = T: a full-utilization chain needs exactly 1 processor.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([2, 3].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let task = DagTask::implicit_deadline(b.build().unwrap(), Duration::new(5)).unwrap();
        let system: TaskSystem = [task].into_iter().collect();
        let s = li_federated(&system, 1).unwrap();
        assert_eq!(s.clusters[0].processors, 1);
    }

    #[test]
    fn li_rejects_constrained_systems() {
        let t = DagTask::sequential(Duration::new(1), Duration::new(2), Duration::new(4)).unwrap();
        let system: TaskSystem = [t].into_iter().collect();
        assert!(matches!(
            li_federated(&system, 4),
            Err(LiFederatedFailure::NotImplicitDeadline { .. })
        ));
    }

    #[test]
    fn li_partitions_low_utilization_tasks() {
        let system: TaskSystem = [
            seq_implicit(3, 4), // u = 3/4
            seq_implicit(1, 2), // u = 1/2
            seq_implicit(1, 4), // u = 1/4
        ]
        .into_iter()
        .collect();
        let s = li_federated(&system, 2).unwrap();
        assert!(s.clusters.is_empty());
        // FFD: 3/4 → P0; 1/2 → P1; 1/4 → P0.
        assert_eq!(
            s.shared[0],
            vec![TaskId::from_index(0), TaskId::from_index(2)]
        );
        assert_eq!(s.shared[1], vec![TaskId::from_index(1)]);
        // One processor cannot host u = 3/2.
        assert!(matches!(
            li_federated(&system, 1),
            Err(LiFederatedFailure::LowUtilizationTask { .. })
        ));
    }

    #[test]
    fn li_runs_out_of_processors() {
        let system: TaskSystem = [parallel_implicit(8, 1, 2)].into_iter().collect();
        let e = li_federated(&system, 3).unwrap_err();
        assert!(matches!(
            e,
            LiFederatedFailure::HighUtilizationTask { remaining: 3, .. }
        ));
        assert!(e.to_string().contains("3 processors"));
    }

    #[test]
    fn global_edf_li_accepts_light_systems() {
        // m = 4 ⇒ b = 3.5; U ≤ 4/3.5 ≈ 1.14 and len ≤ T/3.5.
        let system: TaskSystem = [parallel_implicit(4, 1, 8), parallel_implicit(4, 1, 8)]
            .into_iter()
            .collect();
        assert!(global_edf_li_test(&system, 4));
        // Heavier: U = 4 > 4/3.5.
        let heavy: TaskSystem = (0..8).map(|_| parallel_implicit(4, 1, 2)).collect();
        assert!(!global_edf_li_test(&heavy, 4));
    }

    #[test]
    fn global_edf_li_rejects_long_chains() {
        // len = T fails len ≤ T/b.
        let mut b = DagBuilder::new();
        let v = b.add_vertices([4, 4].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        let t = DagTask::implicit_deadline(b.build().unwrap(), Duration::new(8)).unwrap();
        let system: TaskSystem = [t].into_iter().collect();
        assert!(!global_edf_li_test(&system, 4));
    }

    #[test]
    fn global_edf_li_is_implicit_only() {
        let t = DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8)).unwrap();
        let system: TaskSystem = [t].into_iter().collect();
        assert!(!global_edf_li_test(&system, 8));
    }

    #[test]
    fn density_baseline_basic() {
        let light =
            DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8)).unwrap();
        let system: TaskSystem = [light.clone(), light.clone(), light].into_iter().collect();
        // Σδ = 3/4, δmax = 1/4: 3/4 ≤ 2 − 1·(1/4) on m = 2 ✓.
        assert!(global_edf_density_test(&system, 2));
        assert!(global_edf_density_test(&system, 1));
    }

    #[test]
    fn density_baseline_rejects_high_density() {
        // δ = 2 > 1: sequentialisation infeasible, DAG-aware FEDCONS wins.
        let mut b = DagBuilder::new();
        b.add_vertices([2, 2].map(Duration::new));
        let t = DagTask::new(b.build().unwrap(), Duration::new(2), Duration::new(4)).unwrap();
        let system: TaskSystem = [t].into_iter().collect();
        assert!(!global_edf_density_test(&system, 64));
    }

    #[test]
    fn density_baseline_edge_cases() {
        assert!(global_edf_density_test(&TaskSystem::new(), 0));
        let t = DagTask::sequential(Duration::new(1), Duration::new(1), Duration::new(1)).unwrap();
        let system: TaskSystem = [t].into_iter().collect();
        assert!(!global_edf_density_test(&system, 0));
        // δmax = 1: condition becomes Σδ ≤ 1, so a single such task passes.
        assert!(global_edf_density_test(&system, 3));
    }
}
