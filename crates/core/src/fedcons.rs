//! Algorithm `FEDCONS` — federated scheduling of constrained-deadline
//! sporadic DAG task systems (paper Fig. 2).
//!
//! Phase 1 dedicates processors to high-density tasks via
//! [`crate::minprocs::min_procs`]; phase 2 partitions the low-density tasks
//! onto the remaining processors via the Baruah–Fisher first-fit. On
//! success the admission produces a complete run-time configuration: one
//! frozen template per dedicated cluster, plus an EDF task partition for the
//! shared pool.
//!
//! Every phase-1 sizing bottoms out in the List-Scheduling kernel, which
//! runs on the calling thread's reusable
//! [`LsWorkspace`](fedsched_graham::workspace::LsWorkspace) — across the
//! whole batch of high-density tasks, steady-state analysis performs one
//! allocation per frozen template and none inside the kernel loop.

use core::fmt;
use std::time::Instant;

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::partition::{
    partition_first_fit_probed, Partition, PartitionConfig, PartitionFailure,
};
use fedsched_analysis::probe::AnalysisProbe;
use fedsched_dag::system::{TaskId, TaskSystem};
use fedsched_dag::task::{DeadlineClass, TaskClass};
use fedsched_graham::list::PriorityPolicy;
use fedsched_graham::schedule::TemplateSchedule;
use serde::{Deserialize, Serialize};

use crate::minprocs::{intrinsic_min_procs_probed, MinProcsResult};

/// Options for [`fedcons`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FedConsConfig {
    /// Priority list handed to Graham's LS when building templates.
    pub policy: PriorityPolicy,
    /// Options for the low-density partitioning phase.
    pub partition: PartitionConfig,
}

/// One dedicated cluster: a high-density task with exclusive ownership of a
/// contiguous range of processors and its frozen template schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedicatedCluster {
    /// The high-density task served by this cluster.
    pub task: TaskId,
    /// First global processor index of the cluster.
    pub first_processor: u32,
    /// Number of processors in the cluster (`m_i` in Fig. 2).
    pub processors: u32,
    /// The lookup-table schedule `σ_i` replayed on every dag-job release.
    pub template: TemplateSchedule,
}

impl DedicatedCluster {
    /// Global indices of this cluster's processors.
    #[must_use]
    pub fn processor_range(&self) -> core::ops::Range<u32> {
        self.first_processor..self.first_processor + self.processors
    }
}

/// The run-time configuration produced by a successful FEDCONS admission.
///
/// Processors `0 .. shared_first` are owned by dedicated clusters (in
/// cluster order); processors `shared_first .. total` form the shared pool,
/// each running preemptive uniprocessor EDF over its partition slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederatedSchedule {
    total_processors: u32,
    clusters: Vec<DedicatedCluster>,
    shared_first: u32,
    partition: Partition,
    low_tasks: Vec<TaskId>,
}

impl FederatedSchedule {
    /// Total processors of the platform.
    #[must_use]
    pub fn total_processors(&self) -> u32 {
        self.total_processors
    }

    /// The dedicated clusters, one per high-density task, in assignment
    /// order.
    #[must_use]
    pub fn clusters(&self) -> &[DedicatedCluster] {
        &self.clusters
    }

    /// Index of the first shared processor; equals the number of dedicated
    /// processors.
    #[must_use]
    pub fn shared_first(&self) -> u32 {
        self.shared_first
    }

    /// Number of processors in the shared pool.
    #[must_use]
    pub fn shared_processors(&self) -> u32 {
        self.total_processors - self.shared_first
    }

    /// The partition of low-density tasks over the shared pool; slot `k`
    /// corresponds to global processor `shared_first + k`.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Ids of the low-density tasks, in the order they were offered to the
    /// partitioner.
    #[must_use]
    pub fn low_tasks(&self) -> &[TaskId] {
        &self.low_tasks
    }

    /// The cluster serving `task`, if it is a high-density task.
    #[must_use]
    pub fn cluster_of(&self, task: TaskId) -> Option<&DedicatedCluster> {
        self.clusters.iter().find(|c| c.task == task)
    }

    /// The global shared-processor index hosting `task`, if it is a
    /// low-density task.
    #[must_use]
    pub fn shared_processor_of(&self, task: TaskId) -> Option<u32> {
        self.partition
            .processor_of(task)
            .map(|k| self.shared_first + k as u32)
    }

    /// Processors that belong to no cluster and host no task.
    #[must_use]
    pub fn idle_processors(&self) -> u32 {
        let used_shared = self.partition.used_processors() as u32;
        self.shared_processors() - used_shared
    }
}

impl fmt::Display for FederatedSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FederatedSchedule on {} processors ({} dedicated, {} shared)",
            self.total_processors,
            self.shared_first,
            self.shared_processors()
        )?;
        for c in &self.clusters {
            writeln!(
                f,
                "  cluster {}..{} -> {} (makespan {})",
                c.first_processor,
                c.first_processor + c.processors,
                c.task,
                c.template.makespan()
            )?;
        }
        for (k, tasks) in self.partition.iter() {
            if !tasks.is_empty() {
                let ids: Vec<String> = tasks.iter().map(ToString::to_string).collect();
                writeln!(
                    f,
                    "  shared P{}: {}",
                    self.shared_first + k as u32,
                    ids.join(", ")
                )?;
            }
        }
        Ok(())
    }
}

/// Why FEDCONS declined a task system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedConsFailure {
    /// The system contains a task with `D > T`; the algorithm is defined for
    /// constrained-deadline systems only (the paper's Section V names the
    /// arbitrary-deadline case as open).
    ArbitraryDeadline {
        /// The offending task.
        task: TaskId,
    },
    /// `MINPROCS` found no cluster size within the remaining processors for
    /// a high-density task (Fig. 2 line 4).
    HighDensityTask {
        /// The task that could not be sized.
        task: TaskId,
        /// Processors that were still unassigned.
        remaining: u32,
    },
    /// The low-density partitioning phase failed (Fig. 4 line 6).
    Partition(PartitionFailure),
}

impl fmt::Display for FedConsFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedConsFailure::ArbitraryDeadline { task } => {
                write!(f, "task {task} has deadline greater than period")
            }
            FedConsFailure::HighDensityTask { task, remaining } => write!(
                f,
                "high-density task {task} fits on no cluster within {remaining} remaining processors"
            ),
            FedConsFailure::Partition(p) => write!(f, "partitioning failed: {p}"),
        }
    }
}

impl std::error::Error for FedConsFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FedConsFailure::Partition(p) => Some(p),
            _ => None,
        }
    }
}

impl From<PartitionFailure> for FedConsFailure {
    fn from(p: PartitionFailure) -> Self {
        FedConsFailure::Partition(p)
    }
}

/// `FEDCONS(τ, m)` (paper Fig. 2): admits a constrained-deadline sporadic
/// DAG task system onto `m` unit-speed processors, or explains why not.
///
/// High-density tasks are processed in task-id order (the paper fixes no
/// order); each receives the minimal LS cluster via `MINPROCS` and its
/// template `σ_i`. The low-density remainder is partitioned with the
/// deadline-ordered first-fit of Fig. 4 onto the leftover processors.
///
/// # Errors
///
/// * [`FedConsFailure::ArbitraryDeadline`] if any task has `D > T`;
/// * [`FedConsFailure::HighDensityTask`] if phase 1 runs out of processors;
/// * [`FedConsFailure::Partition`] if phase 2 cannot place some task.
///
/// # Examples
///
/// ```
/// use fedsched_core::fedcons::{fedcons, FedConsConfig};
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_dag::system::TaskSystem;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system: TaskSystem = [paper_figure1()].into_iter().collect();
/// let schedule = fedcons(&system, 2, FedConsConfig::default())?;
/// assert_eq!(schedule.shared_first(), 0); // τ₁ is low-density: no cluster
/// assert_eq!(schedule.partition().used_processors(), 1);
/// # Ok(())
/// # }
/// ```
pub fn fedcons(
    system: &TaskSystem,
    m: u32,
    config: FedConsConfig,
) -> Result<FederatedSchedule, FedConsFailure> {
    let mut scratch = AnalysisProbe::default();
    fedcons_probed(system, m, config, &mut scratch)
}

/// [`fedcons`] with cost accounting: records every `MINPROCS`
/// List-Scheduling simulation, every first-fit admission test, and the
/// wall time of each phase (`sizing_nanos` for phase 1, `partition_nanos`
/// for phase 2) in `probe`.
///
/// The uninstrumented [`fedcons`] is a wrapper over this function with a
/// discarded probe, so both produce identical schedules.
///
/// # Errors
///
/// Same as [`fedcons`].
pub fn fedcons_probed(
    system: &TaskSystem,
    m: u32,
    config: FedConsConfig,
    probe: &mut AnalysisProbe,
) -> Result<FederatedSchedule, FedConsFailure> {
    // The routing decision (reject arbitrary deadlines, dedicate clusters
    // to δ ≥ 1, partition the rest) is owned by `DagTask::classify`.
    if let Some((id, _)) = system
        .iter()
        .find(|(_, t)| t.classify() == TaskClass::ArbitraryDeadline)
    {
        return Err(FedConsFailure::ArbitraryDeadline { task: id });
    }

    let mut remaining = m; // m_r in Fig. 2
    let mut next_processor = 0u32;
    let mut clusters = Vec::new();

    // Phase 1: size every high-density task, then place the sizings.
    //
    // Each sizing is *intrinsic* (capped by the task's own vertex count,
    // never by the residual platform), which makes the sizings independent
    // of each other — so they all fan out through the parallel façade at
    // once. The verdict is unchanged from the sequential Fig. 2 loop: the
    // minimal cluster size within `remaining` equals the intrinsic `μ*_i`
    // whenever `μ*_i ≤ remaining`, and the task is unsizable otherwise, so
    // the sequential placement replay below fails at exactly the same task
    // with exactly the same `remaining` as the literal loop. Per-task
    // probes are merged in task order, keeping every counter byte-identical
    // at any pool width. The one intended difference: a run that fails
    // mid-phase has speculatively sized the later tasks too (they are
    // likely to be re-offered, and the service caches sizings by shape).
    let phase1 = Instant::now();
    let high_ids = system.high_density_ids();
    if high_ids.len() > 1 {
        probe.par_tasks_dispatched = probe
            .par_tasks_dispatched
            .saturating_add(high_ids.len() as u64);
    }
    let sizings: Vec<(Option<MinProcsResult>, AnalysisProbe)> =
        fedsched_parallel::par_map(&high_ids, |&id| {
            let mut local = AnalysisProbe::default();
            let sizing = intrinsic_min_procs_probed(system.task(id), config.policy, &mut local);
            (sizing, local)
        });
    for (_, local) in &sizings {
        probe.merge(local);
    }
    for (&id, (sizing, _)) in high_ids.iter().zip(sizings) {
        match sizing {
            Some(r) if r.processors <= remaining => {
                clusters.push(DedicatedCluster {
                    task: id,
                    first_processor: next_processor,
                    processors: r.processors,
                    template: r.template,
                });
                next_processor += r.processors;
                remaining -= r.processors;
            }
            _ => {
                probe.sizing_nanos = probe.sizing_nanos.saturating_add(elapsed_nanos(phase1));
                return Err(FedConsFailure::HighDensityTask {
                    task: id,
                    remaining,
                });
            }
        }
    }
    probe.sizing_nanos = probe.sizing_nanos.saturating_add(elapsed_nanos(phase1));

    // Phase 2: partition the low-density tasks on the remaining processors.
    let phase2 = Instant::now();
    let low_tasks = system.low_density_ids();
    let views: Vec<(TaskId, SequentialView)> = low_tasks
        .iter()
        .map(|&id| (id, SequentialView::of(system.task(id))))
        .collect();
    let partition = partition_first_fit_probed(&views, remaining as usize, config.partition, probe);
    probe.partition_nanos = probe.partition_nanos.saturating_add(elapsed_nanos(phase2));
    let partition = partition?;

    Ok(FederatedSchedule {
        total_processors: m,
        clusters,
        shared_first: next_processor,
        partition,
        low_tasks,
    })
}

/// Nanoseconds since `start`, saturated into a `u64`.
fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A *conservative* extension of FEDCONS to arbitrary-deadline systems: each
/// task with `D > T` is tightened to `D' = T` and the constrained-deadline
/// algorithm is run on the tightened system.
///
/// The paper names arbitrary deadlines as an open problem (Section V) — a
/// dag-job may then overlap later releases, so LS templates stop working.
/// Tightening restores `D ≤ T` and is **sound**: every guarantee is for an
/// *earlier* deadline, so the original deadlines are met a fortiori, and no
/// two dag-jobs of a cluster task ever overlap. It is of course pessimistic:
/// systems that genuinely need the `(T, D]` slack are rejected.
///
/// Systems that are already constrained pass through unchanged.
///
/// # Errors
///
/// Same as [`fedcons`], raised against the tightened system (an
/// [`FedConsFailure::ArbitraryDeadline`] can no longer occur).
pub fn fedcons_constraining(
    system: &TaskSystem,
    m: u32,
    config: FedConsConfig,
) -> Result<FederatedSchedule, FedConsFailure> {
    let mut scratch = AnalysisProbe::default();
    fedcons_constraining_probed(system, m, config, &mut scratch)
}

/// [`fedcons_constraining`] with cost accounting (see [`fedcons_probed`]).
///
/// # Errors
///
/// Same as [`fedcons_constraining`].
pub fn fedcons_constraining_probed(
    system: &TaskSystem,
    m: u32,
    config: FedConsConfig,
    probe: &mut AnalysisProbe,
) -> Result<FederatedSchedule, FedConsFailure> {
    if system.deadline_class() != DeadlineClass::Arbitrary {
        return fedcons_probed(system, m, config, probe);
    }
    let tightened: TaskSystem = system
        .iter()
        .map(|(_, t)| {
            fedsched_dag::task::DagTask::new(
                t.dag().clone(),
                t.deadline().min(t.period()),
                t.period(),
            )
            .expect("tightening preserves validity")
        })
        .collect();
    fedcons_probed(&tightened, m, config, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::examples::{paper_example2, paper_figure1};
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::task::DagTask;
    use fedsched_dag::time::Duration;

    fn parallel_task(k: usize, w: u64, d: u64, t: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_vertices(std::iter::repeat_n(Duration::new(w), k));
        DagTask::new(b.build().unwrap(), Duration::new(d), Duration::new(t)).unwrap()
    }

    fn seq(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    #[test]
    fn probe_counts_match_hand_derivation_on_paper_examples() {
        // Figure 1: one low-density task on one processor. Phase 1 sizes
        // nothing (no LS runs); phase 2 performs exactly one fits() call,
        // against an empty processor (zero DBF* evaluations).
        let system: TaskSystem = [paper_figure1()].into_iter().collect();
        let mut probe = AnalysisProbe::default();
        let s = fedcons_probed(&system, 1, FedConsConfig::default(), &mut probe).unwrap();
        assert_eq!(s.partition().used_processors(), 1);
        assert_eq!(probe.ls_runs, 0);
        assert_eq!(probe.makespan_evaluations, 0);
        assert_eq!(probe.fits_calls, 1);
        assert_eq!(probe.dbf_approx_evals, 0);
        assert_eq!(probe.ls_runs_pruned, 0, "no MINPROCS search ran at all");
        assert_eq!(
            probe.par_tasks_dispatched, 0,
            "phase 1 had nothing to fan out"
        );

        // Example 2 with n = 6: every task has δ = 1, so each is sized by
        // MINPROCS at its lower bound μ = 1 on the first LS attempt — n LS
        // runs, n makespan evaluations, and no partitioning work at all.
        // Each task is a single vertex (vol = len = 1), so its candidate
        // window is exactly {1}: the Graham bracket prunes nothing, and the
        // only fan-out is phase 1 offering the n sizings to the pool.
        let n = 6u32;
        let system = paper_example2(n);
        let mut probe = AnalysisProbe::default();
        let s = fedcons_probed(&system, n, FedConsConfig::default(), &mut probe).unwrap();
        assert_eq!(s.clusters().len(), n as usize);
        assert_eq!(probe.ls_runs, u64::from(n));
        assert_eq!(probe.makespan_evaluations, u64::from(n));
        assert_eq!(probe.fits_calls, 0);
        assert_eq!(probe.dbf_approx_evals, 0);
        assert_eq!(
            probe.ls_runs_pruned, 0,
            "windows of one candidate prune nothing"
        );
        assert_eq!(
            probe.par_tasks_dispatched,
            u64::from(n),
            "one fan-out item per sizing"
        );
    }

    #[test]
    fn probed_and_unprobed_fedcons_agree_exactly() {
        let system: TaskSystem = [parallel_task(6, 1, 2, 10), seq(1, 4, 8), seq(2, 6, 12)]
            .into_iter()
            .collect();
        let direct = fedcons(&system, 5, FedConsConfig::default()).unwrap();
        let mut probe = AnalysisProbe::default();
        let probed = fedcons_probed(&system, 5, FedConsConfig::default(), &mut probe).unwrap();
        assert_eq!(direct, probed);
        // Wall time is recorded for both phases of a successful run.
        assert!(probe.sizing_nanos > 0 || probe.partition_nanos > 0);
    }

    #[test]
    fn mixed_system_gets_clusters_and_partition() {
        // One high-density parallel task (6 unit jobs, D=2 ⇒ 3 procs) and
        // two low-density sequential tasks.
        let system: TaskSystem = [parallel_task(6, 1, 2, 10), seq(1, 4, 8), seq(2, 6, 12)]
            .into_iter()
            .collect();
        let s = fedcons(&system, 5, FedConsConfig::default()).unwrap();
        assert_eq!(s.clusters().len(), 1);
        assert_eq!(s.clusters()[0].processors, 3);
        assert_eq!(s.shared_first(), 3);
        assert_eq!(s.shared_processors(), 2);
        assert_eq!(
            s.cluster_of(TaskId::from_index(0)).unwrap().task,
            TaskId::from_index(0)
        );
        assert!(s.shared_processor_of(TaskId::from_index(1)).is_some());
        assert!(s.shared_processor_of(TaskId::from_index(0)).is_none());
        // Both low tasks fit on one shared processor here.
        assert_eq!(s.idle_processors(), 1);
    }

    #[test]
    fn figure1_task_alone_needs_one_processor() {
        let system: TaskSystem = [paper_figure1()].into_iter().collect();
        let s = fedcons(&system, 1, FedConsConfig::default()).unwrap();
        assert!(s.clusters().is_empty());
        assert_eq!(s.partition().used_processors(), 1);
    }

    #[test]
    fn rejects_arbitrary_deadline() {
        let system: TaskSystem = [seq(1, 10, 5)].into_iter().collect();
        assert!(matches!(
            fedcons(&system, 4, FedConsConfig::default()),
            Err(FedConsFailure::ArbitraryDeadline { .. })
        ));
    }

    #[test]
    fn fails_when_high_density_exhausts_processors() {
        let system: TaskSystem = [parallel_task(6, 1, 2, 10)].into_iter().collect();
        let e = fedcons(&system, 2, FedConsConfig::default()).unwrap_err();
        assert!(matches!(
            e,
            FedConsFailure::HighDensityTask { remaining: 2, .. }
        ));
        assert!(e.to_string().contains("2 remaining"));
    }

    #[test]
    fn fails_when_partition_runs_out() {
        // Three nearly-full low-density tasks, one shared processor.
        let system: TaskSystem = [seq(7, 8, 16), seq(7, 8, 16), seq(7, 8, 16)]
            .into_iter()
            .collect();
        let e = fedcons(&system, 1, FedConsConfig::default()).unwrap_err();
        assert!(matches!(e, FedConsFailure::Partition(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn example2_needs_one_processor_per_task() {
        // Example 2 tasks are *high-density* (δ = 1 each): every task gets
        // its own cluster, so FEDCONS needs exactly n processors.
        let n = 6;
        let system = paper_example2(n);
        let s = fedcons(&system, n, FedConsConfig::default()).unwrap();
        assert_eq!(s.clusters().len(), n as usize);
        assert_eq!(s.shared_processors(), 0);
        assert!(fedcons(&system, n - 1, FedConsConfig::default()).is_err());
    }

    #[test]
    fn clusters_occupy_disjoint_prefix() {
        let system: TaskSystem = [
            parallel_task(4, 1, 2, 4),
            parallel_task(6, 1, 3, 6),
            seq(1, 5, 10),
        ]
        .into_iter()
        .collect();
        let s = fedcons(&system, 6, FedConsConfig::default()).unwrap();
        let mut covered = Vec::new();
        for c in s.clusters() {
            for p in c.processor_range() {
                assert!(!covered.contains(&p), "processor {p} double-assigned");
                covered.push(p);
            }
        }
        assert_eq!(covered.len() as u32, s.shared_first());
    }

    #[test]
    fn display_mentions_clusters_and_partition() {
        let system: TaskSystem = [parallel_task(4, 1, 2, 4), seq(1, 5, 10)]
            .into_iter()
            .collect();
        let s = fedcons(&system, 4, FedConsConfig::default()).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("dedicated"));
        assert!(txt.contains("cluster"));
        assert!(txt.contains("shared"));
    }

    #[test]
    fn empty_system_admits_on_zero_processors() {
        let s = fedcons(&TaskSystem::new(), 0, FedConsConfig::default()).unwrap();
        assert_eq!(s.total_processors(), 0);
        assert_eq!(s.idle_processors(), 0);
    }
}

#[cfg(test)]
mod constraining_tests {
    use super::*;
    use fedsched_dag::task::DagTask;
    use fedsched_dag::time::Duration;

    fn seq(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    #[test]
    fn passes_through_constrained_systems() {
        let system: TaskSystem = [seq(1, 4, 8), seq(2, 6, 6)].into_iter().collect();
        let a = fedcons(&system, 2, FedConsConfig::default()).unwrap();
        let b = fedcons_constraining(&system, 2, FedConsConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tightens_arbitrary_deadlines_soundly() {
        // D = 12 > T = 8: tightened to D' = 8, which still fits (C = 4).
        let system: TaskSystem = [seq(4, 12, 8)].into_iter().collect();
        let s = fedcons_constraining(&system, 1, FedConsConfig::default()).unwrap();
        assert_eq!(s.partition().used_processors(), 1);
        // Plain FEDCONS refuses the same system outright.
        assert!(matches!(
            fedcons(&system, 1, FedConsConfig::default()),
            Err(FedConsFailure::ArbitraryDeadline { .. })
        ));
    }

    #[test]
    fn tightening_is_pessimistic_by_design() {
        // C = 7, D = 14, T = 8: feasible on one processor with the real
        // deadlines (u = 7/8), but the tightened D' = 8 < ... C = 7 ≤ 8
        // still fits. Make it actually lose: C = 7, T = 8, D = 20 with a
        // second task C = 2, D = 3, T = 8: tightened demand at 8 is
        // 7 + 2 > 8 ⇒ rejected, even though with D = 20 slack exists.
        let system: TaskSystem = [seq(7, 20, 8), seq(2, 3, 8)].into_iter().collect();
        assert!(fedcons_constraining(&system, 1, FedConsConfig::default()).is_err());
        // The rejection is the documented price of soundness; two
        // processors recover it.
        assert!(fedcons_constraining(&system, 2, FedConsConfig::default()).is_ok());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use fedsched_dag::graph::DagBuilder;
    use fedsched_dag::task::DagTask;
    use fedsched_dag::time::Duration;

    #[test]
    fn federated_schedule_roundtrips_through_json() {
        let mut b = DagBuilder::new();
        b.add_vertices([1, 1, 1, 1].map(Duration::new));
        let wide = DagTask::new(b.build().unwrap(), Duration::new(2), Duration::new(4)).unwrap();
        let light =
            DagTask::sequential(Duration::new(1), Duration::new(5), Duration::new(10)).unwrap();
        let system: TaskSystem = [wide, light].into_iter().collect();
        let schedule = fedcons(&system, 3, FedConsConfig::default()).unwrap();
        let json = serde_json::to_string(&schedule).unwrap();
        let back: FederatedSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(schedule, back);
        // The deserialized artifact is still usable for dispatch decisions.
        assert_eq!(back.clusters().len(), 1);
        assert_eq!(back.shared_processor_of(TaskId::from_index(1)), Some(2));
    }
}
