//! `FEDCONS` — federated scheduling of constrained-deadline sporadic DAG
//! task systems (Baruah, DATE 2015).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`minprocs`] — `MINPROCS` (Fig. 3): minimum LS cluster size per
//!   high-density task, with the frozen template schedule;
//! * [`mod@fedcons`] — `FEDCONS` (Fig. 2): the two-phase federated admission,
//!   producing a complete run-time configuration
//!   ([`fedcons::FederatedSchedule`]);
//! * [`baselines`] — the implicit-deadline federated algorithm of Li et
//!   al. \[17\] and two global-EDF tests, used by the comparison experiments;
//! * [`feasibility`] — necessary conditions and the demand load, the
//!   computable stand-ins for the paper's clairvoyant optimum;
//! * [`speedup`] — exact rational processor-speed scaling and the binary
//!   search used to measure empirical speedup factors (Definition 1).
//!
//! # Examples
//!
//! Admitting a mixed system and inspecting the resulting configuration:
//!
//! ```
//! use fedsched_core::fedcons::{fedcons, FedConsConfig};
//! use fedsched_dag::graph::DagBuilder;
//! use fedsched_dag::system::TaskSystem;
//! use fedsched_dag::task::DagTask;
//! use fedsched_dag::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A high-density task: 6 parallel unit jobs due within 2 ticks.
//! let mut b = DagBuilder::new();
//! b.add_vertices([1, 1, 1, 1, 1, 1].map(Duration::new));
//! let wide = DagTask::new(b.build()?, Duration::new(2), Duration::new(10))?;
//! // A light sequential task.
//! let light = DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8))?;
//!
//! let system: TaskSystem = [wide, light].into_iter().collect();
//! let schedule = fedcons(&system, 4, FedConsConfig::default())?;
//! assert_eq!(schedule.clusters().len(), 1);      // the wide task's cluster
//! assert_eq!(schedule.clusters()[0].processors, 3);
//! assert_eq!(schedule.shared_processors(), 1);    // EDF pool for the rest
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod feasibility;
pub mod fedcons;
pub mod minprocs;
pub mod speedup;

pub use baselines::{
    global_edf_density_test, global_edf_li_test, li_federated, li_federated_probed, LiCluster,
    LiFederatedFailure, LiFederatedSchedule,
};
pub use feasibility::{demand_load, necessary_feasible};
pub use fedcons::{
    fedcons, fedcons_constraining, fedcons_constraining_probed, fedcons_probed, DedicatedCluster,
    FedConsConfig, FedConsFailure, FederatedSchedule,
};
pub use minprocs::{
    intrinsic_min_procs, intrinsic_min_procs_probed, min_procs, min_procs_probed, MinProcsResult,
};
pub use speedup::{required_speed, system_at_speed, DEFAULT_SPEED_DENOMINATOR};
