//! Byte-identity of the allocation-free List-Scheduling kernel.
//!
//! Two oracles pin the workspace kernel down:
//!
//! 1. A verbatim reimplementation of the retired `BinaryHeap` kernel —
//!    three heaps over `(rank, vertex)`, `(free_at, processor)` and
//!    `(finish, vertex)` — must produce the *same bytes*: every entry's
//!    processor, start and finish. All three key tuples have unique second
//!    components, so the pop sequences are total orders and any correct
//!    min-queue must agree; this test is the executable form of that
//!    argument.
//! 2. The same generated schedules must come back byte-identical whether
//!    the kernel runs on the caller's thread or on `fedsched-parallel`
//!    pool workers at widths 1, 2 and 8 (one thread-local workspace each).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

use fedsched_dag::graph::{Dag, VertexId};
use fedsched_dag::system::TaskSystem;
use fedsched_dag::time::Duration;
use fedsched_gen::{DeadlineTightness, Span, SystemConfig, Topology, WcetRange};
use fedsched_graham::list::{list_makespan_ranked, list_schedule_ranked, PriorityPolicy};
use fedsched_graham::schedule::{ScheduleEntry, TemplateSchedule};
use fedsched_parallel::Pool;
use proptest::prelude::*;

const WIDTHS: [usize; 3] = [1, 2, 8];

fn pool(width: usize) -> &'static Pool {
    static POOLS: OnceLock<Vec<Pool>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| WIDTHS.iter().map(|&w| Pool::new(w)).collect());
    &pools[WIDTHS
        .iter()
        .position(|&w| w == width)
        .expect("known width")]
}

/// The retired heap-based kernel, reproduced as the equivalence oracle.
fn heap_kernel_reference(
    dag: &Dag,
    processors: u32,
    ranks: &[u64],
    times: &[Duration],
) -> TemplateSchedule {
    let n = dag.vertex_count();
    let mut remaining: Vec<u32> = dag.vertices().map(|v| dag.in_degree(v) as u32).collect();
    let mut ready: BinaryHeap<Reverse<(u64, u32)>> = dag
        .vertices()
        .filter(|&v| remaining[v.index()] == 0)
        .map(|v| Reverse((ranks[v.index()], v.index() as u32)))
        .collect();
    let mut procs: BinaryHeap<Reverse<(u64, u32)>> =
        (0..processors).map(|p| Reverse((0u64, p))).collect();
    let mut running: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut entries = vec![
        ScheduleEntry {
            processor: 0,
            start: Duration::ZERO,
            finish: Duration::ZERO,
        };
        n
    ];
    let mut now = 0u64;
    let mut scheduled = 0usize;
    while scheduled < n {
        while let Some(&Reverse((finish, v))) = running.peek() {
            if finish > now {
                break;
            }
            running.pop();
            for &s in dag.successors(VertexId::from_index(v as usize)) {
                remaining[s.index()] -= 1;
                if remaining[s.index()] == 0 {
                    ready.push(Reverse((ranks[s.index()], s.index() as u32)));
                }
            }
        }
        while let Some(&Reverse((free_at, p))) = procs.peek() {
            if free_at > now || ready.is_empty() {
                break;
            }
            procs.pop();
            let Reverse((_, v)) = ready.pop().expect("checked non-empty");
            let finish = now + times[v as usize].ticks();
            entries[v as usize] = ScheduleEntry {
                processor: p,
                start: Duration::new(now),
                finish: Duration::new(finish),
            };
            scheduled += 1;
            running.push(Reverse((finish, v)));
            procs.push(Reverse((finish, p)));
        }
        if scheduled == n {
            break;
        }
        now = running
            .peek()
            .expect("jobs remain but nothing is running or available")
            .0
             .0;
    }
    TemplateSchedule::from_entries(processors, entries)
}

fn arb_system() -> impl Strategy<Value = TaskSystem> {
    (any::<u64>(), 1usize..=4, 1.0f64..5.0).prop_map(|(seed, n_tasks, utilization)| {
        let config = SystemConfig::new(n_tasks, utilization)
            .with_topology(Topology::ErdosRenyi {
                vertices: Span::new(2, 14),
                edge_probability: 0.25,
            })
            .with_wcet(WcetRange::new(1, 12))
            .with_tightness(DeadlineTightness::new(0.6, 1.0));
        (0u64..256)
            .find_map(|k| config.generate_seeded(seed.wrapping_add(k)))
            .expect("some nearby seed admits the configuration")
    })
}

fn arb_policy() -> impl Strategy<Value = PriorityPolicy> {
    prop_oneof![
        Just(PriorityPolicy::ListOrder),
        Just(PriorityPolicy::CriticalPathFirst),
        Just(PriorityPolicy::LongestWcetFirst),
    ]
}

proptest! {
    /// The workspace kernel and the retired heap kernel emit the same
    /// bytes, and the makespan-only entry point agrees with both.
    #[test]
    fn workspace_kernel_matches_retired_heap_kernel(
        system in arb_system(),
        policy in arb_policy(),
        processors in 1u32..=9,
    ) {
        for (_, task) in system.iter() {
            let dag = task.dag();
            let ranks = policy.ranks(dag);
            let expected = heap_kernel_reference(dag, processors, &ranks, dag.wcets());
            let actual = list_schedule_ranked(dag, processors, &ranks, dag.wcets());
            prop_assert_eq!(&actual, &expected, "schedules must be byte-identical");
            prop_assert_eq!(
                list_makespan_ranked(dag, processors, &ranks, dag.wcets()),
                expected.makespan(),
                "decision-only path must agree"
            );
        }
    }

    /// Templates computed on pool workers (one thread-local workspace per
    /// worker) are byte-identical at widths 1, 2 and 8.
    #[test]
    fn templates_are_byte_identical_across_pool_widths(
        system in arb_system(),
        policy in arb_policy(),
    ) {
        for (_, task) in system.iter() {
            let dag = task.dag();
            let ranks = policy.ranks(dag);
            let mus: Vec<u32> = (1..=8).collect();
            let runs: Vec<Vec<TemplateSchedule>> = WIDTHS
                .iter()
                .map(|&width| {
                    pool(width).install(|| {
                        pool(width).par_map(&mus, |&mu| {
                            list_schedule_ranked(dag, mu, &ranks, dag.wcets())
                        })
                    })
                })
                .collect();
            for (i, run) in runs.iter().enumerate().skip(1) {
                prop_assert_eq!(run, &runs[0], "width {} diverged", WIDTHS[i]);
            }
        }
    }
}
