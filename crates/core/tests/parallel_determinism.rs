//! Property tests for the parallel analysis engine's determinism contract:
//! FEDCONS and MINPROCS must produce byte-identical results — verdicts,
//! frozen σ templates, *and* merged `AnalysisProbe` counters — at every
//! pool width. Wall-clock probe fields are measurements and are excluded
//! via [`AnalysisProbe::deterministic`].

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::fedcons::{fedcons_probed, FedConsConfig, FedConsFailure, FederatedSchedule};
use fedsched_core::minprocs::{min_procs_fits_probed, min_procs_probed, MinProcsResult};
use fedsched_dag::system::TaskSystem;
use fedsched_gen::{DeadlineTightness, Span, SystemConfig, Topology, WcetRange};
use fedsched_graham::list::PriorityPolicy;
use fedsched_parallel::Pool;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The pool widths the acceptance criteria name: sequential, small, wide.
const WIDTHS: [usize; 3] = [1, 2, 8];

/// One long-lived pool per width — pools are created once, not per case.
fn pool(width: usize) -> &'static Pool {
    static POOLS: OnceLock<Vec<Pool>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| WIDTHS.iter().map(|&w| Pool::new(w)).collect());
    &pools[WIDTHS
        .iter()
        .position(|&w| w == width)
        .expect("known width")]
}

/// A generated constrained-deadline system: mixed densities, some tasks
/// high-density (clusters), some low (partitioning), occasionally
/// unschedulable — failure paths must be deterministic too.
fn arb_system() -> impl Strategy<Value = TaskSystem> {
    (any::<u64>(), 1usize..=6, 1.0f64..6.0).prop_map(|(seed, n_tasks, utilization)| {
        let config = SystemConfig::new(n_tasks, utilization)
            .with_topology(Topology::ErdosRenyi {
                vertices: Span::new(2, 12),
                edge_probability: 0.2,
            })
            .with_wcet(WcetRange::new(1, 12))
            .with_tightness(DeadlineTightness::new(0.6, 1.0));
        // The generator can decline a (seed, utilization) draw; walk the
        // seed deterministically until it accepts.
        (0u64..256)
            .find_map(|k| config.generate_seeded(seed.wrapping_add(k)))
            .expect("some nearby seed admits the configuration")
    })
}

fn arb_policy() -> impl Strategy<Value = PriorityPolicy> {
    prop_oneof![
        Just(PriorityPolicy::ListOrder),
        Just(PriorityPolicy::CriticalPathFirst),
        Just(PriorityPolicy::LongestWcetFirst),
    ]
}

type FedConsOutcome = Result<FederatedSchedule, FedConsFailure>;

fn run_fedcons_at(
    width: usize,
    system: &TaskSystem,
    m: u32,
    policy: PriorityPolicy,
) -> (FedConsOutcome, AnalysisProbe) {
    pool(width).install(|| {
        let mut probe = AnalysisProbe::default();
        let config = FedConsConfig {
            policy,
            ..FedConsConfig::default()
        };
        let outcome = fedcons_probed(system, m, config, &mut probe);
        (outcome, probe.deterministic())
    })
}

proptest! {
    /// FEDCONS: identical verdict, identical schedule (clusters, templates,
    /// partition), identical failure, identical probe counters at widths
    /// 1, 2 and 8.
    #[test]
    fn fedcons_is_byte_identical_across_pool_widths(
        system in arb_system(),
        m in 1u32..=24,
        policy in arb_policy(),
    ) {
        let (baseline, baseline_probe) = run_fedcons_at(1, &system, m, policy);
        for width in [2usize, 8] {
            let (outcome, probe) = run_fedcons_at(width, &system, m, policy);
            prop_assert_eq!(&outcome, &baseline, "width {} verdict", width);
            prop_assert_eq!(probe, baseline_probe, "width {} probe", width);
        }
    }

    /// MINPROCS: identical sizing, template and counters per task, and the
    /// decision entry point always agrees with the full sizing.
    #[test]
    fn minprocs_is_byte_identical_across_pool_widths(
        system in arb_system(),
        available in 0u32..=16,
        policy in arb_policy(),
    ) {
        for (_, task) in system.iter() {
            let runs: Vec<(Option<MinProcsResult>, AnalysisProbe, bool, AnalysisProbe)> = WIDTHS
                .iter()
                .map(|&width| {
                    pool(width).install(|| {
                        let mut sizing_probe = AnalysisProbe::default();
                        let sizing =
                            min_procs_probed(task, available, policy, &mut sizing_probe);
                        let mut fits_probe = AnalysisProbe::default();
                        let fits =
                            min_procs_fits_probed(task, available, policy, &mut fits_probe);
                        (
                            sizing,
                            sizing_probe.deterministic(),
                            fits,
                            fits_probe.deterministic(),
                        )
                    })
                })
                .collect();
            for run in &runs[1..] {
                prop_assert_eq!(run, &runs[0]);
            }
            let (sizing, _, fits, _) = &runs[0];
            prop_assert_eq!(*fits, sizing.is_some(), "decision matches sizing");
        }
    }
}
