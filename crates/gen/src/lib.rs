//! Random workload generation for schedulability experiments.
//!
//! Reproducible (seeded) generators for sporadic DAG task systems in the
//! style the real-time community uses for acceptance-ratio experiments —
//! the substrate behind the evaluation of Baruah (DATE 2015) reproduced in
//! this workspace:
//!
//! * [`topology`] — random DAG families (layered, Erdős–Rényi, nested
//!   fork-join, series-parallel);
//! * [`params`] — UUniFast(-Discard) utilizations, log-uniform periods,
//!   deadline-tightness sampling;
//! * [`system`] — the [`system::SystemConfig`] builder tying it together.
//!
//! # Examples
//!
//! ```
//! use fedsched_gen::system::SystemConfig;
//!
//! // 10 tasks, total utilization 3, reproducible from the seed.
//! let system = SystemConfig::new(10, 3.0)
//!     .with_max_task_utilization(1.0)
//!     .generate_seeded(7)
//!     .expect("feasible target");
//! assert_eq!(system.len(), 10);
//! assert!(system.all_chains_feasible());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod params;
pub mod system;
pub mod topology;

pub use params::{
    log_uniform_period, round_down_to_grid, round_period_to_grid, uunifast, uunifast_discard,
    DeadlineTightness,
};
pub use system::{PeriodPolicy, SystemConfig};
pub use topology::{Span, Topology, WcetRange};
